"""Attached tables: lazy mmap relations and the persistent encoding tier.

One page file per ingested table holds every artifact family the engine
would otherwise rebuild on a cold start:

========================  ======================================================
segment family            contents
========================  ======================================================
``table/meta``            manifest: name, row/group counts, chunk layout,
                          dictionary generation, stable fingerprint
``dict/*``                the :class:`TokenDictionary` (interning table = the
                          ordering ``O``'s rank table, §4.3.2)
``groups/*``              prepared-relation group structure (keys, flat
                          elements/weights, offsets, norms)
``rows/<col>/<chunk>``    First-Normal-Form columns, chunked at morsel
                          granularity — the scan path's page-aligned batches
``enc/*``                 the columnar encoding (self-join / scan side)
``index/*``               token → (group, weight) inverted postings
``verify/*``              packed bitmap signatures + per-group max weights
========================  ======================================================

:class:`StoredTable` opens such a file and hands out each structure
lazily; :class:`StoredRelation` is the `Relation` face of the FNF chunks
— it satisfies the whole row protocol but only materializes tuples if a
consumer actually demands ``.rows``, and exposes
:meth:`~StoredRelation.iter_stored_batches` so the batch plan path
streams morsels (with projection pushdown: unprojected column segments
are never read) straight off mapped pages.

:class:`EncodingStore` is the disk tier behind
:class:`repro.core.encoded.EncodingCache`: a directory of *pair files*,
one per (left fingerprint, right fingerprint), each holding the joint
dictionary and both sides' encodings. ``load`` decodes — it never
re-sorts — and the cache promotes the result into its memory tier.

Layering: this module imports ``repro.core`` and ``repro.relational``;
neither imports this module. The plan/batch layers reach stored tables
only through duck typing (``iter_stored_batches``), the cache through the
``load/save/has`` protocol.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.dictionary import TokenDictionary
from repro.core.encoded import EncodedPreparedRelation, EncodingCache
from repro.core.encoded_index import EncodedInvertedIndex
from repro.core.prepared import PREPARED_SCHEMA, PreparedRelation
from repro.errors import StorageError
from repro.relational.batch import Batch
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage import codecs
from repro.storage.pages import (
    KIND_META,
    BufferPool,
    PageFileReader,
    PageFileWriter,
)

__all__ = [
    "EncodingStore",
    "StoredRelation",
    "StoredTable",
    "ingest_prepared",
    "load_encoded_ref",
    "open_table",
]

#: Manifest format version; bumped on incompatible layout changes.
MANIFEST_VERSION = 1

#: The base class's ``rows`` slot descriptor — backing storage for
#: :class:`StoredRelation`'s lazy ``rows`` property (same trick as
#: :class:`repro.relational.batch.ColumnarRelation`).
_ROWS_SLOT = Relation.__dict__["rows"]


class StoredRelation(Relation):
    """The ``R(a, b, w, norm)`` face of an attached table.

    Satisfies the full :class:`Relation` protocol; row tuples are built
    once, on first ``.rows`` access. The batch plan path never gets that
    far: :meth:`iter_stored_batches` streams column chunks directly, and
    a projection list restricts which column segments are read at all.
    """

    __slots__ = ("table",)

    def __init__(self, table: "StoredTable", name: Optional[str] = None) -> None:
        self.schema = PREPARED_SCHEMA
        self.name = name if name is not None else table.name
        self.table = table
        _ROWS_SLOT.__set__(self, None)

    @property  # type: ignore[override]
    def rows(self) -> Tuple[Tuple[Any, ...], ...]:
        cached = _ROWS_SLOT.__get__(self, StoredRelation)
        if cached is None:
            columns = [
                self.table.column_chunks_joined(c) for c in self.schema.names
            ]
            cached = tuple(zip(*columns)) if columns else ()
            _ROWS_SLOT.__set__(self, cached)
        return cached

    def __len__(self) -> int:
        return self.table.num_rows

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    def column_values(self, name: str) -> Tuple[Any, ...]:
        self.schema.position(name)  # raises UnknownColumnError
        return tuple(self.table.column_chunks_joined(name))

    def renamed(self, name: str) -> "StoredRelation":
        # Relation.renamed would force .rows; aliasing an attached table
        # must stay lazy.
        return StoredRelation(self.table, name=name)

    def iter_stored_batches(
        self, batch_size: int, names: Optional[Sequence[str]] = None
    ) -> Iterator[Batch]:
        """Stream morsels straight from page-backed column chunks.

        *names* (projection pushdown) restricts the chunk segments read;
        ``None`` streams every column. When *batch_size* equals the
        ingest ``chunk_rows`` (both default to 4096), one chunk is one
        batch — page boundaries and morsel boundaries coincide and no
        column is ever re-sliced.
        """
        if names is None:
            schema = self.schema
        else:
            for n in names:
                self.schema.position(n)  # raises UnknownColumnError
            schema = Schema(list(names))
        cols = schema.names
        table = self.table
        chunk_rows = table.chunk_rows
        if not cols:
            remaining = table.num_rows
            while remaining > 0:
                n = min(batch_size, remaining)
                yield Batch(schema, (), num_rows=n)
                remaining -= n
            return
        if batch_size == chunk_rows:
            for c in range(table.n_chunks):
                yield Batch(schema, tuple(table.column_chunk(n, c) for n in cols))
            return
        # Re-chunk: accumulate page chunks, emit batch_size slices.
        pending: List[List[Any]] = [[] for _ in cols]
        for c in range(table.n_chunks):
            for acc, n in zip(pending, cols):
                acc.extend(table.column_chunk(n, c))
            while len(pending[0]) >= batch_size:
                yield Batch(
                    schema, tuple(acc[:batch_size] for acc in pending)
                )
                pending = [acc[batch_size:] for acc in pending]
        if pending[0]:
            yield Batch(schema, tuple(pending))

    def __reduce__(self) -> Tuple[Any, ...]:
        # Pickles as a re-open instruction: workers map the pages
        # read-only instead of receiving materialized tuples.
        return (_reopen_relation, (self.table.path, self.name))

    def __repr__(self) -> str:
        return (
            f"<StoredRelation {self.name!r} rows={self.num_rows} "
            f"file={self.table.path!r}>"
        )


def _reopen_relation(path: str, name: Optional[str]) -> StoredRelation:
    return StoredRelation(open_table(path), name=name)


class StoredTable:
    """An attached page file: manifest eagerly, everything else lazily.

    Each accessor decodes its segment family on first call and memoizes
    the result; artifacts derived from the dictionary (encoding, index,
    verify signatures) are generation-checked on decode, raising
    :class:`repro.errors.StaleArtifactError` on mismatch (rule SSJ114).
    """

    def __init__(self, path: str, pool: Optional[BufferPool] = None) -> None:
        self.path = os.path.abspath(path)
        self.reader = PageFileReader(self.path, pool=pool)
        try:
            manifest = codecs._loads(self.reader.segment("table/meta"))
        except StorageError:
            self.reader.close()
            raise
        if manifest.get("version") != MANIFEST_VERSION:
            self.reader.close()
            raise StorageError(
                f"{self.path!r}: manifest version {manifest.get('version')!r} "
                f"!= {MANIFEST_VERSION}"
            )
        self.manifest: Dict[str, Any] = manifest
        self.name: str = manifest["name"]
        self.num_rows: int = manifest["num_rows"]
        self.num_groups: int = manifest["num_groups"]
        self.chunk_rows: int = manifest["chunk_rows"]
        self.n_chunks: int = manifest["n_chunks"]
        self.generation: str = manifest["generation"]
        self.stable_fingerprint: str = manifest["stable_fingerprint"]
        self._relation: Optional[StoredRelation] = None
        self._dictionary: Optional[TokenDictionary] = None
        self._prepared: Optional[PreparedRelation] = None
        self._encoded: Optional[EncodedPreparedRelation] = None
        self._index: Optional[EncodedInvertedIndex] = None
        self._chunk_cache: "Dict[Tuple[str, int], List[Any]]" = {}

    # -- column chunks (scan path) ---------------------------------------------

    def column_chunk(self, column: str, chunk: int) -> List[Any]:
        key = (column, chunk)
        got = self._chunk_cache.get(key)
        if got is None:
            got = codecs.read_row_chunk(self.reader, column, chunk)
            self._chunk_cache[key] = got
        return got

    def column_chunks_joined(self, column: str) -> List[Any]:
        out: List[Any] = []
        for c in range(self.n_chunks):
            out.extend(self.column_chunk(column, c))
        return out

    # -- engine structures -------------------------------------------------------

    @property
    def relation(self) -> StoredRelation:
        if self._relation is None:
            self._relation = StoredRelation(self)
        return self._relation

    def dictionary(self) -> TokenDictionary:
        if self._dictionary is None:
            dictionary, generation = codecs.read_dictionary(self.reader)
            codecs.check_generation(
                "dictionary", generation, self.generation, self.path
            )
            self._dictionary = dictionary
        return self._dictionary

    def prepared(self) -> PreparedRelation:
        """The prepared relation, with its lazy ``.relation`` pre-wired to
        the stored (page-backed) relation — so ``PreparedInput`` plans
        over an attached table stream from pages, not from rebuilt rows."""
        if self._prepared is None:
            prepared = codecs.read_prepared(self.reader, self.name)
            prepared._relation = self.relation
            prepared.__dict__["_stable_digest"] = self.stable_fingerprint
            self._prepared = prepared
        return self._prepared

    def encoded(self) -> EncodedPreparedRelation:
        """The persisted columnar encoding with its verify signatures
        pre-loaded — zero re-encode, zero re-sort, zero re-pack."""
        if self._encoded is None:
            encoded = codecs.read_encoded(
                self.reader, self.prepared(), self.dictionary(), self.generation
            )
            codecs.read_verify_cache(self.reader, encoded, self.generation)
            self._encoded = encoded
        return self._encoded

    def inverted_index(self) -> EncodedInvertedIndex:
        """The prefix/inverted index rebuilt from persisted postings."""
        if self._index is None:
            postings = codecs.read_inverted_postings(self.reader, self.generation)
            index = EncodedInvertedIndex.__new__(EncodedInvertedIndex)
            index.encoded = self.encoded()
            index._postings = postings
            self._index = index
        return self._index

    def seed_cache(self, cache: EncodingCache) -> None:
        """Pre-populate an encoding cache's memory tier for the self-join
        over this table (the Fig-12 warm-start path)."""
        prepared = self.prepared()
        cache.seed(prepared, prepared, self.encoded(), self.encoded(),
                   self.dictionary())

    def stats(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "num_rows": self.num_rows,
            "num_groups": self.num_groups,
            "n_chunks": self.n_chunks,
            "chunk_rows": self.chunk_rows,
            "num_pages": self.reader.num_pages,
            "generation": self.generation[:12],
            "segments": len(list(self.reader.segments())),
        }

    def close(self) -> None:
        self.reader.close()

    def __enter__(self) -> "StoredTable":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<StoredTable {self.name!r} rows={self.num_rows} "
            f"groups={self.num_groups} path={self.path!r}>"
        )


def open_table(path: str, pool: Optional[BufferPool] = None) -> StoredTable:
    """Open an ingested table's page file."""
    return StoredTable(path, pool=pool)


def ingest_prepared(
    prepared: PreparedRelation,
    path: str,
    name: Optional[str] = None,
    chunk_rows: int = codecs.CHUNK_ROWS,
    verify_widths: Tuple[int, ...] = (64,),
) -> StoredTable:
    """Persist a prepared relation plus every derived artifact.

    Builds the joint-frequency dictionary over the relation itself (the
    self-join dictionary — identical element ranking to what
    ``encode_pair(r, r)`` derives, since doubling every frequency
    preserves the order), encodes, indexes, signs, and writes the lot as
    one page file via an atomic tmp-then-replace. Returns the freshly
    opened :class:`StoredTable`.
    """
    table_name = name if name is not None else prepared.name
    dictionary = TokenDictionary.from_relations(prepared, prepared)
    encoded = EncodedPreparedRelation(prepared, dictionary)
    writer = PageFileWriter(path)
    try:
        generation = codecs.write_dictionary(writer, dictionary)
        layout = codecs.write_prepared(writer, prepared, chunk_rows=chunk_rows)
        codecs.write_encoded(writer, encoded, generation)
        codecs.write_inverted_index(writer, encoded, generation)
        if verify_widths:
            codecs.write_verify_cache(writer, encoded, generation, verify_widths)
        manifest = {
            "version": MANIFEST_VERSION,
            "name": table_name,
            "generation": generation,
            "stable_fingerprint": codecs.stable_fingerprint(prepared),
            "verify_widths": list(verify_widths),
            **layout,
        }
        writer.add_segment("table/meta", KIND_META, codecs._dumps(manifest))
    except BaseException:
        writer.abort()
        raise
    writer.close()
    return open_table(path)


def load_encoded_ref(
    ref: str, pool: Optional[BufferPool] = None
) -> EncodedPreparedRelation:
    """Re-open an encoding by its ``storage_ref`` (``path`` or
    ``path::prefix``) without touching the group segments.

    This is the worker-side rehydration path: a pool worker receives a
    slim :class:`repro.parallel.worker.StoredTokenRangePayload` (paths,
    not pickled columns), maps the pages read-only, and adopts the
    columnar arrays. The result carries no ``prepared`` backing — it is
    exactly the keys/ids/weights/norms/set_norms surface the token-range
    kernels, ``group_prefix_lengths`` and the verification packers read.
    """
    path, _, prefix = ref.partition("::")
    with PageFileReader(path, pool=pool) as reader:
        dictionary, generation = codecs.read_dictionary(reader)
        meta = codecs._loads(reader.segment(f"{prefix}enc/meta"))
        codecs.check_generation("encoding", meta.get("generation"), generation, path)
        keys = codecs._loads(reader.segment(f"{prefix}enc/keys"))
        offsets = codecs._array_from("q", reader.segment(f"{prefix}enc/offsets"))
        flat_ids = codecs._array_from("q", reader.segment(f"{prefix}enc/ids"))
        flat_weights = codecs._array_from("d", reader.segment(f"{prefix}enc/weights"))
        norms = codecs._array_from("d", reader.segment(f"{prefix}enc/norms"))
        set_norms = codecs._array_from("d", reader.segment(f"{prefix}enc/set_norms"))
    enc = EncodedPreparedRelation.__new__(EncodedPreparedRelation)
    enc.prepared = None  # type: ignore[assignment]
    enc.dictionary = dictionary
    enc.prefix_cache = {}
    enc.verify_cache = {}
    enc.storage_ref = ref
    enc.keys = keys
    enc._num_elements = None
    enc.ids = [
        flat_ids[offsets[g] : offsets[g + 1]] for g in range(len(offsets) - 1)
    ]
    enc.weights = [
        flat_weights[offsets[g] : offsets[g + 1]] for g in range(len(offsets) - 1)
    ]
    enc.norms = norms
    enc.set_norms = set_norms
    return enc


class EncodingStore:
    """Directory of *pair files*: the persistent :class:`EncodingCache` tier.

    One page file per encoded pair, named by the two sides' stable
    (cross-process) content fingerprints, each holding the joint
    dictionary plus both encodings under ``left/`` / ``right/`` prefixes
    (one shared side for self-joins). Speaks the ``load/save/has``
    protocol :meth:`EncodingCache.attach_persistent` expects.
    """

    def __init__(self, directory: str, pool: Optional[BufferPool] = None) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.pool = pool

    def _pair_path(self, left: PreparedRelation, right: PreparedRelation) -> str:
        lf = codecs.stable_fingerprint(left)[:20]
        rf = codecs.stable_fingerprint(right)[:20]
        return os.path.join(self.directory, f"pair-{lf}-{rf}.rpsf")

    def has(self, left: PreparedRelation, right: PreparedRelation) -> bool:
        return os.path.exists(self._pair_path(left, right))

    def save(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        enc_left: EncodedPreparedRelation,
        enc_right: EncodedPreparedRelation,
        dictionary: TokenDictionary,
    ) -> str:
        path = self._pair_path(left, right)
        writer = PageFileWriter(path)
        try:
            generation = codecs.write_dictionary(writer, dictionary)
            codecs.write_encoded(writer, enc_left, generation, prefix="left/")
            shared = enc_right is enc_left
            if not shared:
                codecs.write_encoded(writer, enc_right, generation, prefix="right/")
            writer.add_segment(
                "pair/meta",
                KIND_META,
                codecs._dumps({
                    "version": MANIFEST_VERSION,
                    "generation": generation,
                    "left_fingerprint": codecs.stable_fingerprint(left),
                    "right_fingerprint": codecs.stable_fingerprint(right),
                    "shared": shared,
                }),
            )
        except BaseException:
            writer.abort()
            raise
        writer.close()
        return path

    def load(
        self, left: PreparedRelation, right: PreparedRelation
    ) -> Optional[
        Tuple[EncodedPreparedRelation, EncodedPreparedRelation, TokenDictionary]
    ]:
        path = self._pair_path(left, right)
        if not os.path.exists(path):
            return None
        with PageFileReader(path, pool=self.pool) as reader:
            meta = codecs._loads(reader.segment("pair/meta"))
            if (
                meta.get("version") != MANIFEST_VERSION
                or meta.get("left_fingerprint") != codecs.stable_fingerprint(left)
                or meta.get("right_fingerprint") != codecs.stable_fingerprint(right)
            ):
                return None
            dictionary, generation = codecs.read_dictionary(reader)
            enc_left = codecs.read_encoded(
                reader, left, dictionary, generation, prefix="left/"
            )
            if meta.get("shared") and right is left:
                enc_right = enc_left
            elif meta.get("shared"):
                enc_right = codecs.read_encoded(
                    reader, right, dictionary, generation, prefix="left/"
                )
            else:
                enc_right = codecs.read_encoded(
                    reader, right, dictionary, generation, prefix="right/"
                )
            return enc_left, enc_right, dictionary

    def files(self) -> List[str]:
        return sorted(
            os.path.join(self.directory, f)
            for f in os.listdir(self.directory)
            if f.startswith("pair-") and f.endswith(".rpsf")
        )

    def __repr__(self) -> str:
        return f"<EncodingStore {self.directory!r} pairs={len(self.files())}>"
