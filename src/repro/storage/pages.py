"""The page-oriented file format and the pinning buffer pool.

A **page file** is a sequence of fixed-size pages (:data:`PAGE_SIZE`
bytes). Page 0 is the file header; every other page carries a slice of
exactly one **segment** — a named, typed byte blob (a pickled column
chunk, a raw ``array('q')`` dump, a JSON manifest). Segments always start
on a page boundary, which is what lets the read path align morsel
boundaries to page boundaries and skip whole column segments under
projection pushdown.

Every data page is independently verifiable::

    +------+---------+------+--------+-------------+----------------+
    | magic| segment | seq  | length | crc32       | payload ...    |
    | 4 B  | u32     | u32  | u32    | u32         | <= 4076 B      |
    +------+---------+------+--------+-------------+----------------+

``segment`` is the id of the segment the page belongs to, ``seq`` its
position within that segment, ``length`` the payload bytes actually used,
and ``crc32`` covers header-sans-crc plus payload — a flipped bit
anywhere in the page fails the read (:class:`~repro.errors.StorageError`),
it never silently decodes.

The **segment directory** (name → first page, page count, byte length,
kind, crc of the whole blob) is itself written as the final segment; the
header page points at it. Readers memory-map the file and go through a
:class:`BufferPool`: page payloads are validated once, cached under an
LRU policy, and **pinned** while a caller is actively decoding from them
so the pool never evicts a page mid-read.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError

__all__ = [
    "PAGE_SIZE",
    "PAGE_CAPACITY",
    "KIND_META",
    "KIND_OBJECT",
    "KIND_I64",
    "KIND_F64",
    "BufferPool",
    "PageFileReader",
    "PageFileWriter",
    "SegmentInfo",
    "global_buffer_pool",
]

#: Fixed page size in bytes. 4 KiB matches the common filesystem block.
PAGE_SIZE = 4096

_PAGE_MAGIC = b"RPG1"
#: magic, segment id, sequence within segment, payload length, crc32
_PAGE_HEADER = struct.Struct("<4sIII I")
#: Payload bytes available per page after the typed header.
PAGE_CAPACITY = PAGE_SIZE - _PAGE_HEADER.size

_FILE_MAGIC = b"RPSF0001"
#: magic, format version, page size, total pages, directory first page,
#: directory page count, directory byte length, header crc32
_FILE_HEADER = struct.Struct("<8sIIIIII I")

#: Segment payload kinds (typed segment headers — decoders dispatch on these).
KIND_META = 0    #: JSON manifest / metadata
KIND_OBJECT = 1  #: pickled Python object (object columns, key lists)
KIND_I64 = 2     #: raw little-endian ``array('q')`` bytes
KIND_F64 = 3     #: raw little-endian ``array('d')`` bytes

_DIRECTORY_SEGMENT = "__directory__"


class SegmentInfo:
    """Directory entry: where one named segment lives in the file."""

    __slots__ = ("name", "kind", "first_page", "num_pages", "length", "crc")

    def __init__(
        self,
        name: str,
        kind: int,
        first_page: int,
        num_pages: int,
        length: int,
        crc: int,
    ) -> None:
        self.name = name
        self.kind = kind
        self.first_page = first_page
        self.num_pages = num_pages
        self.length = length
        self.crc = crc

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "first_page": self.first_page,
            "num_pages": self.num_pages,
            "length": self.length,
            "crc": self.crc,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SegmentInfo":
        return cls(
            d["name"], d["kind"], d["first_page"], d["num_pages"],
            d["length"], d["crc"],
        )

    def __repr__(self) -> str:
        return (
            f"SegmentInfo({self.name!r}, kind={self.kind}, "
            f"pages={self.first_page}..{self.first_page + self.num_pages - 1}, "
            f"bytes={self.length})"
        )


def _page_bytes(segment_id: int, seq: int, payload: bytes) -> bytes:
    header_sans_crc = _PAGE_HEADER.pack(
        _PAGE_MAGIC, segment_id, seq, len(payload), 0
    )[: _PAGE_HEADER.size - 4]
    crc = zlib.crc32(header_sans_crc + payload) & 0xFFFFFFFF
    page = _PAGE_HEADER.pack(_PAGE_MAGIC, segment_id, seq, len(payload), crc)
    page += payload
    return page + b"\x00" * (PAGE_SIZE - len(page))


class PageFileWriter:
    """Append-only page-file writer.

    Segments are written front to back; :meth:`close` appends the segment
    directory and stamps the header page. The file is built at a
    temporary path and moved into place atomically on close, so readers
    never observe a half-written page file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._tmp_path = path + ".tmp"
        self._f = open(self._tmp_path, "wb")
        # Reserve page 0 for the header (stamped on close).
        self._f.write(b"\x00" * PAGE_SIZE)
        self._next_page = 1
        self._directory: "OrderedDict[str, SegmentInfo]" = OrderedDict()
        self._closed = False

    def add_segment(self, name: str, kind: int, data: bytes) -> SegmentInfo:
        """Append *data* as the pages of a new segment named *name*."""
        if self._closed:
            raise StorageError(f"writer for {self.path!r} is closed")
        if name in self._directory:
            raise StorageError(f"duplicate segment {name!r} in {self.path!r}")
        segment_id = len(self._directory)
        first = self._next_page
        n_pages = 0
        for seq, lo in enumerate(range(0, len(data), PAGE_CAPACITY)):
            self._f.write(_page_bytes(segment_id, seq, data[lo : lo + PAGE_CAPACITY]))
            n_pages += 1
        if not data:
            # An empty segment still owns one page so every directory
            # entry has a concrete location (and a verifiable checksum).
            self._f.write(_page_bytes(segment_id, 0, b""))
            n_pages = 1
        self._next_page += n_pages
        info = SegmentInfo(
            name, kind, first, n_pages, len(data), zlib.crc32(data) & 0xFFFFFFFF
        )
        self._directory[name] = info
        return info

    def close(self) -> None:
        if self._closed:
            return
        directory = json.dumps(
            [info.to_dict() for info in self._directory.values()],
            separators=(",", ":"),
        ).encode("utf-8")
        dir_first = self._next_page
        dir_id = len(self._directory)
        dir_pages = 0
        for seq, lo in enumerate(range(0, len(directory), PAGE_CAPACITY)):
            self._f.write(_page_bytes(dir_id, seq, directory[lo : lo + PAGE_CAPACITY]))
            dir_pages += 1
        if not directory:  # pragma: no cover - directory JSON is never empty
            self._f.write(_page_bytes(dir_id, 0, b""))
            dir_pages = 1
        total_pages = dir_first + dir_pages
        header_sans_crc = _FILE_HEADER.pack(
            _FILE_MAGIC, 1, PAGE_SIZE, total_pages,
            dir_first, dir_pages, len(directory), 0,
        )[: _FILE_HEADER.size - 4]
        crc = zlib.crc32(header_sans_crc) & 0xFFFFFFFF
        header = _FILE_HEADER.pack(
            _FILE_MAGIC, 1, PAGE_SIZE, total_pages,
            dir_first, dir_pages, len(directory), crc,
        )
        self._f.seek(0)
        self._f.write(header + b"\x00" * (PAGE_SIZE - len(header)))
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        os.replace(self._tmp_path, self.path)
        self._closed = True

    def abort(self) -> None:
        """Discard the partially-written file."""
        if not self._closed:
            self._f.close()
            self._closed = True
        if os.path.exists(self._tmp_path):
            os.unlink(self._tmp_path)

    def __enter__(self) -> "PageFileWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class BufferPool:
    """Pinning LRU cache of validated page payloads.

    Keys are ``(file_key, page_no)``. A page whose pin count is positive
    is never evicted — callers bracket with :meth:`pin` / :meth:`unpin`
    any page they need resident across calls (a hot directory or meta
    page, say). Unpinned pages beyond *capacity_pages* are evicted
    least-recently-used.
    """

    def __init__(self, capacity_pages: int = 1024) -> None:
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._pins: Dict[Tuple[str, int], int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self,
        file_key: str,
        page_no: int,
        loader: Callable[[int], bytes],
    ) -> bytes:
        """The validated payload of one page, via cache or *loader*."""
        key = (file_key, page_no)
        payload = self._pages.get(key)
        if payload is not None:
            self.hits += 1
            self._pages.move_to_end(key)
            return payload
        self.misses += 1
        payload = loader(page_no)
        self._pages[key] = payload
        self._evict()
        return payload

    def pin(self, file_key: str, page_no: int) -> None:
        key = (file_key, page_no)
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, file_key: str, page_no: int) -> None:
        key = (file_key, page_no)
        count = self._pins.get(key, 0)
        if count <= 1:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count - 1

    def _evict(self) -> None:
        # Walk from the LRU end and stop at the first unpinned key: with
        # no pins this is O(1) per eviction, and a pinned prefix only
        # costs its own length — never a full scan of the pool.
        while len(self._pages) > self.capacity_pages:
            victim = None
            for key in self._pages:
                if self._pins.get(key, 0) == 0:
                    victim = key
                    break
            if victim is None:
                return
            del self._pages[victim]
            self.evictions += 1

    def invalidate(self, file_key: str) -> None:
        """Drop every cached page of one file (e.g. after re-ingest)."""
        for key in [k for k in self._pages if k[0] == file_key]:
            del self._pages[key]
        for key in [k for k in self._pins if k[0] == file_key]:
            del self._pins[key]

    def stats(self) -> dict:
        return {
            "capacity_pages": self.capacity_pages,
            "resident_pages": len(self._pages),
            "pinned_pages": sum(1 for c in self._pins.values() if c > 0),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._pages)


#: Process-wide pool shared by every reader that is not handed its own.
_GLOBAL_POOL = BufferPool()


def global_buffer_pool() -> BufferPool:
    return _GLOBAL_POOL


class PageFileReader:
    """Memory-mapped, checksum-verifying page-file reader.

    The file is mapped read-only once; every page access goes through the
    buffer pool, which validates the page checksum on first touch and
    serves repeats from cache. Readers are cheap to open (header + one
    directory read) — everything else is lazy.
    """

    def __init__(self, path: str, pool: Optional[BufferPool] = None) -> None:
        self.path = os.path.abspath(path)
        self.pool = pool if pool is not None else _GLOBAL_POOL
        self._f = open(self.path, "rb")
        try:
            self._mmap: Optional[mmap.mmap] = mmap.mmap(
                self._f.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):  # pragma: no cover - zero-byte file
            self._mmap = None
        self._file_key = f"{self.path}:{os.path.getmtime(self.path):.6f}"
        header = self._read_header()
        (_, self.version, self.page_size, self.num_pages,
         dir_first, dir_pages, dir_len) = header
        directory = self._read_raw_segment(len_hint=dir_len,
                                           first_page=dir_first,
                                           num_pages=dir_pages)
        self._directory: "OrderedDict[str, SegmentInfo]" = OrderedDict(
            (d["name"], SegmentInfo.from_dict(d))
            for d in json.loads(directory.decode("utf-8"))
        )

    # -- low-level page access -------------------------------------------------

    def _read_header(self) -> Tuple[bytes, int, int, int, int, int, int]:
        raw = self._raw_page(0)
        if len(raw) < _FILE_HEADER.size:
            raise StorageError(f"{self.path!r}: truncated header page")
        (magic, version, page_size, num_pages, dir_first, dir_pages,
         dir_len, crc) = _FILE_HEADER.unpack_from(raw)
        if magic != _FILE_MAGIC:
            raise StorageError(
                f"{self.path!r}: bad file magic {magic!r} (not a repro page file)"
            )
        header_sans_crc = raw[: _FILE_HEADER.size - 4]
        if zlib.crc32(header_sans_crc) & 0xFFFFFFFF != crc:
            raise StorageError(f"{self.path!r}: header checksum mismatch")
        if page_size != PAGE_SIZE:
            raise StorageError(
                f"{self.path!r}: page size {page_size} != {PAGE_SIZE}"
            )
        return magic, version, page_size, num_pages, dir_first, dir_pages, dir_len

    def _raw_page(self, page_no: int) -> bytes:
        lo = page_no * PAGE_SIZE
        if self._mmap is not None:
            raw = bytes(self._mmap[lo : lo + PAGE_SIZE])
        else:  # pragma: no cover - mmap unavailable fallback
            self._f.seek(lo)
            raw = self._f.read(PAGE_SIZE)
        if len(raw) < PAGE_SIZE:
            raise StorageError(f"{self.path!r}: page {page_no} is truncated")
        return raw

    def _load_payload(self, page_no: int) -> bytes:
        """Validate one data page and return its payload (pool loader)."""
        raw = self._raw_page(page_no)
        magic, segment_id, seq, length, crc = _PAGE_HEADER.unpack_from(raw)
        if magic != _PAGE_MAGIC:
            raise StorageError(f"{self.path!r}: page {page_no} has bad magic")
        if length > PAGE_CAPACITY:
            raise StorageError(
                f"{self.path!r}: page {page_no} claims {length} payload bytes"
            )
        payload = raw[_PAGE_HEADER.size : _PAGE_HEADER.size + length]
        header_sans_crc = raw[: _PAGE_HEADER.size - 4]
        if zlib.crc32(header_sans_crc + payload) & 0xFFFFFFFF != crc:
            raise StorageError(
                f"{self.path!r}: page {page_no} checksum mismatch "
                "(corrupted or torn write)"
            )
        return payload

    @property
    def file_key(self) -> str:
        """The buffer pool key for this file's pages (path + mtime, so a
        re-ingested file never serves another incarnation's cache)."""
        return self._file_key

    def page_payload(self, page_no: int) -> bytes:
        """One page's validated payload, through the buffer pool."""
        return self.pool.get(self._file_key, page_no, self._load_payload)

    def _read_raw_segment(
        self, len_hint: int, first_page: int, num_pages: int
    ) -> bytes:
        # Each payload is captured in `parts` the moment it loads, so a
        # long read needs no pins to stay correct. Segments that cannot
        # fit the pool bypass it entirely: caching a one-pass scan would
        # evict every hot page without ever re-serving one.
        pages = range(first_page, first_page + num_pages)
        if num_pages >= self.pool.capacity_pages:
            parts = [self._load_payload(p) for p in pages]
        else:
            parts = [self.page_payload(p) for p in pages]
        blob = b"".join(parts)
        if len(blob) != len_hint:
            raise StorageError(
                f"{self.path!r}: segment length {len(blob)} != directory's "
                f"{len_hint}"
            )
        return blob

    # -- segment access ---------------------------------------------------------

    def has(self, name: str) -> bool:
        return name in self._directory

    def info(self, name: str) -> SegmentInfo:
        try:
            return self._directory[name]
        except KeyError:
            raise StorageError(
                f"{self.path!r}: no segment {name!r}"
            ) from None

    def segment(self, name: str) -> bytes:
        """The full byte blob of one named segment (crc-verified)."""
        info = self.info(name)
        blob = self._read_raw_segment(info.length, info.first_page, info.num_pages)
        if zlib.crc32(blob) & 0xFFFFFFFF != info.crc:
            raise StorageError(
                f"{self.path!r}: segment {name!r} whole-blob checksum mismatch"
            )
        return blob

    def segments(self) -> Iterator[SegmentInfo]:
        return iter(self._directory.values())

    def segment_names(self, prefix: str = "") -> List[str]:
        return [n for n in self._directory if n.startswith(prefix)]

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._f.close()

    def __enter__(self) -> "PageFileReader":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<PageFileReader {self.path!r} pages={self.num_pages} "
            f"segments={len(self._directory)}>"
        )
