"""Segment codecs: engine structures ⇄ page-file byte blobs.

Each codec pair (``write_* `` / ``read_*``) maps one engine structure to a
family of typed segments inside a page file:

* the :class:`~repro.core.dictionary.TokenDictionary` — its element list
  in id order (the interning table *is* the ordering ``O``'s rank table);
* the prepared relation — group keys, flat element/weight arrays with
  group offsets, per-group norms, plus the First-Normal-Form ``(a, b, w,
  norm)`` columns chunked at **morsel granularity** (one column chunk =
  one morsel = its own page run), which is what lets the scan path stream
  batches straight off pages and skip unprojected column segments;
* the :class:`~repro.core.encoded.EncodedPreparedRelation` — flat sorted
  token-id / weight arrays plus group offsets (decode = array slicing,
  zero re-sorts);
* the prefix/inverted index — token → (group, weight) postings in
  columnar form; and
* the ``verify_cache`` — packed bitmap signatures per width plus the
  per-group max weights.

Every derived artifact (encoding, index, signatures) is stamped with the
**dictionary-generation fingerprint** — a content digest of the interning
table it was built under — so a stale artifact is *detected* at attach
time (:func:`check_generation`, analysis rule SSJ114) instead of silently
mis-joining under a reassigned id universe.

Numeric columns are raw little-endian ``array`` bytes; object columns
(keys, elements) are pickled. Digests use :mod:`hashlib` over
canonically-ordered pickles, so they are stable across processes and hash
seeds — unlike :meth:`PreparedRelation.fingerprint`, which is an
in-process ``hash`` and is exactly what the *memory* cache tier keys on.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.core.dictionary import TokenDictionary
from repro.core.encoded import EncodedPreparedRelation
from repro.core.prepared import PreparedRelation
from repro.errors import StaleArtifactError, StorageError
from repro.storage.pages import (
    KIND_F64,
    KIND_I64,
    KIND_META,
    KIND_OBJECT,
    PageFileReader,
    PageFileWriter,
)
from repro.tokenize.sets import WeightedSet

__all__ = [
    "CHUNK_ROWS",
    "check_generation",
    "dictionary_generation",
    "read_dictionary",
    "read_encoded",
    "read_inverted_postings",
    "read_prepared",
    "read_row_chunk",
    "read_verify_cache",
    "stable_fingerprint",
    "write_dictionary",
    "write_encoded",
    "write_inverted_index",
    "write_prepared",
    "write_verify_cache",
]

#: Rows per First-Normal-Form column chunk. One chunk is one morsel: the
#: scan path emits each chunk as one Batch, so page boundaries (chunks
#: start on fresh pages) coincide with morsel boundaries.
CHUNK_ROWS = 4096

_PICKLE_PROTOCOL = 4


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)


def _loads(blob: bytes) -> Any:
    return pickle.loads(blob)


def _array_bytes(a: array) -> bytes:
    if sys.byteorder != "little":  # pragma: no cover - big-endian host
        a = array(a.typecode, a)
        a.byteswap()
    return a.tobytes()


def _array_from(typecode: str, blob: bytes) -> array:
    a = array(typecode)
    a.frombytes(blob)
    if sys.byteorder != "little":  # pragma: no cover - big-endian host
        a.byteswap()
    return a


# -- fingerprints ---------------------------------------------------------------


def dictionary_generation(dictionary: TokenDictionary) -> str:
    """Content digest of the interning table (the *generation* stamp).

    Hashes the element list in id order — the complete ``element → id``
    assignment — so any re-ranking, growth, or shrink of the dictionary
    changes the generation and invalidates every artifact stamped with
    the old one.
    """
    elements = [dictionary.element_of(i) for i in range(len(dictionary))]
    digest = hashlib.sha256(_dumps((elements, dictionary.description)))
    return digest.hexdigest()


def stable_fingerprint(prepared: PreparedRelation) -> str:
    """Cross-process content digest of a prepared relation.

    Canonicalizes by ``repr`` order (groups, then elements within each
    group) before pickling, so two relations prepared from the same
    values fingerprint identically in *different* processes — which is
    what the persistent encoding tier keys its files on. Memoized on the
    instance (content is immutable after construction).
    """
    cached = prepared.__dict__.get("_stable_digest")
    if cached is not None:
        return cached
    canonical = [
        (
            repr(a),
            sorted((repr(e), w) for e, w in wset.items()),
            prepared.norms[a],
        )
        for a, wset in sorted(prepared.groups.items(), key=lambda kv: repr(kv[0]))
    ]
    digest = hashlib.sha256(_dumps(canonical)).hexdigest()
    prepared.__dict__["_stable_digest"] = digest
    return digest


def check_generation(
    artifact: str, stamped: Optional[str], expected: str, source: str
) -> None:
    """Raise :class:`StaleArtifactError` when a persisted artifact's
    generation stamp disagrees with the attached dictionary (SSJ114)."""
    if stamped != expected:
        raise StaleArtifactError(
            f"{source}: persisted {artifact} was built under dictionary "
            f"generation {stamped!r} but the attached dictionary is "
            f"generation {expected!r}; re-ingest the table "
            "(analysis rule SSJ114)"
        )


# -- token dictionary -----------------------------------------------------------


def write_dictionary(writer: PageFileWriter, dictionary: TokenDictionary) -> str:
    """Persist the interning table; returns its generation stamp."""
    elements = [dictionary.element_of(i) for i in range(len(dictionary))]
    generation = dictionary_generation(dictionary)
    writer.add_segment("dict/elements", KIND_OBJECT, _dumps(elements))
    writer.add_segment(
        "dict/meta",
        KIND_META,
        _dumps({"description": dictionary.description,
                "generation": generation,
                "size": len(elements)}),
    )
    return generation


def read_dictionary(reader: PageFileReader) -> Tuple[TokenDictionary, str]:
    """Decode the interning table; returns ``(dictionary, generation)``.

    The generation is re-derived from the decoded table and checked
    against the stored stamp — a corrupted-but-crc-valid blob (or a
    hand-edited one) cannot masquerade as its claimed generation.
    """
    meta = _loads(reader.segment("dict/meta"))
    elements = _loads(reader.segment("dict/elements"))
    dictionary = TokenDictionary(
        {e: i for i, e in enumerate(elements)},
        description=meta["description"],
    )
    generation = dictionary_generation(dictionary)
    check_generation("dictionary", meta["generation"], generation, reader.path)
    return dictionary, generation


# -- prepared relation ----------------------------------------------------------


def write_prepared(
    writer: PageFileWriter,
    prepared: PreparedRelation,
    chunk_rows: int = CHUNK_ROWS,
) -> Dict[str, Any]:
    """Persist group structure + morsel-chunked FNF columns; returns the
    layout facts the table manifest records."""
    keys = list(prepared.groups)
    offsets = array("q", [0])
    elements: List[Any] = []
    weights = array("d")
    norms = array("d", (prepared.norms[a] for a in keys))
    for a in keys:
        wset = prepared.groups[a]
        for e, w in wset.items():
            elements.append(e)
            weights.append(w)
        offsets.append(len(elements))
    writer.add_segment("groups/keys", KIND_OBJECT, _dumps(keys))
    writer.add_segment("groups/offsets", KIND_I64, _array_bytes(offsets))
    writer.add_segment("groups/elements", KIND_OBJECT, _dumps(elements))
    writer.add_segment("groups/weights", KIND_F64, _array_bytes(weights))
    writer.add_segment("groups/norms", KIND_F64, _array_bytes(norms))

    # The FNF view, column-major and chunked at morsel granularity. The
    # row order matches PreparedRelation.relation exactly (group insertion
    # order, element insertion order within each group).
    col_a: List[Any] = []
    col_b: List[Any] = []
    col_w = array("d")
    col_n = array("d")
    for g, a in enumerate(keys):
        lo, hi = offsets[g], offsets[g + 1]
        n = prepared.norms[a]
        for i in range(lo, hi):
            col_a.append(a)
            col_b.append(elements[i])
            col_w.append(weights[i])
            col_n.append(n)
    num_rows = len(col_a)
    n_chunks = 0
    for c, lo in enumerate(range(0, num_rows, chunk_rows)):
        hi = min(lo + chunk_rows, num_rows)
        writer.add_segment(f"rows/a/{c}", KIND_OBJECT, _dumps(col_a[lo:hi]))
        writer.add_segment(f"rows/b/{c}", KIND_OBJECT, _dumps(col_b[lo:hi]))
        writer.add_segment(f"rows/w/{c}", KIND_F64, _array_bytes(col_w[lo:hi]))
        writer.add_segment(f"rows/norm/{c}", KIND_F64, _array_bytes(col_n[lo:hi]))
        n_chunks += 1
    return {
        "num_rows": num_rows,
        "num_groups": len(keys),
        "chunk_rows": chunk_rows,
        "n_chunks": n_chunks,
        "columns": ["a", "b", "w", "norm"],
    }


def read_prepared(reader: PageFileReader, name: str) -> PreparedRelation:
    """Reconstruct the prepared relation (groups, weights, norms)."""
    keys = _loads(reader.segment("groups/keys"))
    offsets = _array_from("q", reader.segment("groups/offsets"))
    elements = _loads(reader.segment("groups/elements"))
    weights = _array_from("d", reader.segment("groups/weights"))
    norms = _array_from("d", reader.segment("groups/norms"))
    if len(offsets) != len(keys) + 1 or len(norms) != len(keys):
        raise StorageError(f"{reader.path!r}: group segment shapes disagree")
    groups: Dict[Any, WeightedSet] = {}
    norm_map: Dict[Any, float] = {}
    for g, a in enumerate(keys):
        lo, hi = offsets[g], offsets[g + 1]
        groups[a] = WeightedSet(
            {elements[i]: weights[i] for i in range(lo, hi)}
        )
        norm_map[a] = norms[g]
    return PreparedRelation(groups, norm_map, name=name)


def read_row_chunk(
    reader: PageFileReader, column: str, chunk: int
) -> List[Any]:
    """One FNF column chunk, decoded by its typed segment kind."""
    name = f"rows/{column}/{chunk}"
    info = reader.info(name)
    blob = reader.segment(name)
    if info.kind == KIND_F64:
        return list(_array_from("d", blob))
    if info.kind == KIND_I64:
        return list(_array_from("q", blob))
    return _loads(blob)


# -- encoded relation -----------------------------------------------------------


def write_encoded(
    writer: PageFileWriter,
    encoded: EncodedPreparedRelation,
    generation: str,
    prefix: str = "",
) -> None:
    """Persist the columnar encoding, stamped with *generation*.

    *prefix* namespaces the segments (e.g. ``"left/"`` / ``"right/"`` in
    a pair file written by the persistent encoding tier).
    """
    offsets = array("q", [0])
    flat_ids = array("q")
    flat_weights = array("d")
    for ids, weights in zip(encoded.ids, encoded.weights):
        flat_ids.extend(ids)
        flat_weights.extend(weights)
        offsets.append(len(flat_ids))
    writer.add_segment(f"{prefix}enc/keys", KIND_OBJECT, _dumps(list(encoded.keys)))
    writer.add_segment(f"{prefix}enc/offsets", KIND_I64, _array_bytes(offsets))
    writer.add_segment(f"{prefix}enc/ids", KIND_I64, _array_bytes(flat_ids))
    writer.add_segment(f"{prefix}enc/weights", KIND_F64, _array_bytes(flat_weights))
    writer.add_segment(
        f"{prefix}enc/norms", KIND_F64, _array_bytes(array("d", encoded.norms))
    )
    writer.add_segment(
        f"{prefix}enc/set_norms", KIND_F64, _array_bytes(array("d", encoded.set_norms))
    )
    writer.add_segment(
        f"{prefix}enc/meta", KIND_META, _dumps({"generation": generation})
    )


def read_encoded(
    reader: PageFileReader,
    prepared: PreparedRelation,
    dictionary: TokenDictionary,
    generation: str,
    prefix: str = "",
) -> EncodedPreparedRelation:
    """Decode the columnar encoding over *prepared* — zero re-sorts.

    The artifact's generation stamp must match the attached dictionary's
    *generation*; a mismatch raises :class:`StaleArtifactError` (SSJ114).
    """
    meta = _loads(reader.segment(f"{prefix}enc/meta"))
    check_generation("encoding", meta.get("generation"), generation, reader.path)
    offsets = _array_from("q", reader.segment(f"{prefix}enc/offsets"))
    flat_ids = _array_from("q", reader.segment(f"{prefix}enc/ids"))
    flat_weights = _array_from("d", reader.segment(f"{prefix}enc/weights"))
    norms = _array_from("d", reader.segment(f"{prefix}enc/norms"))
    set_norms = _array_from("d", reader.segment(f"{prefix}enc/set_norms"))
    if len(offsets) != len(prepared.groups) + 1:
        raise StorageError(
            f"{reader.path!r}: encoded offsets disagree with group count"
        )
    ids: List[array] = []
    weights: List[array] = []
    for g in range(len(offsets) - 1):
        lo, hi = offsets[g], offsets[g + 1]
        ids.append(flat_ids[lo:hi])
        weights.append(flat_weights[lo:hi])
    # The ref records file AND segment prefix, so a worker process can
    # re-open exactly this encoding (see store.load_encoded_ref).
    ref = f"{reader.path}::{prefix}" if prefix else reader.path
    return EncodedPreparedRelation.from_columns(
        prepared, dictionary, ids, weights, norms, set_norms,
        storage_ref=ref,
    )


# -- prefix / inverted index ----------------------------------------------------


def write_inverted_index(
    writer: PageFileWriter,
    encoded: EncodedPreparedRelation,
    generation: str,
) -> None:
    """Persist the full token → (group, weight) postings, columnar.

    This is the predicate-independent index substrate: a β-prefix index
    for any bound is a leading sub-range of each group's sorted ids, and
    the probe plan's index is exactly these postings.
    """
    postings: Dict[int, List[Tuple[int, float]]] = {}
    for g, ids in enumerate(encoded.ids):
        w = encoded.weights[g]
        for i, t in enumerate(ids):
            postings.setdefault(t, []).append((g, w[i]))
    tokens = array("q", sorted(postings))
    offsets = array("q", [0])
    flat_groups = array("q")
    flat_weights = array("d")
    for t in tokens:
        for g, w in postings[t]:
            flat_groups.append(g)
            flat_weights.append(w)
        offsets.append(len(flat_groups))
    writer.add_segment("index/tokens", KIND_I64, _array_bytes(tokens))
    writer.add_segment("index/offsets", KIND_I64, _array_bytes(offsets))
    writer.add_segment("index/groups", KIND_I64, _array_bytes(flat_groups))
    writer.add_segment("index/weights", KIND_F64, _array_bytes(flat_weights))
    writer.add_segment("index/meta", KIND_META, _dumps({"generation": generation}))


def read_inverted_postings(
    reader: PageFileReader, generation: str
) -> Dict[int, List[Tuple[int, float]]]:
    """Decode the persisted postings map (generation-checked)."""
    meta = _loads(reader.segment("index/meta"))
    check_generation("inverted index", meta.get("generation"), generation,
                     reader.path)
    tokens = _array_from("q", reader.segment("index/tokens"))
    offsets = _array_from("q", reader.segment("index/offsets"))
    flat_groups = _array_from("q", reader.segment("index/groups"))
    flat_weights = _array_from("d", reader.segment("index/weights"))
    postings: Dict[int, List[Tuple[int, float]]] = {}
    for i, t in enumerate(tokens):
        lo, hi = offsets[i], offsets[i + 1]
        postings[t] = [
            (flat_groups[j], flat_weights[j]) for j in range(lo, hi)
        ]
    return postings


# -- verify cache ---------------------------------------------------------------


def write_verify_cache(
    writer: PageFileWriter,
    encoded: EncodedPreparedRelation,
    generation: str,
    widths: Tuple[int, ...],
) -> None:
    """Persist bitmap signatures (per width) and per-group max weights.

    Signatures are arbitrary-width ints (one *nbits*-wide bitmap per
    group), so they are pickled rather than dumped as fixed-size words.
    """
    from repro.core.verify import max_weights_for, signatures_for

    for nbits in widths:
        sigs = signatures_for(encoded, nbits)
        writer.add_segment(f"verify/sigs/{nbits}", KIND_OBJECT, _dumps(list(sigs)))
    maxw = max_weights_for(encoded)
    writer.add_segment(
        "verify/max_weights", KIND_F64, _array_bytes(array("d", maxw))
    )
    writer.add_segment(
        "verify/meta",
        KIND_META,
        _dumps({"generation": generation, "widths": list(widths)}),
    )


def read_verify_cache(
    reader: PageFileReader,
    encoded: EncodedPreparedRelation,
    generation: str,
) -> Tuple[int, ...]:
    """Load persisted signatures into ``encoded.verify_cache``.

    Entries are keyed exactly as :func:`repro.core.verify.signatures_for`
    caches them — ``("signatures", nbits) -> (universe, sigs)`` — so the
    verification engine's cache lookups hit without knowing the
    signatures came off disk. Returns the widths loaded.
    """
    if not reader.has("verify/meta"):
        return ()
    meta = _loads(reader.segment("verify/meta"))
    check_generation("verify cache", meta.get("generation"), generation,
                     reader.path)
    universe = len(encoded.dictionary)
    widths = tuple(meta["widths"])
    for nbits in widths:
        sigs = _loads(reader.segment(f"verify/sigs/{nbits}"))
        encoded.verify_cache[("signatures", nbits)] = (universe, sigs)
    maxw = list(_array_from("d", reader.segment("verify/max_weights")))
    encoded.verify_cache["max_weights"] = maxw
    return widths
