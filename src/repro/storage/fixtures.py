"""Seeded-defect fixtures for the storage layer's analysis rules.

The SSJ114 rule (:func:`repro.analysis.invariants.verify_storage`) exists
to catch one defect: a persisted artifact surviving a dictionary
re-ingest with its old generation stamp. This module *manufactures* that
defect deliberately — a page file whose dictionary is genuine but whose
encoding is stamped under a different generation — so the selfcheck and
the test suite can prove the rule still detects what it exists for
(the same gate pattern as the DF399 dataflow corpus).
"""

from __future__ import annotations

from repro.core.dictionary import TokenDictionary
from repro.core.encoded import EncodedPreparedRelation
from repro.core.prepared import PreparedRelation
from repro.storage import codecs
from repro.storage.pages import PageFileWriter

__all__ = ["STALE_GENERATION", "seed_stale_table"]

#: The counterfeit stamp the seeded encoding carries — visibly not a
#: sha256 of any real interning table.
STALE_GENERATION = "0" * 64


def seed_stale_table(path: str) -> str:
    """Write a page file with a deliberately stale encoding stamp.

    The dictionary segments are genuine (content digest matches their
    stamp), but the columnar encoding is stamped :data:`STALE_GENERATION`
    — the on-disk shape left behind when an ingest is rerun against
    changed data without rewriting every artifact. Returns the *real*
    generation the encoding should have carried.
    """
    tokenize = lambda s: s.split()  # noqa: E731 - trivial whitespace tokenizer
    prepared = PreparedRelation.from_strings(
        ["stale stamp fixture", "seeded defect corpus"], tokenize, name="stale"
    )
    dictionary = TokenDictionary.from_relations(prepared, prepared)
    encoded = EncodedPreparedRelation(prepared, dictionary)
    with PageFileWriter(path) as writer:
        generation = codecs.write_dictionary(writer, dictionary)
        codecs.write_encoded(writer, encoded, STALE_GENERATION)
    return generation
