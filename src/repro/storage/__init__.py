"""Disk-backed columnar storage: page files, buffer pool, attached tables.

Layer 10 of the architecture (see ``docs/architecture.md``): a
page-oriented file format with typed, checksummed segments
(:mod:`repro.storage.pages`), codecs between engine structures and
segment families (:mod:`repro.storage.codecs`), and the attach surface —
:class:`~repro.storage.store.StoredTable` /
:class:`~repro.storage.store.StoredRelation` for lazy page-backed scans
and :class:`~repro.storage.store.EncodingStore` as the persistent tier
behind :class:`repro.core.encoded.EncodingCache`.
"""

from repro.storage.codecs import (
    CHUNK_ROWS,
    check_generation,
    dictionary_generation,
    stable_fingerprint,
)
from repro.storage.pages import (
    PAGE_SIZE,
    BufferPool,
    PageFileReader,
    PageFileWriter,
    SegmentInfo,
    global_buffer_pool,
)
from repro.storage.store import (
    EncodingStore,
    StoredRelation,
    StoredTable,
    ingest_prepared,
    load_encoded_ref,
    open_table,
)

__all__ = [
    "BufferPool",
    "CHUNK_ROWS",
    "EncodingStore",
    "PAGE_SIZE",
    "PageFileReader",
    "PageFileWriter",
    "SegmentInfo",
    "StoredRelation",
    "StoredTable",
    "check_generation",
    "dictionary_generation",
    "global_buffer_pool",
    "ingest_prepared",
    "load_encoded_ref",
    "open_table",
    "stable_fingerprint",
]
