"""Engine-hygiene lint: ``ast``-based custom rules for the hot paths.

``python -m repro.analysis.lint [paths...]`` walks Python sources
(default: ``repro.core`` and ``repro.relational``, the operator hot
paths) and enforces the determinism/precision rules the SSJoin engine
relies on. These are exactly the bug classes that produce *silent result
loss* in prefix-filter joins — wrong-but-plausible output, not crashes —
which is why they are gated in CI rather than left to review.

Rules:

``RL201`` iteration over an unordered ``set`` value — result order (and
with it prefix contents under tie-breaking) becomes run-dependent.
``RL202`` unseeded ``random`` module calls — nondeterministic orderings
and samples; use ``random.Random(seed)``.
``RL203`` ``==``/``!=`` on float weights/thresholds — summation-order
drift makes boundary comparisons flip; use epsilon comparisons.
``RL204`` mutable ``@dataclass`` in the engine core — row/value types
must be ``frozen=True`` (hashable, safe to share across plans) unless
explicitly suppressed as an accumulator.
``RL205`` missing type annotations — every function in the hot paths is
fully annotated so the strict mypy CI gate stays meaningful.

Suppression: append ``# repro: ignore[RL204]`` (or a comma-separated
list) to any line of the offending statement — decorator lines and the
continuation lines of a multi-line statement both work. A bare
``# repro: ignore`` suppresses all rules on the statement, and a
``# repro: ignore-file[RL201]`` comment anywhere in the file suppresses
the listed rules file-wide (see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.suppress import SuppressionIndex, definition_span, node_span

__all__ = ["lint_source", "lint_file", "lint_paths", "main", "DEFAULT_PATHS"]

#: The operator hot paths gated by default (relative to the repo root).
DEFAULT_PATHS = ("src/repro/core", "src/repro/relational", "src/repro/parallel")

#: Identifier fragments that mark a value as a float weight/threshold.
_FLOATY_NAMES = re.compile(
    r"(weight|norm|threshold|overlap|alpha|beta|fraction|similarity"
    r"|score|cost|seconds|epsilon)",
    re.IGNORECASE,
)


#: Call targets whose consumption of an iterable is order-insensitive:
#: the result does not depend on element arrival order, so feeding them
#: a set iteration is deterministic. ``sorted`` is the canonicalizer
#: itself; ``sum`` over *floats* is order-sensitive in the last ulp and
#: is re-audited with real dataflow by the ``DF306`` rule — at this
#: coarse level it is treated as a reduction sink, not an ordering leak.
_ORDER_INSENSITIVE_SINKS = frozenset(
    {"sorted", "sum", "len", "set", "frozenset", "any", "all", "min", "max"}
)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_caps_sentinel(node: ast.AST) -> bool:
    """ALL_CAPS identifiers are module constants, typically string
    sentinels (NORM_WEIGHT, ...) — equality on those is tag dispatch."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name is not None and name == name.upper()


def _floaty(node: ast.AST) -> Optional[str]:
    """A human-readable reason this operand looks like a float quantity."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    # ALL_CAPS names are module constants, typically string sentinels
    # (NORM_WEIGHT, ...) — equality on those is tag dispatch, not math.
    if (
        name is not None
        and name != name.upper()
        and _FLOATY_NAMES.search(name)
    ):
        return f"identifier {name!r}"
    return None


def _function_annotation_gaps(node: ast.AST) -> List[str]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    gaps: List[str] = []
    positional = args.posonlyargs + args.args
    for i, a in enumerate(positional):
        if i == 0 and a.arg in ("self", "cls"):
            continue
        if a.annotation is None:
            gaps.append(f"parameter {a.arg!r}")
    for a in args.kwonlyargs:
        if a.annotation is None:
            gaps.append(f"parameter {a.arg!r}")
    if args.vararg is not None and args.vararg.annotation is None:
        gaps.append(f"parameter *{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        gaps.append(f"parameter **{args.kwarg.arg}")
    if node.returns is None:
        gaps.append("return type")
    return gaps


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.suppress = SuppressionIndex(source_lines)
        self.findings: List[Diagnostic] = []
        #: ids of comprehension nodes consumed by an order-insensitive
        #: sink (``sum(... for x in s)``) — their set iteration is benign.
        self._benign_comps: Set[int] = set()

    # -- helpers -----------------------------------------------------------

    def _emit(
        self,
        rule: str,
        span: Tuple[int, int],
        message: str,
        hint: str = "",
    ) -> None:
        if self.suppress.suppressed(span, rule):
            return
        self.findings.append(
            Diagnostic(
                rule,
                SEVERITY_ERROR,
                message,
                f"{self.path}:{span[0]}",
                hint,
            )
        )

    def _check_iteration_target(
        self, iter_node: ast.AST, span: Tuple[int, int]
    ) -> None:
        if _is_set_expr(iter_node):
            self._emit(
                "RL201",
                span,
                "iteration over an unordered set: element order is "
                "run-dependent, which leaks into prefix/tie-break order",
                hint="iterate sorted(...) or keep a list/dict instead",
            )

    # -- visitors ----------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration_target(
            node.iter, (node.lineno, node_span(node.iter)[1])
        )
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        # A set comprehension *produces* an unordered value: iterating a
        # set inside one cannot leak order (any downstream iteration of
        # the result is itself checked). Sink-consumed comprehensions
        # (``sum(w for w in s)``) were marked benign by visit_Call.
        benign = isinstance(node, ast.SetComp) or id(node) in self._benign_comps
        if not benign:
            for comp in getattr(node, "generators", []):
                self._check_iteration_target(comp.iter, node_span(node))  # type: ignore[attr-defined]
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_INSENSITIVE_SINKS
            and not (func.id in ("min", "max") and node.keywords)
        ):
            # min/max keep their first-seen maximal element, so a ``key=``
            # tie is order-dependent — only the bare forms are benign.
            for arg in node.args:
                if isinstance(
                    arg,
                    (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp),
                ):
                    self._benign_comps.add(id(arg))
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in ("Random", "SystemRandom")
        ):
            self._emit(
                "RL202",
                node_span(node),
                f"call to unseeded module-level random.{func.attr}(): "
                "results are irreproducible across runs",
                hint="thread a seeded random.Random(seed) instance through",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left] + list(node.comparators)
            # Comparing against a string/None/bool literal — or an
            # ALL_CAPS sentinel constant — is tag dispatch, not a float
            # test, whatever the other side is called.
            benign = any(
                (
                    isinstance(o, ast.Constant)
                    and not isinstance(o.value, float)
                )
                or _is_caps_sentinel(o)
                for o in operands
            )
            if not benign:
                for operand in operands:
                    reason = _floaty(operand)
                    if reason is not None:
                        self._emit(
                            "RL203",
                            node_span(node),
                            f"==/!= comparison on {reason}: float summation "
                            "order makes exact equality flip at boundaries",
                            hint="compare with an epsilon "
                            "(see OVERLAP_EPSILON) or restructure",
                        )
                        break
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for dec in node.decorator_list:
            frozen = None
            if isinstance(dec, ast.Name) and dec.id == "dataclass":
                frozen = False
            elif (
                isinstance(dec, ast.Call)
                and isinstance(dec.func, ast.Name)
                and dec.func.id == "dataclass"
            ):
                frozen = any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                )
            if frozen is False:
                self._emit(
                    "RL204",
                    definition_span(node),
                    f"mutable @dataclass {node.name!r} in the engine core: "
                    "row/value types must be frozen",
                    hint="use @dataclass(frozen=True), or suppress with "
                    "'# repro: ignore[RL204]' for a deliberate accumulator",
                )
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        gaps = _function_annotation_gaps(node)
        if gaps:
            self._emit(
                "RL205",
                definition_span(node),
                f"function {node.name!r} is missing annotations: "
                f"{', '.join(gaps)}",
                hint="the strict mypy gate needs fully annotated hot paths",
            )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def lint_source(source: str, path: str = "<string>") -> AnalysisReport:
    """Lint one source string; *path* is used in diagnostic locations."""
    report = AnalysisReport()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.add(
            "RL200",
            SEVERITY_ERROR,
            f"syntax error: {exc.msg}",
            f"{path}:{exc.lineno or 0}",
        )
        return report
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    linter.findings.sort(key=lambda d: (d.location, d.rule))
    report.diagnostics.extend(linter.findings)
    return report


def lint_file(path: Path) -> AnalysisReport:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _discover(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Lint every ``.py`` file under *paths* (default: the hot paths)."""
    report = AnalysisReport()
    for f in _discover(paths or DEFAULT_PATHS):
        report.extend(lint_file(f))
    if select:
        wanted = set(select)
        report = AnalysisReport(
            [d for d in report.diagnostics if d.rule in wanted]
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="engine-hygiene lint for the SSJoin hot paths",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only report these rule ids (repeatable)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    args = parser.parse_args(argv)
    report = lint_paths(args.paths, select=args.select)
    if args.fmt == "json":
        print(report.render_json())
    elif report.diagnostics:
        print(report.render())
    if not report.ok:
        print(
            f"{len(report.errors())} error(s) in "
            f"{len(set(d.location.rsplit(':', 1)[0] for d in report.errors()))} "
            "file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
