"""Structured diagnostics shared by every analysis layer.

All three analyzers — the plan verifier, the SSJoin invariant linter, and
the repo-level ``ast`` lint — report findings as :class:`Diagnostic`
values: a stable rule id, a severity, a human message, the location the
finding anchors to (a plan path like ``GroupBy > HashJoin[right]`` or a
``file:line`` pair), and an optional fix hint. :class:`AnalysisReport`
collects them and decides pass/fail (any ERROR fails).

Rule-id namespaces:

``PV1xx``
    Plan verifier (schema propagation over operator trees and SQL).
``SSJ1xx``
    SSJoin invariant rules (Lemma 1 / ordering O / predicate soundness).
``RL2xx``
    Repo-level engine-hygiene lint (:mod:`repro.analysis.lint`).
``DF3xx``
    Dataflow determinism & kernel-purity auditor
    (:mod:`repro.analysis.dataflow`).

The catalog in ``docs/analysis_rules.md`` maps each rule to the paper
claim it guards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "Diagnostic",
    "AnalysisReport",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding.

    Parameters
    ----------
    rule:
        Stable rule id (``PV101``, ``SSJ102``, ``RL203`` ...).
    severity:
        ``"error"`` (rejects the plan / fails the gate), ``"warning"``
        (suspicious but sound), or ``"info"``.
    message:
        Human-readable statement of the finding.
    location:
        Where it anchors: a plan path (``"GroupBy > HashJoin[right]"``),
        an SSJoin component (``"predicate.bounds[0]"``), or ``file:line``.
    hint:
        Optional suggestion for fixing the finding.
    """

    rule: str
    severity: str
    message: str
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    def __str__(self) -> str:
        loc = f" at {self.location}" if self.location else ""
        text = f"[{self.rule}:{self.severity}]{loc}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, str]:
        """JSON-friendly form (the ``repro analyze --format json`` rows)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:  # repro: ignore[RL204] -- accumulator, filled as rules run
    """An ordered collection of diagnostics with pass/fail semantics."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        location: str = "",
        hint: str = "",
    ) -> Diagnostic:
        d = Diagnostic(rule, severity, message, location, hint)
        self.diagnostics.append(d)
        return d

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_WARNING]

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was recorded."""
        return not self.errors()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        # Truthiness reports "is clean", matching ``if report: proceed()``.
        return self.ok

    def render(self) -> str:
        """Multi-line text form, one diagnostic per line."""
        if not self.diagnostics:
            return "no findings"
        return "\n".join(str(d) for d in self.diagnostics)

    def render_json(self) -> str:
        """The ``repro analyze --format json`` document."""
        return json.dumps(
            {
                "schema": "repro-analysis/v1",
                "ok": self.ok,
                "findings": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
            sort_keys=True,
        )

    def render_sarif(self, tool_name: str = "repro-analyze") -> str:
        """SARIF 2.1.0 (``repro analyze --format sarif``) — the format
        CI code-scanning uploads and PR annotations consume.

        ``file:line`` locations become physical locations; plan-path /
        component locations (no trailing line number) are carried as
        logical locations.
        """
        levels = {
            SEVERITY_ERROR: "error",
            SEVERITY_WARNING: "warning",
            SEVERITY_INFO: "note",
        }
        rule_ids: List[str] = []
        results = []
        for d in self.diagnostics:
            if d.rule not in rule_ids:
                rule_ids.append(d.rule)
            text = d.message if not d.hint else f"{d.message} (hint: {d.hint})"
            result: Dict[str, object] = {
                "ruleId": d.rule,
                "level": levels[d.severity],
                "message": {"text": text},
            }
            path, sep, line = d.location.rpartition(":")
            if sep and line.isdigit():
                result["locations"] = [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": path},
                            "region": {"startLine": int(line)},
                        }
                    }
                ]
            elif d.location:
                result["locations"] = [
                    {
                        "logicalLocations": [
                            {"fullyQualifiedName": d.location}
                        ]
                    }
                ]
            results.append(result)
        return json.dumps(
            {
                "$schema": (
                    "https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                ),
                "version": "2.1.0",
                "runs": [
                    {
                        "tool": {
                            "driver": {
                                "name": tool_name,
                                "rules": [{"id": r} for r in rule_ids],
                            }
                        },
                        "results": results,
                    }
                ],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def combine(cls, reports: Iterable["AnalysisReport"]) -> "AnalysisReport":
        out = cls()
        for r in reports:
            out.extend(r)
        return out
