"""Suppression comments shared by every source-level analysis rule.

Two forms, honored by the engine-hygiene lint (``RL2xx``) and the
dataflow auditor (``DF3xx``) alike:

``# repro: ignore[RULE]``
    Statement-scoped. Suppresses the listed rules (comma-separated; bare
    ``# repro: ignore`` suppresses all) for the statement the comment
    sits on — *any* physical line of a multi-line statement works, and
    for decorated definitions the comment may sit on any decorator line
    or on the ``def``/``class`` line itself.

``# repro: ignore-file[RULE]``
    File-scoped. Suppresses the listed rules everywhere in the file
    (bare ``# repro: ignore-file`` suppresses every rule). Conventionally
    placed in the module header, but honored anywhere.

Historically the statement form had to sit on the *exact* flagged line,
which made decorated functions (flagged at the decorator) and wrapped
expressions unsuppressible without ugly reformatting; rules now pass the
flagged node's full line span to :meth:`SuppressionIndex.suppressed`.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Optional, Sequence, Tuple

__all__ = ["SuppressionIndex", "node_span", "definition_span"]

_LINE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_FILE_RE = re.compile(r"#\s*repro:\s*ignore-file(?:\[([A-Z0-9,\s]+)\])?")

#: Sentinel rule-set meaning "every rule".
_ALL: FrozenSet[str] = frozenset({"*"})


def _listed(group: Optional[str]) -> FrozenSet[str]:
    if group is None:
        return _ALL
    return frozenset(r.strip() for r in group.split(",") if r.strip())


class SuppressionIndex:
    """Per-file index of ``# repro: ignore`` comments.

    Built once per source file; ``suppressed((start, end), rule)`` then
    answers in O(span) over precomputed per-line rule sets.
    """

    __slots__ = ("_by_line", "_file_rules")

    def __init__(self, source_lines: Sequence[str]) -> None:
        by_line = {}
        file_rules: FrozenSet[str] = frozenset()
        for i, line in enumerate(source_lines, start=1):
            fm = _FILE_RE.search(line)
            if fm:
                file_rules = file_rules | _listed(fm.group(1))
                continue
            m = _LINE_RE.search(line)
            if m:
                by_line[i] = _listed(m.group(1))
        self._by_line = by_line
        self._file_rules = file_rules

    def _matches(self, rules: FrozenSet[str], rule: str) -> bool:
        return rules is _ALL or "*" in rules or rule in rules

    def suppressed(self, span: Tuple[int, int], rule: str) -> bool:
        """Whether *rule* is suppressed anywhere on lines ``start..end``."""
        if self._file_rules and self._matches(self._file_rules, rule):
            return True
        start, end = span
        if end < start:
            end = start
        for lineno in range(start, end + 1):
            rules = self._by_line.get(lineno)
            if rules is not None and self._matches(rules, rule):
                return True
        return False


def node_span(node: ast.AST) -> Tuple[int, int]:
    """The physical line span of *node* (``lineno``..``end_lineno``)."""
    start = getattr(node, "lineno", 1)
    return (start, getattr(node, "end_lineno", None) or start)


def definition_span(node: ast.AST) -> Tuple[int, int]:
    """Suppression span for a ``def``/``class``: first decorator line
    through the end of the signature (the line before the body starts,
    or the header line itself for one-line bodies)."""
    start = getattr(node, "lineno", 1)
    decorators = getattr(node, "decorator_list", [])
    if decorators:
        start = min(start, min(d.lineno for d in decorators))
    end = getattr(node, "lineno", start)
    body = getattr(node, "body", None)
    if body:
        first = body[0].lineno
        end = first - 1 if first > end else end
    return (start, end)
