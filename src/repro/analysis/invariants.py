"""SSJoin invariant linter: Lemma-1 safety, statically checked.

The prefix-filter is only a *filter* (paper Lemma 1, Section 4.3.2) when
three things agree across the whole physical plan:

1. the **β-bound** ``β = wt(Set(a)) − α`` uses a *sound* per-side lower
   bound on α (Section 4.2's normalized-predicate rule),
2. build and probe sides order elements under the **same global ordering
   O** (one :class:`ElementOrdering` / one :class:`TokenDictionary`), and
3. the **verify step** accepts exactly the pairs the predicate family
   admits (``overlap ⩾ threshold`` with the shared epsilon — never a
   float-equality test).

Each rule here checks one of those statically — before any row is
touched — and emits structured diagnostics. Wired into the facade as
``SSJoin(..., verify=True)`` and the CLI as ``repro analyze``.

Rules (catalog: ``docs/analysis_rules.md``):

``SSJ101`` β-bound inconsistency — a per-side filter threshold exceeds
the pair threshold for some norms, so prefixes would be too short and
results silently lost.
``SSJ102`` ordering mismatch — the two sides of an encoded plan disagree
on O (different dictionaries, unsorted id arrays, or an encoding built
for different inputs).
``SSJ103`` float-equality threshold test in a predicate/bound method.
``SSJ104`` verify-step mismatch — ``satisfied`` disagrees with
``threshold`` (drops boundary pairs or admits sub-threshold ones).
``SSJ105`` non-monotone bound (warning) — threshold decreasing in a
norm, suspicious for every family in Example 2.
``SSJ106`` unknown implementation name.
``SSJ107`` degenerate prefix (warning) — the filtered side's bound is
⩽ 0 for every group, so the "prefix" keeps whole sets.
``SSJ108`` shard-coverage violation — a parallel shard plan does not
cover its universe exactly once (token ranges with a gap/overlap, or
group positions missing/duplicated), so the merged result would drop or
double pairs. Checked by the executor before any shard is dispatched.
``SSJ109`` verification-filter over-prune — behavioral audit of the
bitmap-signature verification engine (:mod:`repro.core.verify`): on
small inputs the encoded-prefix plan is executed at deliberately hostile
signature widths (8 bits forces heavy bit collisions, 64 is the floor
width) and its rows must equal the basic implementation's exactly — a
missing pair means a bound pruned a qualifying candidate, an extra or
changed row means the filter corrupted verification.  Skipped for
inputs above the probe budget (the static rules still run).
``SSJ114`` stale persisted artifact — a disk-backed artifact (encoding,
inverted index, verify cache, table manifest) whose dictionary-generation
stamp disagrees with the dictionary its page file ships, meaning its
integer ids would decode through the wrong interning table. Swept
statically over every stamped segment by :func:`verify_storage`; the
runtime decode path raises :class:`repro.errors.StaleArtifactError` on
the same condition.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
)
from repro.core.encoded import EncodedPreparedRelation
from repro.core.ordering import ElementOrdering
from repro.core.predicate import Bound, OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import AnalysisError, StorageError

__all__ = [
    "verify_ssjoin",
    "check_ssjoin",
    "verify_shards",
    "check_shards",
    "verify_storage",
    "KNOWN_IMPLEMENTATIONS",
]

KNOWN_IMPLEMENTATIONS = (
    "auto",
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
)

#: Implementations that prefix-filter (and therefore lean on Lemma 1).
_PREFIX_FAMILY = ("prefix", "inline", "probe", "encoded-prefix", "encoded-probe")

#: Slack for the soundness comparisons — float-arithmetic noise only;
#: anything beyond this is a genuine β inconsistency.
_TOLERANCE = 1e-9

#: Canonical norm sample points; actual group norms are added on top.
_NORM_GRID = (0.0, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 50.0, 1000.0)


def _norm_samples(relations: Iterable[Optional[PreparedRelation]]) -> List[float]:
    values = set(_NORM_GRID)
    for rel in relations:
        if rel is None:
            continue
        norms = sorted(rel.norms.values())
        # Endpoints + a few interior points keep the grid small but real.
        for n in norms[:3] + norms[-3:]:
            values.add(float(n))
    return sorted(values)


# ---------------------------------------------------------------------------
# SSJ101 / SSJ105 — bound soundness and monotonicity
# ---------------------------------------------------------------------------


def _check_bound_soundness(
    report: AnalysisReport,
    bounds: Sequence[Bound],
    grid: Sequence[float],
) -> None:
    for i, bound in enumerate(bounds):
        location = f"predicate.bounds[{i}]"
        bad_left: Optional[Tuple[float, float]] = None
        bad_right: Optional[Tuple[float, float]] = None
        non_monotone = False
        try:
            matrix: List[List[float]] = []
            for ln in grid:
                lb_left = bound.lower_bound_left(ln)
                row: List[float] = []
                for rn in grid:
                    value = bound.value(ln, rn)
                    row.append(value)
                    if lb_left > value + _TOLERANCE and bad_left is None:
                        bad_left = (ln, rn)
                    if bound.lower_bound_right(rn) > value + _TOLERANCE and bad_right is None:
                        bad_right = (ln, rn)
                matrix.append(row)
            # Monotone non-decreasing in each norm separately (grid is
            # ascending, so compare neighbors along rows and columns).
            for i in range(len(grid)):
                for j in range(1, len(grid)):
                    if matrix[i][j] < matrix[i][j - 1] - _TOLERANCE:
                        non_monotone = True
                    if matrix[j][i] < matrix[j - 1][i] - _TOLERANCE:
                        non_monotone = True
        except Exception as exc:
            report.add(
                "SSJ101",
                SEVERITY_ERROR,
                f"bound {bound!r} raised {type(exc).__name__} while probing "
                f"norm samples: {exc}",
                location,
                hint="bounds must be total over non-negative norms",
            )
            continue
        if bad_left is not None:
            ln, rn = bad_left
            report.add(
                "SSJ101",
                SEVERITY_ERROR,
                f"β-bound inconsistency: lower_bound_left({ln:g}) = "
                f"{bound.lower_bound_left(ln):g} exceeds value({ln:g}, {rn:g}) = "
                f"{bound.value(ln, rn):g}; the left prefix would be too short "
                "and matching pairs silently dropped",
                location,
                hint="lower_bound_left(l) must be <= value(l, r) for every r >= 0 "
                "(Lemma 1 / Section 4.2)",
            )
        if bad_right is not None:
            ln, rn = bad_right
            report.add(
                "SSJ101",
                SEVERITY_ERROR,
                f"β-bound inconsistency: lower_bound_right({rn:g}) = "
                f"{bound.lower_bound_right(rn):g} exceeds value({ln:g}, {rn:g}) = "
                f"{bound.value(ln, rn):g}; the right prefix would be too short "
                "and matching pairs silently dropped",
                location,
                hint="lower_bound_right(r) must be <= value(l, r) for every l >= 0 "
                "(Lemma 1 / Section 4.2)",
            )
        if non_monotone:
            report.add(
                "SSJ105",
                SEVERITY_WARNING,
                f"bound {bound!r} is not monotone non-decreasing in the norms; "
                "no predicate family of Example 2 behaves this way",
                location,
            )


# ---------------------------------------------------------------------------
# SSJ103 — float-equality threshold tests (ast inspection)
# ---------------------------------------------------------------------------

_NUMERIC_METHODS = (
    "value",
    "lower_bound_left",
    "lower_bound_right",
    "threshold",
    "satisfied",
    "left_filter_threshold",
    "right_filter_threshold",
)


def _float_equality_in_source(fn: object) -> Optional[int]:
    """Line offset of an ``==``/``!=`` comparison in *fn*'s body, if any."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))  # type: ignore[arg-type]
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            # `x is None` style identity tests are fine and not Compare/Eq;
            # any value equality inside a threshold method is the hazard.
            return node.lineno
    return None


def _check_float_equality(
    report: AnalysisReport, predicate: OverlapPredicate
) -> None:
    subjects: List[Tuple[str, object]] = [("predicate", type(predicate))]
    for i, bound in enumerate(predicate.bounds):
        subjects.append((f"predicate.bounds[{i}]", type(bound)))
    seen_types = set()
    for location, cls in subjects:
        if cls in seen_types:
            continue
        seen_types.add(cls)
        for method_name in _NUMERIC_METHODS:
            fn = cls.__dict__.get(method_name)
            if fn is None:
                continue
            line = _float_equality_in_source(fn)
            if line is not None:
                report.add(
                    "SSJ103",
                    SEVERITY_ERROR,
                    f"{cls.__name__}.{method_name} compares with ==/!= "
                    "(float-equality threshold test); boundary pairs will "
                    "flip nondeterministically with summation order",
                    f"{location}.{method_name}",
                    hint="use >= / <= with the shared OVERLAP_EPSILON",
                )


# ---------------------------------------------------------------------------
# SSJ104 — verify-step agreement with the predicate family
# ---------------------------------------------------------------------------


def _check_verify_step(
    report: AnalysisReport,
    predicate: OverlapPredicate,
    grid: Sequence[float],
) -> None:
    probe_norms = [n for n in grid if 0.0 < n <= 100.0][:6] or [1.0]
    for ln in probe_norms:
        for rn in probe_norms:
            try:
                t = predicate.threshold(ln, rn)
                at = predicate.satisfied(t, ln, rn)
                below = predicate.satisfied(t - max(0.01, abs(t) * 0.01), ln, rn)
                above = predicate.satisfied(t + max(0.01, abs(t) * 0.01), ln, rn)
            except Exception as exc:
                report.add(
                    "SSJ104",
                    SEVERITY_ERROR,
                    f"predicate raised {type(exc).__name__} during the "
                    f"verify-step probe at norms ({ln:g}, {rn:g}): {exc}",
                    "predicate.satisfied",
                )
                return
            if not at or not above:
                report.add(
                    "SSJ104",
                    SEVERITY_ERROR,
                    "verify step rejects pairs meeting the threshold at norms "
                    f"({ln:g}, {rn:g}): overlap >= threshold must satisfy the "
                    "predicate (boundary pairs are matches under Definition 1)",
                    "predicate.satisfied",
                    hint="satisfied() must implement overlap + eps >= threshold()",
                )
                return
            if t > 0.05 and below:
                report.add(
                    "SSJ104",
                    SEVERITY_ERROR,
                    "verify step admits sub-threshold overlaps at norms "
                    f"({ln:g}, {rn:g}); the predicate family and the verify "
                    "comparison disagree",
                    "predicate.satisfied",
                    hint="satisfied() must implement overlap + eps >= threshold()",
                )
                return


# ---------------------------------------------------------------------------
# SSJ102 — one ordering O across both sides of an encoded plan
# ---------------------------------------------------------------------------


def _ids_sorted(encoded: EncodedPreparedRelation) -> bool:
    for ids in encoded.ids:
        for i in range(1, len(ids)):
            if ids[i - 1] >= ids[i]:
                return False
    return True


def _check_encoding(
    report: AnalysisReport,
    left: PreparedRelation,
    right: PreparedRelation,
    encoding: Tuple[EncodedPreparedRelation, EncodedPreparedRelation],
    ordering: Optional[ElementOrdering],
) -> None:
    enc_left, enc_right = encoding
    for side, enc in (("left", enc_left), ("right", enc_right)):
        if not _ids_sorted(enc):
            report.add(
                "SSJ102",
                SEVERITY_ERROR,
                f"{side} encoding has id arrays not strictly ascending; the "
                "ordering O is violated and prefix slices are meaningless",
                f"encoding.{side}",
                hint="encode with TokenDictionary.encode_sorted",
            )
    dl, dr = enc_left.dictionary, enc_right.dictionary
    if dl is not dr and dl._ids != dr._ids:
        report.add(
            "SSJ102",
            SEVERITY_ERROR,
            "build and probe sides are encoded under different dictionaries "
            f"({dl!r} vs {dr!r}); shared elements get different ids, so the "
            "prefix equi-join silently loses results",
            "encoding",
            hint="encode both sides with one TokenDictionary built over the "
            "joint universe (Section 4.3.2's single global ordering O)",
        )
    for side, enc, rel in (("left", enc_left, left), ("right", enc_right, right)):
        cached = enc.prepared
        if cached is not rel and (
            cached.groups != rel.groups or cached.norms != rel.norms
        ):
            report.add(
                "SSJ102",
                SEVERITY_ERROR,
                f"{side} encoding was built for a different relation "
                f"({cached.name!r}) than the plan input ({rel.name!r})",
                f"encoding.{side}",
                hint="re-encode after changing the inputs (the EncodingCache "
                "verifies content identity for exactly this reason)",
            )
    if ordering is not None and dl is dr:
        # The dictionary claims to realize *ordering*: spot-check that id
        # order and rank order agree on a sample of interned elements.
        sample = list(dl._ids.items())[:64]
        by_id = [e for e, _ in sorted(sample, key=lambda ei: ei[1])]
        by_rank = sorted(by_id, key=ordering.key)
        if by_id != by_rank:
            report.add(
                "SSJ102",
                SEVERITY_ERROR,
                "the encoding dictionary's id order disagrees with the "
                f"supplied ElementOrdering ({ordering.description!r}); build "
                "and probe would prefix under different orders O",
                "encoding.dictionary",
                hint="build the dictionary with "
                "TokenDictionary.from_relations(..., ordering=ordering)",
            )


# ---------------------------------------------------------------------------
# SSJ107 — degenerate prefixes (performance, not correctness)
# ---------------------------------------------------------------------------


def _check_degenerate_prefix(
    report: AnalysisReport,
    left: Optional[PreparedRelation],
    right: Optional[PreparedRelation],
    predicate: OverlapPredicate,
    implementation: str,
) -> None:
    if implementation not in _PREFIX_FAMILY:
        return
    sides = [("left", left, predicate.left_filter_threshold)]
    if implementation not in ("probe", "encoded-probe"):
        # The probe plans only prefix the probing (left) side.
        sides.append(("right", right, predicate.right_filter_threshold))
    for name, rel, threshold_fn in sides:
        if rel is None or not rel.norms:
            continue
        if all(threshold_fn(float(n)) <= 0.0 for n in rel.norms.values()):
            report.add(
                "SSJ107",
                SEVERITY_WARNING,
                f"the {name} side's filter threshold is <= 0 for every group: "
                "its 'prefix' keeps whole sets and filters nothing",
                f"{name}",
                hint="expected for the unnormalized side of a 1-sided "
                "predicate (Section 4.2); otherwise check the bound",
            )


# ---------------------------------------------------------------------------
# SSJ109 — the verification engine must never prune an emitted pair
# ---------------------------------------------------------------------------

#: Largest input (total elements, both sides) the SSJ109 behavioral probe
#: will execute; beyond this the rule is skipped to keep ``verify=True``
#: cheap relative to the join itself.
_VERIFY_FILTER_BUDGET = 2000

#: Signature widths the probe sweeps: 8 bits forces heavy bit collisions
#: (the XOR bound at its weakest — soundness must not depend on width),
#: 64 is the production floor width.
_VERIFY_FILTER_WIDTHS = (8, 64)


def _check_verify_filter(
    report: AnalysisReport,
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
) -> None:
    if left.num_elements + right.num_elements > _VERIFY_FILTER_BUDGET:
        return
    # Imported here: repro.analysis sits above the executable plans, and
    # the behavioral probe is the only rule that runs them.
    from repro.core.basic import basic_ssjoin
    from repro.core.encoded_prefix import encoded_prefix_ssjoin
    from repro.core.verify import VerifyConfig

    try:
        expected = set(basic_ssjoin(left, right, predicate).rows)
    except Exception as exc:
        report.add(
            "SSJ109",
            SEVERITY_ERROR,
            f"basic implementation raised {type(exc).__name__} during the "
            f"verification-filter probe: {exc}",
            "verify_filter",
        )
        return
    for width in _VERIFY_FILTER_WIDTHS:
        config = VerifyConfig(signature_bits=width)
        try:
            got = set(
                encoded_prefix_ssjoin(
                    left, right, predicate, verify_config=config
                ).rows
            )
        except Exception as exc:
            report.add(
                "SSJ109",
                SEVERITY_ERROR,
                f"encoded-prefix plan raised {type(exc).__name__} at "
                f"signature width {width}: {exc}",
                "verify_filter",
            )
            return
        missing = expected - got
        extra = got - expected
        if missing:
            sample = sorted(missing, key=repr)[:3]
            report.add(
                "SSJ109",
                SEVERITY_ERROR,
                f"verification filter pruned {len(missing)} pair(s) the basic "
                f"implementation emits at signature width {width}, e.g. "
                f"{sample}; a bitmap/positional bound is unsound",
                "verify_filter",
                hint="bounds may only reject pairs below threshold - "
                "PRUNE_MARGIN; check the XOR-popcount and max-weight scaling",
            )
        if extra:
            sample = sorted(extra, key=repr)[:3]
            report.add(
                "SSJ109",
                SEVERITY_ERROR,
                f"verification filter emitted {len(extra)} row(s) the basic "
                f"implementation does not at signature width {width}, e.g. "
                f"{sample}; overlap values or admissions were corrupted",
                "verify_filter",
                hint="the early-exit merge must sum the same weights in the "
                "same order as merge_overlap",
            )
        if missing or extra:
            return


# ---------------------------------------------------------------------------
# SSJ108 — parallel shard plans must cover the universe exactly once
# ---------------------------------------------------------------------------


def verify_shards(shards: Sequence[object], universe: int) -> AnalysisReport:
    """Check a parallel shard plan against the coverage invariant.

    *universe* is the size of the space the plan partitions: the
    dictionary size for token-range shards, the left group count for
    group-hash shards.  Token-range shards must tile ``[0, universe)``
    contiguously with no gap or overlap; group-hash shards' position
    lists must form an exact partition of ``range(universe)``.  Either
    violation means the merged parallel result would silently drop or
    duplicate pairs — the one failure mode a parallel join must never
    have.
    """
    # Imported here (not at module top): repro.parallel imports this
    # module for its pre-dispatch check, so the top-level edge must stay
    # one-directional (analysis -> parallel only inside functions).
    from repro.parallel.shards import (
        KIND_GROUP_HASH,
        KIND_TOKEN_RANGE,
        ShardDescriptor,
    )

    report = AnalysisReport()
    if universe < 0:
        report.add(
            "SSJ108", SEVERITY_ERROR,
            f"shard universe must be >= 0, got {universe}", "shards",
        )
        return report
    if not shards:
        if universe > 0:
            report.add(
                "SSJ108",
                SEVERITY_ERROR,
                f"empty shard plan over a universe of {universe}: every "
                "unit of work would be dropped",
                "shards",
            )
        return report

    kinds = {getattr(s, "kind", None) for s in shards}
    if len(kinds) > 1 or not all(isinstance(s, ShardDescriptor) for s in shards):
        report.add(
            "SSJ108",
            SEVERITY_ERROR,
            f"shard plan mixes kinds {sorted(str(k) for k in kinds)}; a plan "
            "must be all token-range or all group-hash",
            "shards",
        )
        return report
    ids = [s.shard_id for s in shards]  # type: ignore[attr-defined]
    if len(set(ids)) != len(ids):
        report.add(
            "SSJ108", SEVERITY_ERROR,
            "duplicate shard_id in plan; per-shard metrics would collide",
            "shards",
        )

    kind = next(iter(kinds))
    if kind == KIND_TOKEN_RANGE:
        ordered = sorted(shards, key=lambda s: s.lo)  # type: ignore[attr-defined]
        expected_lo = 0
        for s in ordered:
            if s.lo >= s.hi:
                report.add(
                    "SSJ108", SEVERITY_ERROR,
                    f"shard {s.shard_id} has empty or inverted range "
                    f"[{s.lo}, {s.hi})", f"shards[{s.shard_id}]",
                )
                return report
            if s.lo != expected_lo:
                gap_or_overlap = "overlap" if s.lo < expected_lo else "gap"
                report.add(
                    "SSJ108",
                    SEVERITY_ERROR,
                    f"token-range {gap_or_overlap} at id {min(s.lo, expected_lo)}: "
                    f"shard {s.shard_id} starts at {s.lo}, expected {expected_lo}; "
                    "candidate pairs would be "
                    + ("enumerated twice" if s.lo < expected_lo else "lost"),
                    f"shards[{s.shard_id}]",
                    hint="ranges must tile [0, universe) contiguously",
                )
                return report
            expected_lo = s.hi
        if expected_lo != universe:
            report.add(
                "SSJ108",
                SEVERITY_ERROR,
                f"token ranges end at {expected_lo} but the dictionary has "
                f"{universe} ids; trailing tokens would never be probed",
                "shards",
                hint="the last shard's hi must equal the universe size",
            )
    elif kind == KIND_GROUP_HASH:
        positions: List[int] = []
        for s in shards:
            positions.extend(s.group_positions)  # type: ignore[attr-defined]
        if sorted(positions) != list(range(universe)):
            missing = sorted(set(range(universe)) - set(positions))[:5]
            dupes = sorted(
                {p for p in positions if positions.count(p) > 1}
            )[:5]
            report.add(
                "SSJ108",
                SEVERITY_ERROR,
                "group-hash shards do not partition the left groups exactly"
                + (f"; missing positions {missing}" if missing else "")
                + (f"; duplicated positions {dupes}" if dupes else ""),
                "shards",
                hint="every group position must appear in exactly one shard",
            )
    else:
        report.add(
            "SSJ108", SEVERITY_ERROR,
            f"unknown shard kind {kind!r}", "shards",
        )
    return report


def check_shards(shards: Sequence[object], universe: int) -> AnalysisReport:
    """Like :func:`verify_shards` but raises :class:`AnalysisError`."""
    report = verify_shards(shards, universe)
    if not report.ok:
        raise AnalysisError(
            f"shard coverage verification failed with "
            f"{len(report.errors())} error(s)",
            report.errors(),
        )
    return report


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def verify_ssjoin(
    left: Optional[PreparedRelation],
    right: Optional[PreparedRelation],
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    implementation: str = "auto",
    encoding: Optional[
        Tuple[EncodedPreparedRelation, EncodedPreparedRelation]
    ] = None,
) -> AnalysisReport:
    """Run every SSJoin invariant rule; returns the structured report.

    *left*/*right* may be ``None`` for a data-free predicate audit (the
    norm grid then uses canonical sample points only).
    """
    report = AnalysisReport()
    if implementation not in KNOWN_IMPLEMENTATIONS:
        report.add(
            "SSJ106",
            SEVERITY_ERROR,
            f"unknown implementation {implementation!r}; expected one of "
            f"{'/'.join(KNOWN_IMPLEMENTATIONS)}",
            "implementation",
        )
    grid = _norm_samples((left, right))
    _check_bound_soundness(report, predicate.bounds, grid)
    _check_float_equality(report, predicate)
    _check_verify_step(report, predicate, grid)
    if encoding is not None and left is not None and right is not None:
        _check_encoding(report, left, right, encoding, ordering)
    _check_degenerate_prefix(report, left, right, predicate, implementation)
    if left is not None and right is not None and report.ok:
        _check_verify_filter(report, left, right, predicate)
    return report


def check_ssjoin(
    left: Optional[PreparedRelation],
    right: Optional[PreparedRelation],
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    implementation: str = "auto",
    encoding: Optional[
        Tuple[EncodedPreparedRelation, EncodedPreparedRelation]
    ] = None,
) -> AnalysisReport:
    """Like :func:`verify_ssjoin` but raises :class:`AnalysisError` on errors.

    Returns the report (with any warnings) when the plan is safe.
    """
    report = verify_ssjoin(
        left, right, predicate, ordering, implementation, encoding
    )
    if not report.ok:
        raise AnalysisError(
            f"SSJoin invariant verification failed with "
            f"{len(report.errors())} error(s)",
            report.errors(),
        )
    return report


# ---------------------------------------------------------------------------
# SSJ114 — persisted artifacts must match the attached dictionary generation
# ---------------------------------------------------------------------------


def verify_storage(path: str) -> AnalysisReport:
    """SSJ114: audit every generation stamp inside an ingested page file.

    The storage layer stamps each persisted artifact (encoding, inverted
    index, verify cache, table manifest) with the **dictionary-generation
    fingerprint** it was built under — a content digest of the complete
    ``element → id`` assignment. An artifact whose stamp disagrees with
    the dictionary the file actually ships is *stale*: its integer ids
    decode through the wrong interning table, which silently remaps
    tokens instead of failing. The runtime decode path raises
    :class:`repro.errors.StaleArtifactError` on first touch; this rule is
    the static twin — it sweeps every stamped segment up front (including
    ones a given workload would never decode) and reports each mismatch
    as a structured ERROR.
    """
    # Imported here (not at module top): analysis must stay importable
    # without the storage layer loaded, mirroring the parallel rule.
    from repro.storage import codecs
    from repro.storage.pages import KIND_META, PageFileReader

    report = AnalysisReport()
    location = str(path)
    try:
        reader = PageFileReader(path)
    except (OSError, StorageError) as exc:
        report.add(
            "SSJ114", SEVERITY_ERROR,
            f"unreadable page file: {exc}", location,
            hint="re-ingest the table with `repro ingest`",
        )
        return report
    try:
        try:
            _, generation = codecs.read_dictionary(reader)
        except StorageError as exc:
            # Covers both a missing/corrupt dictionary and a stamp that
            # does not match the re-derived content digest.
            report.add(
                "SSJ114", SEVERITY_ERROR,
                f"dictionary cannot anchor generation checks: {exc}",
                f"{location}::dict/meta",
                hint="re-ingest the table with `repro ingest`",
            )
            return report
        for info in reader.segments():
            if info.kind != KIND_META or not (
                info.name == "table/meta"
                or info.name.endswith(("enc/meta", "index/meta", "verify/meta",
                                       "pair/meta"))
            ):
                continue
            try:
                meta = codecs._loads(reader.segment(info.name))
            except Exception:  # audit sweep: any decode failure is a finding
                report.add(
                    "SSJ114", SEVERITY_ERROR,
                    f"undecodable artifact metadata segment {info.name!r}",
                    f"{location}::{info.name}",
                )
                continue
            stamped = meta.get("generation") if isinstance(meta, dict) else None
            if stamped != generation:
                report.add(
                    "SSJ114", SEVERITY_ERROR,
                    f"persisted artifact {info.name!r} was built under "
                    f"dictionary generation {str(stamped)[:12]!r} but the "
                    f"file's dictionary is generation {generation[:12]!r}; "
                    "its integer ids would decode through the wrong "
                    "interning table",
                    f"{location}::{info.name}",
                    hint="re-ingest the table with `repro ingest`",
                )
    finally:
        reader.close()
    return report
