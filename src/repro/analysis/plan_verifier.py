"""Static plan verifier: schema propagation over operator trees.

Walks any :class:`~repro.relational.plan.PlanNode` tree *before
execution*, propagating each operator's declared output schema
(:meth:`PlanNode.output_schema`) bottom-up and checking every reference
against the schema actually flowing into it. Catches, without running a
single row:

``PV101`` unknown column reference (Select/Project/Extend/OrderBy/
GroupBy/Groupwise/join keys).
``PV102`` duplicate output column (identical join prefixes, Extend over
an existing name, aggregate output colliding with a group key).
``PV103`` GROUP BY / HAVING mismatch — HAVING referencing a column that
is neither a group key nor an aggregate output.
``PV104`` join-key type conflict — both sides declare dtypes and they
disagree, so the equi-join can never match (or matches by accident).
``PV105`` unordered input feeding an order-sensitive consumer — a
``Limit`` whose child subtree establishes no order truncates
nondeterministically.
``PV106`` structurally empty join key list.

SSJoin nodes additionally get plan-level invariant checks in the SSJ
namespace (shared with :mod:`repro.analysis.invariants`):

``SSJ110`` SSJoin predicate is not a valid :class:`OverlapPredicate`.
``SSJ111`` an SSJoin input subtree provably lacks the normalized-set
columns (``a``, ``b``).
``SSJ112`` unknown physical implementation name on an SSJoin node.
``SSJ113`` batch/row protocol mix without a boundary adapter — a node
declares ``batch_protocol = "batch"`` but inherits the base (row)
:meth:`PlanNode.batches`, or ships a vectorized :meth:`batches` kernel
while declaring the row protocol, so root execution and streamed
consumption would run different kernels. Checked for **every** node.

Subtrees with unknown schemas (opaque :class:`Custom`/:class:`Groupwise`
nodes whose output can be neither declared nor probed) are skipped
gracefully: the verifier reports what it can prove and never guesses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
)
from repro.errors import AnalysisError
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expr
from repro.relational.plan import (
    Distinct,
    Extend,
    GroupBy,
    Groupwise,
    HashJoin,
    LeftOuterJoin,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    OrderBy,
    PlanNode,
    Project,
    Rename,
    Select,
    SSJoinNode,
    TableScan,
)
from repro.relational.schema import Schema

__all__ = ["verify_plan", "check_plan"]


def _ref_resolves(name: str, schema: Schema) -> bool:
    """Whether a (possibly qualified) column reference binds in *schema*.

    Mirrors the engine's resolution rules: exact name, unique ``.name``
    suffix match (SQL-style bare reference against a prefixed join
    output), or qualifier-stripped exact match (``t.x`` finding ``x`` in
    a single-table schema).
    """
    if name in schema:
        return True
    suffix_matches = [n for n in schema.names if n.endswith("." + name)]
    if len(suffix_matches) == 1:
        return True
    if "." in name:
        _, _, bare = name.partition(".")
        if bare in schema:
            return True
    return False


def _check_refs(
    report: AnalysisReport,
    names: Sequence[str],
    schema: Optional[Schema],
    location: str,
    context: str,
) -> None:
    if schema is None:
        return
    for name in names:
        if not _ref_resolves(name, schema):
            report.add(
                "PV101",
                SEVERITY_ERROR,
                f"unknown column {name!r} in {context}; "
                f"input columns: {', '.join(schema.names) or '(none)'}",
                location,
                hint="fix the reference or project/extend the column upstream",
            )


def _expr_columns(expr: Expr) -> Tuple[str, ...]:
    try:
        return expr.columns()
    except Exception:  # pragma: no cover - defensive: exotic Expr subclasses
        return ()


def _order_key_names(keys: Sequence[object]) -> List[str]:
    names: List[str] = []
    for k in keys:
        target: object = k
        if isinstance(k, (tuple, list)) and k:
            target = k[0]
        if isinstance(target, str):
            names.append(target)
        elif isinstance(target, Expr):
            # Expression sort keys (e.g. SQL ORDER BY over a select
            # alias) contribute every column they reference.
            names.extend(_expr_columns(target))
    return names


def _join_key_names(keys: object) -> Tuple[List[str], List[str]]:
    """Static mirror of :func:`repro.relational.joins._resolve_keys`."""
    if isinstance(keys, str):
        return [keys], [keys]
    left: List[str] = []
    right: List[str] = []
    try:
        for k in keys:  # type: ignore[union-attr]
            if isinstance(k, str):
                left.append(k)
                right.append(k)
            else:
                l, r = k
                left.append(l)
                right.append(r)
    except (TypeError, ValueError):
        return [], []
    return left, right


def _establishes_order(node: PlanNode) -> bool:
    """Whether this subtree's output has a deterministic row order.

    ``OrderBy`` establishes one; order-preserving unary operators pass it
    through. Joins, grouping, and opaque nodes do not guarantee one.
    """
    if isinstance(node, OrderBy):
        return True
    if isinstance(node, (Select, Project, Extend, Rename, Distinct, Limit)):
        return _establishes_order(node.children[0])
    return False


def _walk(
    node: PlanNode,
    catalog: Optional[Catalog],
    report: AnalysisReport,
    path: str,
) -> Optional[Schema]:
    """Verify *node*, returning its output schema (None if unknown)."""
    location = f"{path}{node.label()}"
    _check_batch_protocol(node, report, location)

    child_schemas: List[Optional[Schema]] = []
    for i, child in enumerate(node.children):
        tag = ""
        if isinstance(node, (HashJoin, MergeJoin, LeftOuterJoin, NestedLoopJoin)):
            tag = "left" if i == 0 else "right"
        child_path = f"{location} > " if not tag else f"{location}[{tag}] > "
        child_schemas.append(_walk(child, catalog, report, child_path))

    if isinstance(node, TableScan):
        if catalog is not None and node.table not in catalog:
            report.add(
                "PV101",
                SEVERITY_ERROR,
                f"unknown table {node.table!r}",
                location,
                hint="register the table in the catalog before executing",
            )
    elif isinstance(node, Select):
        _check_refs(
            report,
            _expr_columns(node.predicate),
            child_schemas[0],
            location,
            "selection predicate",
        )
    elif isinstance(node, Project):
        schema = child_schemas[0]
        if schema is not None:
            seen = set()
            for c in node.columns:
                name = c if isinstance(c, str) else c[0]
                if isinstance(c, str):
                    _check_refs(report, [c], schema, location, "projection")
                else:
                    _check_refs(
                        report,
                        _expr_columns(c[1]),
                        schema,
                        location,
                        f"derived column {name!r}",
                    )
                if name in seen:
                    report.add(
                        "PV102",
                        SEVERITY_ERROR,
                        f"duplicate output column {name!r} in projection",
                        location,
                    )
                seen.add(name)
    elif isinstance(node, Extend):
        schema = child_schemas[0]
        _check_refs(
            report,
            _expr_columns(node.expr),
            schema,
            location,
            f"extension expression for {node.column!r}",
        )
        if schema is not None and node.column in schema:
            report.add(
                "PV102",
                SEVERITY_ERROR,
                f"Extend would duplicate existing column {node.column!r}",
                location,
                hint="pick a fresh column name or Project the old one away first",
            )
    elif isinstance(node, OrderBy):
        _check_refs(
            report,
            _order_key_names(node.keys),
            child_schemas[0],
            location,
            "sort keys",
        )
    elif isinstance(node, Limit):
        if not _establishes_order(node.children[0]):
            report.add(
                "PV105",
                SEVERITY_WARNING,
                "Limit over an input with no established order truncates "
                "nondeterministically",
                location,
                hint="insert an OrderBy below the Limit",
            )
    elif isinstance(node, (HashJoin, MergeJoin, LeftOuterJoin)):
        lkeys, rkeys = _join_key_names(node.keys)
        if not lkeys:
            report.add(
                "PV106",
                SEVERITY_ERROR,
                "equi-join requires at least one key column",
                location,
            )
        left_schema, right_schema = child_schemas
        _check_refs(report, lkeys, left_schema, location, "left join keys")
        _check_refs(report, rkeys, right_schema, location, "right join keys")
        if left_schema is not None and right_schema is not None:
            for lk, rk in zip(lkeys, rkeys):
                if lk in left_schema and rk in right_schema:
                    lt = left_schema.column(lk).dtype
                    rt = right_schema.column(rk).dtype
                    if lt is not None and rt is not None and lt is not rt:
                        report.add(
                            "PV104",
                            SEVERITY_ERROR,
                            f"join key type conflict: {lk!r} is "
                            f"{lt.__name__} but {rk!r} is {rt.__name__}",
                            location,
                            hint="cast one side or fix the column declaration",
                        )
            if node.prefixes is not None and node.prefixes[0] == node.prefixes[1]:
                report.add(
                    "PV102",
                    SEVERITY_ERROR,
                    f"identical join prefixes {node.prefixes!r} would produce "
                    "duplicate qualified columns",
                    location,
                )
    elif isinstance(node, GroupBy):
        schema = child_schemas[0]
        _check_refs(report, node.keys, schema, location, "group keys")
        for agg in node.aggregates:
            if agg.input_expr is not None:
                _check_refs(
                    report,
                    _expr_columns(agg.input_expr),
                    schema,
                    location,
                    f"aggregate {agg.name!r} input",
                )
        agg_names = [a.name for a in node.aggregates]
        for name in agg_names:
            if name in node.keys:
                report.add(
                    "PV102",
                    SEVERITY_ERROR,
                    f"aggregate output {name!r} collides with a group key",
                    location,
                )
        if node.having is not None:
            out_names = list(node.keys) + agg_names
            for name in _expr_columns(node.having):
                if name not in out_names:
                    report.add(
                        "PV103",
                        SEVERITY_ERROR,
                        f"HAVING references {name!r}, which is neither a "
                        f"group key ({', '.join(node.keys) or 'none'}) nor "
                        f"an aggregate output ({', '.join(agg_names) or 'none'})",
                        location,
                        hint="aggregate the column or add it to the group keys",
                    )
    elif isinstance(node, Groupwise):
        _check_refs(report, node.keys, child_schemas[0], location, "groupwise keys")
    elif isinstance(node, SSJoinNode):
        _check_ssjoin_node(node, child_schemas, report, location)

    return node.output_schema(catalog)


def _check_batch_protocol(
    node: PlanNode, report: AnalysisReport, location: str
) -> None:
    """SSJ113: the node's protocol declaration must match its kernels.

    The base :meth:`PlanNode.batches` is the row->batch boundary adapter;
    a node declaring ``batch_protocol = "batch"`` while inheriting it
    claims vectorization it does not have (EXPLAIN and batch-protocol
    parents would be misled), and a ``"row"`` node shipping its own
    ``batches`` kernel executes different code as a plan root than as a
    streamed child — a protocol mix with no adapter guaranteeing the two
    agree.
    """
    cls = type(node)
    declares_batch = getattr(node, "batch_protocol", "row") == "batch"
    has_kernel = cls.batches is not PlanNode.batches
    if declares_batch and not has_kernel:
        report.add(
            "SSJ113",
            SEVERITY_ERROR,
            f"{cls.__name__} declares batch_protocol='batch' but inherits "
            "the row boundary adapter (no batches() kernel)",
            location,
            hint="override batches() with a vectorized kernel, or declare "
            "batch_protocol='row' and let the base adapter bridge it",
        )
    elif not declares_batch and has_kernel:
        report.add(
            "SSJ113",
            SEVERITY_ERROR,
            f"{cls.__name__} overrides batches() but declares "
            "batch_protocol='row', so root execution bypasses its "
            "vectorized kernel",
            location,
            hint="declare batch_protocol='batch' (and override _run_batched "
            "to fold the stream) so both paths run the same kernel",
        )


def _check_ssjoin_node(
    node: SSJoinNode,
    child_schemas: Sequence[Optional[Schema]],
    report: AnalysisReport,
    location: str,
) -> None:
    """Plan-level SSJoin invariants (SSJ110–SSJ112)."""
    # Imported here: repro.core layers above repro.relational, and this
    # module otherwise only needs the relational layer.
    from repro.core.optimizer import IMPLEMENTATIONS
    from repro.core.predicate import OverlapPredicate

    if not isinstance(node.predicate, OverlapPredicate) or not node.predicate.bounds:
        report.add(
            "SSJ110",
            SEVERITY_ERROR,
            f"SSJoin predicate {node.predicate!r} is not an OverlapPredicate "
            "with at least one bound",
            location,
            hint="build the predicate with OverlapPredicate.absolute/"
            "one_sided/two_sided/max_norm",
        )
    if node.implementation != "auto" and node.implementation not in IMPLEMENTATIONS:
        report.add(
            "SSJ112",
            SEVERITY_ERROR,
            f"unknown SSJoin implementation {node.implementation!r}; "
            f"expected auto or one of {', '.join(IMPLEMENTATIONS)}",
            location,
        )
    for side, schema in zip(("left", "right"), child_schemas):
        if schema is None:
            continue
        missing = [c for c in ("a", "b") if c not in schema]
        if missing:
            report.add(
                "SSJ111",
                SEVERITY_ERROR,
                f"SSJoin {side} input lacks normalized-set column(s) "
                f"{', '.join(repr(m) for m in missing)}; input columns: "
                f"{', '.join(schema.names) or '(none)'}",
                location,
                hint="feed a prepared relation or a table with at least "
                "(a, b) columns",
            )


def verify_plan(
    plan: PlanNode, catalog: Optional[Catalog] = None
) -> AnalysisReport:
    """Statically verify *plan*; returns the structured report.

    >>> from repro.relational.plan import TableScan, Select
    >>> from repro.relational.expressions import col
    >>> from repro.relational.catalog import Catalog
    >>> from repro.relational.relation import Relation
    >>> c = Catalog()
    >>> _ = c.register("t", Relation.from_rows(["a"], [("x",)]))
    >>> bad = Select(TableScan("t"), col("nope") >= 1)
    >>> [d.rule for d in verify_plan(bad, c)]
    ['PV101']
    """
    report = AnalysisReport()
    _walk(plan, catalog, report, "")
    return report


def check_plan(plan: PlanNode, catalog: Optional[Catalog] = None) -> None:
    """Verify *plan* and raise :class:`AnalysisError` on any error."""
    report = verify_plan(plan, catalog)
    if not report.ok:
        raise AnalysisError(
            f"plan verification failed with {len(report.errors())} error(s)",
            report.errors(),
        )
