"""Per-function control-flow graphs over stdlib ``ast``.

:func:`build_cfg` lowers one function body into basic blocks of
statements connected by successor edges — the graph the forward
interpreter (:mod:`repro.analysis.dataflow.interp`) runs its worklist
over. Loop headers (``for``/``while``) occupy a block of their own so
the interpreter evaluates the iterable / condition exactly once per
fixpoint visit, and every block records the identity of the loops that
lexically enclose it (``loop_ids``) — that is how "this append happens
under iteration of an unordered container" survives the flattening into
blocks.

The lowering is *sound for the DF3xx lattice*, not a general-purpose
CFG: exceptions are approximated by joining every ``try`` handler after
the protected body, ``break``/``continue`` jump to the loop exit/header,
and unreachable tails after ``return``/``raise`` land in disconnected
blocks the worklist never visits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["BasicBlock", "CFG", "build_cfg"]


@dataclass
class BasicBlock:  # repro: ignore[RL204] -- builder output, wired up incrementally
    """A straight-line run of statements with explicit successors."""

    bid: int
    statements: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    #: ids (``id(node)``) of the ``for`` loops lexically enclosing this
    #: block — consulted by the interpreter's unordered-loop context.
    loop_ids: Tuple[int, ...] = ()


@dataclass
class CFG:  # repro: ignore[RL204] -- builder output, wired up incrementally
    """Blocks + entry/exit ids; ``rpo()`` yields a worklist seed order."""

    blocks: List[BasicBlock]
    entry: int
    exit: int

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry (loop headers before bodies)."""
        seen = [False] * len(self.blocks)
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen[self.entry] = True
        while stack:
            bid, i = stack[-1]
            succs = self.blocks[bid].succs
            if i < len(succs):
                stack[-1] = (bid, i + 1)
                nxt = succs[i]
                if not seen[nxt]:
                    seen[nxt] = True
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(bid)
        order.reverse()
        return order

    def preds(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in self.blocks]
        for b in self.blocks:
            for s in b.succs:
                out[s].append(b.bid)
        return out


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        #: (header block, after block) per open loop, for break/continue.
        self.loop_stack: List[Tuple[int, int]] = []
        #: lexical ``for``-loop context for new blocks.
        self.loop_ctx: Tuple[int, ...] = ()

    def new_block(self) -> int:
        b = BasicBlock(bid=len(self.blocks), loop_ids=self.loop_ctx)
        self.blocks.append(b)
        return b.bid

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    # -- statement lowering ------------------------------------------------

    def lower_body(self, stmts: List[ast.stmt], current: int) -> Optional[int]:
        """Lower *stmts* starting in block *current*; returns the open
        block all fall-through paths end in, or ``None`` if every path
        diverged (return/raise/break/continue)."""
        open_block: Optional[int] = current
        for stmt in stmts:
            if open_block is None:
                # Unreachable tail: park it in a disconnected block
                # (never visited by the worklist, but still lowered so
                # nested definitions are discoverable).
                self._lower(stmt, self.new_block())
                continue
            open_block = self._lower(stmt, open_block)
        return open_block

    def _lower(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_for(stmt, current)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, current)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._lower_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].statements.append(stmt)
            return self.lower_body(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(stmt)
            return None
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][0])
            return None
        self.blocks[current].statements.append(stmt)
        return current

    def _lower_if(self, stmt: ast.If, current: int) -> Optional[int]:
        # The test expression rides in the current block (evaluated for
        # taint side-conditions; branches are not path-sensitive).
        self.blocks[current].statements.append(_TestMarker(stmt.test))
        then_b = self.new_block()
        self.edge(current, then_b)
        then_end = self.lower_body(stmt.body, then_b)
        if stmt.orelse:
            else_b = self.new_block()
            self.edge(current, else_b)
            else_end = self.lower_body(stmt.orelse, else_b)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        after = self.new_block()
        if then_end is not None:
            self.edge(then_end, after)
        if else_end is not None:
            self.edge(else_end, after)
        return after

    def _lower_loop(
        self, stmt: ast.stmt, current: int, body: List[ast.stmt],
        orelse: List[ast.stmt], loop_id: Optional[int],
    ) -> Optional[int]:
        header = self.new_block()
        self.blocks[header].statements.append(stmt)
        self.edge(current, header)
        after = self.new_block()
        self.edge(header, after)
        saved_ctx = self.loop_ctx
        if loop_id is not None:
            self.loop_ctx = saved_ctx + (loop_id,)
        body_b = self.new_block()
        self.edge(header, body_b)
        self.loop_stack.append((header, after))
        body_end = self.lower_body(body, body_b)
        self.loop_stack.pop()
        self.loop_ctx = saved_ctx
        if body_end is not None:
            self.edge(body_end, header)
        if orelse:
            return self.lower_body(orelse, after)
        return after

    def _lower_for(self, stmt: ast.stmt, current: int) -> Optional[int]:
        assert isinstance(stmt, (ast.For, ast.AsyncFor))
        return self._lower_loop(stmt, current, stmt.body, stmt.orelse, id(stmt))

    def _lower_while(self, stmt: ast.While, current: int) -> Optional[int]:
        return self._lower_loop(stmt, current, stmt.body, stmt.orelse, None)

    def _lower_try(self, stmt: ast.stmt, current: int) -> Optional[int]:
        body = getattr(stmt, "body", [])
        handlers = getattr(stmt, "handlers", [])
        orelse = getattr(stmt, "orelse", [])
        final = getattr(stmt, "finalbody", [])
        body_end = self.lower_body(body, current)
        ends: List[int] = []
        if body_end is not None:
            if orelse:
                body_end = self.lower_body(orelse, body_end)
            if body_end is not None:
                ends.append(body_end)
        for handler in handlers:
            hb = self.new_block()
            # Any prefix of the body may have run before the handler —
            # joining from the try entry is the sound approximation.
            self.edge(current, hb)
            if handler.name:
                hb_block = self.blocks[hb]
                hb_block.statements.append(_BindMarker(handler.name, handler))
            h_end = self.lower_body(handler.body, hb)
            if h_end is not None:
                ends.append(h_end)
        if not ends:
            if final:
                dangling = self.new_block()
                self.edge(current, dangling)
                self.lower_body(final, dangling)
            return None
        after = self.new_block()
        for e in ends:
            self.edge(e, after)
        if final:
            return self.lower_body(final, after)
        return after


class _TestMarker(ast.stmt):
    """Wrapper placing a branch test expression into a block."""

    _fields = ("value",)

    def __init__(self, value: ast.expr) -> None:
        self.value = value
        self.lineno = getattr(value, "lineno", 1)
        self.end_lineno = getattr(value, "end_lineno", self.lineno)
        self.col_offset = getattr(value, "col_offset", 0)


class _BindMarker(ast.stmt):
    """Wrapper binding an exception-handler name in its block."""

    _fields = ("name",)

    def __init__(self, name: str, node: ast.AST) -> None:
        self.name = name
        self.lineno = getattr(node, "lineno", 1)
        self.end_lineno = getattr(node, "end_lineno", self.lineno)
        self.col_offset = getattr(node, "col_offset", 0)


def build_cfg(fn: ast.AST) -> CFG:
    """Lower *fn* (a ``FunctionDef``/``AsyncFunctionDef``) into a CFG."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    builder = _Builder()
    entry = builder.new_block()
    body = fn.body if not isinstance(fn, ast.Lambda) else [ast.Return(value=fn.body)]
    end = builder.lower_body(body, entry)
    exit_b = builder.new_block()
    if end is not None:
        builder.edge(end, exit_b)
    return CFG(blocks=builder.blocks, entry=entry, exit=exit_b)
