"""The DF3xx rule series: dataflow determinism & kernel purity.

Three passes over the facts the abstract interpreter collects
(:mod:`repro.analysis.dataflow.interp`), reported through the shared
``Diagnostic``/``AnalysisReport`` vocabulary:

**Ordering taint (DF301)** — a value whose content order derives from
unordered iteration (set/dict-of-set iteration, ``os.listdir``,
hash-order) must pass a canonicalization point (``sorted``, the engine's
``_canonical_relation``) before it is emitted: returned/yielded from a
parallel kernel, or placed into a result constructor (``Batch``,
``BatchStream``, ``ColumnarRelation``, ``Relation``) anywhere.

**Kernel purity (DF302-DF304)** — a *kernel* (a function shipped to a
``ProcessPoolExecutor``, a pool ``initializer=``, or a vectorized batch
method such as ``bind_select``/``batches``/``_run_batched`` on a
``batch_protocol``/``_VectorizedNode`` class) must not mutate its
parameters in place (DF302), must not write module globals or nonlocals
(DF303), and must be picklable — no lambdas or nested closures shipped
across the process boundary (DF304).

**Nondeterminism & float order (DF305-DF306)** — wall-clock/random/
``id()``/``hash()`` values must not reach emitted data (DF305; telemetry
keyword arguments like ``seconds=`` are exempt), and float accumulation
in an order the engine does not control is flagged (DF306) unless the
reduction is order-insensitive (``math.fsum``) or canonicalized first.

Rule table:

====== ======== =========================================================
DF300  error    file does not parse (nothing else can be checked)
DF301  error    order-tainted value emitted without canonicalization
DF302  error    kernel mutates a caller-owned parameter in place
DF303  error    kernel writes module-global / nonlocal state
DF304  error    unpicklable callable (lambda / closure) shipped to a pool
DF305  error    nondeterministic value flows into emitted data
DF306  warning  order-sensitive float accumulation under unordered order
DF399  error    selfcheck: seeded defect missed / rule fired vacuously
====== ======== =========================================================

All DF3xx findings honor ``# repro: ignore[DF30x]`` statement comments
and ``# repro: ignore-file[...]`` (see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.dataflow.interp import Event, FunctionFacts, analyze_function
from repro.analysis.dataflow.summaries import (
    FunctionInfo,
    SummaryTable,
    build_summaries,
    collect_functions,
)
from repro.analysis.suppress import SuppressionIndex

__all__ = ["DF_RULES", "DataflowAnalyzer", "analyze_dataflow", "analyze_sources"]

#: rule id -> (severity, one-line contract) — the public catalog.
DF_RULES: Dict[str, Tuple[str, str]] = {
    "DF300": ("error", "file does not parse; dataflow audit skipped"),
    "DF301": ("error", "order-tainted value emitted without canonicalization"),
    "DF302": ("error", "kernel mutates a caller-owned parameter in place"),
    "DF303": ("error", "kernel writes module-global or nonlocal state"),
    "DF304": ("error", "unpicklable callable shipped across the process boundary"),
    "DF305": ("error", "nondeterministic value flows into emitted data"),
    "DF306": ("warning", "order-sensitive float accumulation under unordered iteration"),
    "DF399": ("error", "selfcheck corpus defect missed or rule fired vacuously"),
}

#: Executor/pool methods whose callable argument crosses a process
#: boundary (first positional argument is the shipped function).
_POOL_METHODS = frozenset({"submit", "map", "apply_async", "imap", "imap_unordered"})
#: Methods that ARE the vectorized kernel surface on batch-protocol nodes.
_KERNEL_METHODS = frozenset({"bind_select", "batches", "_run_batched"})
#: Base-class names marking a class as a vectorized plan node.
_VECTOR_BASES = frozenset({"_VectorizedNode", "VectorizedNode"})


@dataclass
class _Module:  # repro: ignore[RL204] -- loader output, filled incrementally
    path: str
    tree: ast.Module
    suppress: SuppressionIndex
    functions: List[FunctionInfo] = field(default_factory=list)


def _pool_callable_args(call: ast.Call) -> List[ast.expr]:
    """Expressions shipped across a process boundary by *call*, if any."""
    shipped: List[ast.expr] = []
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
        if call.args:
            shipped.append(call.args[0])
    for kw in call.keywords:
        if kw.arg == "initializer":
            shipped.append(kw.value)
    return shipped


def _batch_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
        if name in _VECTOR_BASES:
            return True
    for item in node.body:
        targets: List[ast.expr] = []
        if isinstance(item, ast.Assign):
            targets = item.targets
            value = item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets = [item.target]
            value = item.value
        else:
            continue
        for t in targets:
            if (
                isinstance(t, ast.Name)
                and t.id == "batch_protocol"
                and isinstance(value, ast.Constant)
                and value.value == "batch"
            ):
                return True
    return False


class DataflowAnalyzer:
    """One audit run over a set of parsed modules (see module docstring).

    Usage: construct, :meth:`load` each file (or use the
    :func:`analyze_dataflow` / :func:`analyze_sources` wrappers), then
    :meth:`run` to get the populated :class:`AnalysisReport`.
    """

    def __init__(self, report: Optional[AnalysisReport] = None) -> None:
        self.report = report if report is not None else AnalysisReport()
        self.modules: List[_Module] = []
        #: basenames of functions shipped to pools anywhere in the run.
        self.kernel_names: Set[str] = set()
        #: qualnames ("Class.method") of vectorized kernel methods.
        self.kernel_quals: Set[str] = set()
        self.function_count = 0

    # -- loading -----------------------------------------------------------

    def load(self, path: Union[str, Path], source: str) -> None:
        path = str(path)
        lines = source.splitlines()
        suppress = SuppressionIndex(lines)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.report.add(
                "DF300",
                DF_RULES["DF300"][0],
                f"syntax error: {exc.msg}",
                location=f"{path}:{exc.lineno or 1}",
                hint="fix the parse error; no dataflow facts were computed",
            )
            return
        self.modules.append(_Module(path=path, tree=tree, suppress=suppress))

    # -- kernel discovery --------------------------------------------------

    def _discover_kernels(self) -> None:
        for mod in self.modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call):
                    for shipped in _pool_callable_args(node):
                        if isinstance(shipped, ast.Name):
                            self.kernel_names.add(shipped.id)
                        elif isinstance(shipped, ast.Attribute):
                            self.kernel_names.add(shipped.attr)
                elif isinstance(node, ast.ClassDef) and _batch_class(node):
                    for item in node.body:
                        if (
                            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and item.name in _KERNEL_METHODS
                        ):
                            self.kernel_quals.add(f"{node.name}.{item.name}")

    def _is_kernel(self, info: FunctionInfo) -> bool:
        return info.name in self.kernel_names or info.qualname in self.kernel_quals

    # -- emission ----------------------------------------------------------

    def _emit(
        self,
        mod: _Module,
        rule: str,
        span: Tuple[int, int],
        message: str,
        hint: str,
    ) -> None:
        if mod.suppress.suppressed(span, rule):
            return
        self.report.add(
            rule,
            DF_RULES[rule][0],
            message,
            location=f"{mod.path}:{span[0]}",
            hint=hint,
        )

    # -- per-function rule application ------------------------------------

    def _apply_events(
        self, mod: _Module, info: FunctionInfo, facts: FunctionFacts,
        is_kernel: bool,
    ) -> None:
        where = f"{info.qualname}()"
        for ev in facts.events:
            if ev.kind in ("emit-return", "emit-yield", "emit-constructor"):
                self._apply_emit(mod, where, ev, is_kernel)
            elif ev.kind == "param-mutation" and is_kernel:
                if ev.name in ("self", "cls"):
                    continue
                self._emit(
                    mod, "DF302", ev.span,
                    f"kernel {where} mutates parameter {ev.name!r} in "
                    f"place ({ev.detail})",
                    "kernels must treat arguments as caller-owned; make a "
                    "defensive copy (e.g. rows = list(rows)) before mutating",
                )
            elif ev.kind in ("global-write", "nonlocal-write") and is_kernel:
                what = "nonlocal" if ev.kind == "nonlocal-write" else "module global"
                self._emit(
                    mod, "DF303", ev.span,
                    f"kernel {where} writes {what} {ev.name!r}"
                    + (f" ({ev.detail})" if ev.detail else ""),
                    "worker-side state diverges per process and never returns "
                    "to the parent; thread state through arguments/returns",
                )
            elif ev.kind == "float-accum":
                self._emit(
                    mod, "DF306", ev.span,
                    f"{where}: {ev.detail}",
                    "float addition is not associative: canonicalize the "
                    "iteration (sorted(...)) or use an exact reduction "
                    "(math.fsum) so the sum is order-independent",
                )

    def _apply_emit(
        self, mod: _Module, where: str, ev: Event, is_kernel: bool
    ) -> None:
        # Result constructors are emission points everywhere; plain
        # return/yield is an emission point only across the kernel
        # boundary (helpers get their taint carried by summaries).
        is_constructor = ev.kind == "emit-constructor"
        if not (is_constructor or is_kernel):
            return
        sink = (
            f"{ev.name}(...)" if is_constructor
            else ("yield" if ev.kind == "emit-yield" else "return")
        )
        origin = ev.value.origin
        if ev.value.tainted or ev.value.unordered:
            self._emit(
                mod, "DF301", ev.span,
                f"{where}: order-tainted value reaches {sink}"
                + (f" — {origin}" if origin else ""),
                "order derived from unordered iteration must pass a "
                "canonicalization point (sorted(...), _canonical_relation) "
                "before being emitted",
            )
        if ev.value.nondet:
            self._emit(
                mod, "DF305", ev.span,
                f"{where}: nondeterministic value reaches {sink}"
                + (f" — {origin}" if origin else ""),
                "wall clocks / random / id() must not decide emitted data; "
                "telemetry belongs in dedicated *seconds*/*metrics* fields",
            )

    def _apply_pool_shipping(self, mod: _Module) -> None:
        """DF304: lambdas and nested defs do not pickle across a
        ``ProcessPoolExecutor`` boundary."""
        for outer in ast.walk(mod.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested = {
                n.name
                for n in ast.walk(outer)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not outer
            }
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call):
                    continue
                for shipped in _pool_callable_args(node):
                    span = (
                        getattr(shipped, "lineno", node.lineno),
                        getattr(shipped, "end_lineno", node.lineno),
                    )
                    if isinstance(shipped, ast.Lambda):
                        self._emit(
                            mod, "DF304", span,
                            f"{outer.name}(): lambda shipped to a process "
                            "pool is unpicklable",
                            "hoist the callable to module level; closures and "
                            "lambdas cannot cross the pickle boundary",
                        )
                    elif isinstance(shipped, ast.Name) and shipped.id in nested:
                        self._emit(
                            mod, "DF304", span,
                            f"{outer.name}(): nested function "
                            f"{shipped.id!r} shipped to a process pool "
                            "captures its enclosing scope and is unpicklable",
                            "hoist the worker function to module level and "
                            "pass captured state explicitly as arguments",
                        )

    # -- driver ------------------------------------------------------------

    def run(self) -> AnalysisReport:
        self._discover_kernels()
        table, _ = build_summaries(
            (mod.path, mod.tree) for mod in self.modules
        )
        for mod in self.modules:
            mod.functions = collect_functions(mod.tree, mod.path)
            self._apply_pool_shipping(mod)
            for info in mod.functions:
                is_kernel = self._is_kernel(info)
                facts = analyze_function(
                    info.node, info.path, info.qualname, table.resolve
                )
                self.function_count += 1
                self._apply_events(mod, info, facts, is_kernel)
                # Nested defs inherit the kernel context they run in.
                for inner in ast.walk(info.node):
                    if (
                        isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and inner is not info.node
                    ):
                        inner_info = FunctionInfo(
                            inner.name,
                            f"{info.qualname}.{inner.name}",
                            mod.path,
                            inner,
                        )
                        inner_facts = analyze_function(
                            inner, mod.path, inner_info.qualname, table.resolve
                        )
                        self.function_count += 1
                        self._apply_events(
                            mod, inner_info, inner_facts,
                            is_kernel or inner.name in self.kernel_names,
                        )
        return self.report


def _iter_py_files(paths: Sequence[Union[str, Path]]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def analyze_dataflow(
    paths: Sequence[Union[str, Path]],
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Audit every ``.py`` under *paths* (files or directories)."""
    analyzer = DataflowAnalyzer(report)
    for file in _iter_py_files(paths):
        analyzer.load(file, file.read_text(encoding="utf-8"))
    return analyzer.run()


def analyze_sources(
    items: Sequence[Tuple[str, str]],
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Audit in-memory *(path, source)* pairs — the test entry point."""
    analyzer = DataflowAnalyzer(report)
    for path, source in items:
        analyzer.load(path, source)
    return analyzer.run()
