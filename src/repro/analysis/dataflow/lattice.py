"""The abstract domain of the dataflow auditor.

One :class:`AbstractValue` describes everything the DF3xx passes need to
know about a runtime value, as four independent boolean facts forming a
product lattice (pointwise ``or`` is the join; the lattice is finite, so
join doubles as the widening operator and every fixpoint terminates):

``unordered``
    The value is an unordered container — a ``set``/``frozenset`` (or a
    parameter annotated as one) whose *iteration order* is hash-order.
    Holding or returning one is fine; iterating one is where order
    taint is born.
``tainted``
    The value is an ordered object (list, tuple, dict, scalar position)
    whose **content order** was derived from unordered iteration —
    ``list(a_set)``, a comprehension over a set, appends inside a loop
    over a set, ``os.listdir`` output. Emitting such a value crosses the
    bit-identical contract unless a canonicalization point
    (``sorted(...)``, ``_canonical_relation``) intervenes.
``nondet``
    The value derives from a nondeterministic source: wall clocks,
    unseeded ``random``, ``id()``, ``uuid``/``os.urandom``, builtin
    ``hash()`` (randomized per process for strings). Flowing one into
    emitted data breaks run-to-run reproducibility (telemetry fields
    are exempted by the rules, not the lattice).
``mutable``
    The value is a mutable container created locally (list/dict/set
    display or constructor) — what a worker closure must not capture.

``origin`` carries a human-readable description of the *first* source
that set a taint bit, so diagnostics can say "derives from set iteration
at line 12" instead of just pointing at the sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "AbstractValue",
    "CLEAN",
    "MUTABLE",
    "State",
    "UNORDERED",
    "join",
    "join_states",
    "nondet_value",
    "tainted_value",
    "unordered_value",
]


@dataclass(frozen=True)
class AbstractValue:
    """One point of the product lattice (see module docstring).

    ``alias_of`` additionally names the *parameter* this value is a
    direct alias of (flows through plain ``x = param`` assignments, is
    dropped by any constructing expression) — what lets the purity pass
    distinguish mutating a caller's argument from mutating a defensive
    copy like ``rows = list(rows)``.
    """

    unordered: bool = False
    tainted: bool = False
    nondet: bool = False
    mutable: bool = False
    origin: Optional[str] = None
    alias_of: Optional[str] = None

    @property
    def is_clean(self) -> bool:
        return not (self.unordered or self.tainted or self.nondet)

    def but(self, **changes: object) -> "AbstractValue":
        """A copy with *changes* applied (frozen-dataclass update)."""
        fields = {
            "unordered": self.unordered,
            "tainted": self.tainted,
            "nondet": self.nondet,
            "mutable": self.mutable,
            "origin": self.origin,
            "alias_of": self.alias_of,
        }
        fields.update(changes)
        return AbstractValue(**fields)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        bits = [
            name
            for name in ("unordered", "tainted", "nondet", "mutable")
            if getattr(self, name)
        ]
        return f"<AV {'+'.join(bits) if bits else 'clean'}>"


#: Bottom-ish default: an ordinary deterministic, ordered value.
CLEAN = AbstractValue()
#: An unordered container (set/frozenset).
UNORDERED = AbstractValue(unordered=True)
#: A locally-built mutable container (list/dict display etc.).
MUTABLE = AbstractValue(mutable=True)

#: Abstract program state: variable name -> abstract value. Variables
#: absent from the state are CLEAN (the optimistic default — the rules
#: flag *known* taint, never unknowns).
State = Dict[str, AbstractValue]


def unordered_value(origin: Optional[str] = None) -> AbstractValue:
    return AbstractValue(unordered=True, origin=origin)


def tainted_value(origin: Optional[str] = None) -> AbstractValue:
    return AbstractValue(tainted=True, origin=origin)


def nondet_value(origin: Optional[str] = None) -> AbstractValue:
    return AbstractValue(nondet=True, origin=origin)


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: pointwise ``or``, first-set origin wins."""
    if a is b:
        return a
    return AbstractValue(
        unordered=a.unordered or b.unordered,
        tainted=a.tainted or b.tainted,
        nondet=a.nondet or b.nondet,
        mutable=a.mutable or b.mutable,
        origin=a.origin if a.origin is not None else b.origin,
        alias_of=a.alias_of if a.alias_of == b.alias_of else None,
    )


def join_states(a: State, b: State) -> State:
    """Pointwise join of two abstract states (missing vars are CLEAN)."""
    if not a:
        return dict(b)
    if not b:
        return dict(a)
    out: State = dict(a)
    for name, value in b.items():
        prev = out.get(name)
        out[name] = value if prev is None else join(prev, value)
    return out


def states_equal(a: State, b: State) -> bool:
    """Fixpoint test — CLEAN entries are equivalent to absent ones."""
    keys = set(a) | set(b)
    for k in keys:
        if a.get(k, CLEAN) != b.get(k, CLEAN):
            return False
    return True
