"""Dataflow determinism & kernel-purity auditor (the DF3xx series).

A fixpoint dataflow engine over stdlib ``ast`` — per-function CFGs
(:mod:`.cfg`), a product lattice of taint facts (:mod:`.lattice`), a
forward abstract interpreter with join/widen (:mod:`.interp`) and an
intraprocedural call-summary table for the engine's own helpers
(:mod:`.summaries`) — plus the three rule passes built on top of it
(:mod:`.rules_df`) and the seeded-defect corpus gate (:mod:`.corpus`).

Entry points: :func:`analyze_dataflow` (paths), :func:`analyze_sources`
(in-memory pairs), :func:`check_corpus` (selfcheck), :data:`DF_RULES`
(the catalog). See ``docs/analysis_rules.md`` for the rule contracts.
"""

from repro.analysis.dataflow.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow.corpus import DEFAULT_CORPUS, check_corpus, expected_rules
from repro.analysis.dataflow.interp import (
    CallSummary,
    Event,
    FunctionFacts,
    analyze_function,
)
from repro.analysis.dataflow.lattice import (
    CLEAN,
    AbstractValue,
    State,
    join,
    join_states,
)
from repro.analysis.dataflow.rules_df import (
    DF_RULES,
    DataflowAnalyzer,
    analyze_dataflow,
    analyze_sources,
)
from repro.analysis.dataflow.summaries import (
    FunctionInfo,
    SummaryTable,
    build_summaries,
)

__all__ = [
    "AbstractValue",
    "BasicBlock",
    "CFG",
    "CLEAN",
    "CallSummary",
    "DEFAULT_CORPUS",
    "DF_RULES",
    "DataflowAnalyzer",
    "Event",
    "FunctionFacts",
    "FunctionInfo",
    "State",
    "SummaryTable",
    "analyze_dataflow",
    "analyze_function",
    "analyze_sources",
    "build_cfg",
    "build_summaries",
    "check_corpus",
    "expected_rules",
    "join",
    "join_states",
]
