"""Call summaries for the engine's own functions.

The interpreter resolves unknown call targets through a
:class:`SummaryTable`: for every function and method found in the
analyzed modules it records how taint crosses the call boundary —
whether the return value is unordered / order-tainted / nondeterministic
with *clean* arguments, whether tainted arguments make the return
tainted (``propagates_taint``), and whether the body writes module
globals or calls nondeterministic sources.

Summaries are computed by a small outer fixpoint: each round re-runs the
abstract interpreter over every function body with the previous round's
table as the resolver, twice per function — once with clean parameters
(what does it return on its own?) and once with pessimistically tainted
parameters (does taint pass through?). The table stabilizes in two or
three rounds on this codebase; a fixed cap bounds the cost either way.

Resolution is by *basename*: call sites only see ``name(...)`` or
``obj.name(...)``, so summaries are keyed on the bare function/method
name. A name bound to several functions with conflicting summaries is
recorded as ambiguous and resolves to ``None`` (= unknown = optimistic),
which errs on the quiet side by design.

This is what makes the analysis honest about helpers: the interpreter
knows ``sorted`` canonicalizes, and the table teaches it that
``_canonical_relation`` does too — because its body ends in ``sorted``,
not because anyone hard-coded the name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.dataflow.interp import (
    CallSummary,
    FunctionFacts,
    analyze_function,
)
from repro.analysis.dataflow.lattice import AbstractValue, join

__all__ = ["FunctionInfo", "SummaryTable", "build_summaries", "collect_functions"]

#: Rounds of the outer fixpoint. The call graph between engine helpers
#: is shallow; three rounds covers helper-of-helper-of-helper.
_MAX_ROUNDS = 3


@dataclass(frozen=True)
class FunctionInfo:
    """One function discovered in an analyzed module."""

    name: str
    qualname: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef


class SummaryTable:
    """Basename -> :class:`CallSummary` with ambiguity tracking."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Optional[CallSummary]] = {}

    def resolve(self, name: str) -> Optional[CallSummary]:
        """Resolver handed to the interpreter (dotted names use the
        final component; ambiguous and unknown names give ``None``)."""
        base = name.rsplit(".", 1)[-1]
        return self._by_name.get(base)

    def record(self, name: str, summary: CallSummary) -> None:
        if name in self._by_name:
            if self._by_name[name] != summary:
                self._by_name[name] = None  # conflicting bindings: unknown
        else:
            self._by_name[name] = summary

    def snapshot(self) -> Dict[str, Optional[CallSummary]]:
        return dict(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)


def collect_functions(tree: ast.Module, path: str) -> List[FunctionInfo]:
    """Top-level functions and class methods (one nesting level of
    classes; nested ``def``s belong to their enclosing function's
    analysis, not the call-summary namespace)."""
    out: List[FunctionInfo] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(FunctionInfo(node.name, node.name, path, node))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append(
                        FunctionInfo(
                            item.name, f"{node.name}.{item.name}", path, item
                        )
                    )
    return out


def _returnish(facts: FunctionFacts) -> AbstractValue:
    """The value a caller observes: joined returns, plus joined yields
    for generators (iterating the generator sees the yielded values)."""
    value = facts.return_value
    for ev in facts.events:
        if ev.kind == "emit-yield":
            value = join(value, ev.value)
    return value


def _summarize(info: FunctionInfo, table: SummaryTable) -> CallSummary:
    clean = analyze_function(
        info.node, info.path, info.qualname, table.resolve
    )
    pess = analyze_function(
        info.node, info.path, info.qualname, table.resolve,
        pessimistic_params=True,
    )
    clean_ret = _returnish(clean)
    pess_ret = _returnish(pess)
    return CallSummary(
        returns_unordered=clean_ret.unordered,
        returns_tainted=clean_ret.tainted,
        returns_nondet=clean_ret.nondet,
        propagates_taint=pess_ret.tainted or pess_ret.unordered,
        writes_globals=any(ev.kind == "global-write" for ev in clean.events),
        nondet_inside=any(ev.kind == "nondet-call" for ev in clean.events),
    )


def build_summaries(
    modules: Iterable[Tuple[str, ast.Module]],
) -> Tuple[SummaryTable, List[FunctionInfo]]:
    """Fixpoint the summary table over *(path, parsed module)* pairs.

    Returns the stabilized table plus every discovered function, so the
    rule passes can reuse the same inventory without re-walking.
    """
    infos: List[FunctionInfo] = []
    for path, tree in modules:
        infos.extend(collect_functions(tree, path))

    table = SummaryTable()
    for _ in range(_MAX_ROUNDS):
        before = table.snapshot()
        fresh = SummaryTable()
        for info in infos:
            fresh.record(info.name, _summarize(info, table))
        table = fresh
        if table.snapshot() == before:
            break
    return table, infos
