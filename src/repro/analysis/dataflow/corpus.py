"""Seeded-defect corpus gate (DF399).

The fixture corpus (``tests/analysis/dataflow_fixtures/``) is the
auditor's own regression harness: each fixture file declares which DF3xx
defects were deliberately seeded into it with marker comments

.. code-block:: python

    # seeded-defect: DF301
    # seeded-defect: DF305

or declares itself defect-free with ``# seeded-defect: none``.

:func:`check_corpus` runs the dataflow audit over the corpus and demands
an exact match per file: every seeded defect must be detected *by the
intended rule*, clean fixtures must stay clean, and no rule may fire
where it was not seeded (precision — a rule that flags clean code is as
broken as one that misses defects). It also demands breadth: every rule
in the DF3xx catalog (bar DF399 itself) must be exercised by at least
one fixture, so a rule cannot silently become vacuous — dead rules rot
into false confidence.

Violations are reported as ``DF399`` diagnostics; CI runs this through
``repro.analysis.selfcheck`` so a regression in the auditor fails the
build even when the engine itself is clean.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.dataflow.rules_df import DF_RULES, analyze_sources

__all__ = ["check_corpus", "expected_rules", "DEFAULT_CORPUS"]

_MARKER_RE = re.compile(r"#\s*seeded-defect:\s*(DF\d{3}|none)")

#: Repo-relative home of the fixture corpus.
DEFAULT_CORPUS = Path("tests") / "analysis" / "dataflow_fixtures"

#: Rules the breadth check does not require a fixture for.
_EXEMPT_FROM_BREADTH = frozenset({"DF399"})


def expected_rules(source: str) -> Optional[Set[str]]:
    """Rules seeded into *source* per its markers.

    Empty set = declared clean (``none``); ``None`` = no markers at all
    (an unlabelled file, which the corpus check rejects).
    """
    found: Set[str] = set()
    saw_marker = False
    for m in _MARKER_RE.finditer(source):
        saw_marker = True
        if m.group(1) != "none":
            found.add(m.group(1))
    return found if saw_marker else None


def _df399(
    report: AnalysisReport, message: str, location: str, hint: str
) -> None:
    report.add(
        "DF399", DF_RULES["DF399"][0], message, location=location, hint=hint
    )


def check_corpus(
    corpus_dir: Union[str, Path, None] = None,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Audit the fixture corpus and report DF399 mismatches (see
    module docstring for the contract)."""
    report = report if report is not None else AnalysisReport()
    corpus = Path(corpus_dir) if corpus_dir is not None else DEFAULT_CORPUS
    files = sorted(corpus.glob("*.py")) if corpus.is_dir() else []
    if not files:
        _df399(
            report,
            "seeded-defect corpus is missing or empty",
            str(corpus),
            "the dataflow selfcheck needs the fixture corpus at "
            f"{DEFAULT_CORPUS}; run from the repository root",
        )
        return report

    sources: Sequence[Tuple[str, str]] = [
        (str(f), f.read_text(encoding="utf-8")) for f in files
    ]
    audit = analyze_sources(sources)

    found_by_file: Dict[str, Set[str]] = {path: set() for path, _ in sources}
    for diag in audit.diagnostics:
        path = diag.location.rsplit(":", 1)[0]
        if path in found_by_file and diag.rule.startswith("DF"):
            found_by_file[path].add(diag.rule)

    exercised: Set[str] = set()
    for path, source in sources:
        expected = expected_rules(source)
        name = Path(path).name
        if expected is None:
            _df399(
                report,
                f"fixture {name} has no seeded-defect markers",
                f"{path}:1",
                "declare '# seeded-defect: DFxxx' per seeded defect, "
                "or '# seeded-defect: none' for a clean fixture",
            )
            continue
        exercised |= expected
        found = found_by_file.get(path, set())
        for rule in sorted(expected - found):
            _df399(
                report,
                f"seeded defect {rule} in {name} was NOT detected",
                f"{path}:1",
                f"the {rule} pass regressed (or the fixture no longer "
                "contains the defect it claims)",
            )
        for rule in sorted(found - expected):
            _df399(
                report,
                f"rule {rule} fired on {name} where no such defect is seeded",
                f"{path}:1",
                f"{rule} lost precision (false positive on corpus code), "
                "or the fixture marker list is stale",
            )

    for rule in sorted(set(DF_RULES) - _EXEMPT_FROM_BREADTH - exercised):
        _df399(
            report,
            f"no fixture exercises rule {rule} — the rule is unverified "
            "and may be vacuous",
            str(corpus),
            f"add a fixture seeding a {rule} defect to the corpus",
        )
    return report
