"""Forward abstract interpreter over the per-function CFG.

Runs a worklist fixpoint: each basic block's entry state is the join of
its predecessors' exit states, the block's statements are interpreted by
transfer functions over :class:`~repro.analysis.dataflow.lattice.State`,
and blocks requeue until nothing changes (the lattice is finite and all
transfer functions monotone, so this terminates; join doubles as the
widening at loop headers).

The interpreter does not report diagnostics itself. It *collects
events* — emissions (return/yield/result-constructor calls), parameter
mutations, global writes, float accumulations under unordered loops —
each carrying the abstract value that reached the site; the DF3xx rule
passes (:mod:`repro.analysis.dataflow.rules_df`) decide which events are
violations for which functions.

Sources of taint recognized without summaries: ``set``/``frozenset``
construction and displays, set-typed parameter annotations, comprehension
or ``for`` iteration over unordered values, directory listings
(``os.listdir`` & friends), wall clocks, unseeded module-level
``random``, ``id()``/``hash()``/``uuid``/``os.urandom``. Everything else
resolves through the caller-provided summary table (the engine's own
functions) and defaults to the optimistic CLEAN — the auditor flags
*known* taint, never unknowns.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow.cfg import CFG, _BindMarker, _TestMarker, build_cfg
from repro.analysis.dataflow.lattice import (
    CLEAN,
    AbstractValue,
    State,
    join,
    join_states,
    nondet_value,
    states_equal,
    tainted_value,
    unordered_value,
)

__all__ = ["Event", "FunctionFacts", "analyze_function", "SummaryResolver"]

#: Identifier fragments marking float quantities (mirrors the RL203 set).
_FLOATY_NAMES = re.compile(
    r"(weight|norm|threshold|overlap|alpha|beta|fraction|similarity"
    r"|score|cost|seconds|epsilon|total|sum_|_sum|acc)",
    re.IGNORECASE,
)

#: Keyword-argument names that carry telemetry, not result data — the
#: one sanctioned home for wall-clock values (timings ride beside the
#: result; they never decide it).
_TELEMETRY_KWARG = re.compile(
    r"(second|elapsed|duration|wall|time|metric|stat|cost)", re.IGNORECASE
)

#: Nondeterministic call targets, fully qualified by module alias.
_NONDET_QUALIFIED = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow",
        "os.urandom", "os.getpid",
        "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.randbelow",
        "secrets.choice",
    }
)
#: Nondeterministic bare builtins. ``hash`` is per-process randomized
#: for str/bytes (PYTHONHASHSEED), ``id`` is an address.
_NONDET_BUILTINS = frozenset({"id", "hash"})
#: ``random.<attr>`` calls that are NOT the nondeterministic global RNG.
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})

#: Calls returning filesystem-order (arbitrary-order) listings.
_LISTING_QUALIFIED = frozenset(
    {"os.listdir", "os.walk", "os.scandir", "glob.glob", "glob.iglob"}
)
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Set-algebra methods whose result is again an unordered set.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
        "appendleft", "write", "writelines",
    }
)
#: The subset whose mutation *inserts in iteration order* — applied
#: under an unordered loop they make the receiver order-tainted.
_ORDER_INSERTERS = frozenset(
    {"append", "extend", "insert", "appendleft", "setdefault", "update"}
)

#: Order-insensitive reducers: scalar out, arrival order irrelevant
#: (float ``sum`` is re-checked separately for DF306).
_REDUCERS = frozenset({"sum", "len", "min", "max", "any", "all"})
#: Exactly-rounded float sums are order-insensitive by construction.
_EXACT_REDUCERS = frozenset({"fsum", "math.fsum"})

#: Order-preserving converters: unordered input becomes an *ordered*
#: sequence whose order is hash-order — the birth of order taint.
_CONVERTERS = frozenset(
    {"list", "tuple", "reversed", "enumerate", "zip", "map", "filter",
     "iter", "chain", "itertools.chain"}
)

#: Constructors of result-bearing values (emission sinks for DF301).
_EMIT_CONSTRUCTORS = frozenset(
    {"Batch", "BatchStream", "ColumnarRelation", "Relation"}
)

#: Annotation names marking a parameter as an unordered container.
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


@dataclass(frozen=True)
class Event:
    """One fact the rule passes may turn into a diagnostic."""

    kind: str  # emit-return | emit-yield | emit-constructor |
    #            param-mutation | global-write | nonlocal-write |
    #            float-accum | nondet-call
    lineno: int
    span: Tuple[int, int]
    value: AbstractValue = CLEAN
    name: str = ""
    detail: str = ""
    in_unordered_loop: bool = False


@dataclass
class FunctionFacts:  # repro: ignore[RL204] -- analysis accumulator
    """Everything the interpreter learned about one function."""

    name: str
    qualname: str
    node: ast.AST
    params: Tuple[str, ...] = ()
    events: List[Event] = field(default_factory=list)
    #: join of every value reaching a ``return`` (CLEAN if none).
    return_value: AbstractValue = CLEAN
    globals_declared: Tuple[str, ...] = ()
    is_generator: bool = False


#: Resolver contract: a callable mapping a (possibly dotted) call-target
#: name to that function's facts under pessimistic params, or ``None``.
SummaryResolver = Callable[[str], Optional["CallSummary"]]


@dataclass(frozen=True)
class CallSummary:
    """What a call site needs to know about a callee (see summaries)."""

    returns_unordered: bool = False
    returns_tainted: bool = False
    returns_nondet: bool = False
    #: tainted/unordered arguments make the result tainted.
    propagates_taint: bool = True
    #: the callee writes module globals / calls nondet sources (for the
    #: purity pass to attribute at the call site).
    writes_globals: bool = False
    nondet_inside: bool = False


def _call_names(func: ast.expr) -> Tuple[Optional[str], Optional[str]]:
    """(qualified, attr) names for a call target, best effort."""
    if isinstance(func, ast.Name):
        return func.id, None
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            return f"{func.value.id}.{func.attr}", func.attr
        return None, func.attr
    return None, None


def _span(node: ast.AST) -> Tuple[int, int]:
    start = getattr(node, "lineno", 1)
    return (start, getattr(node, "end_lineno", None) or start)


def _is_setish_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations ("Set[int]") — cheap textual probe.
            if any(a in sub.value for a in _SET_ANNOTATIONS):
                return True
        if name in _SET_ANNOTATIONS:
            return True
    return False


def _floaty_expr(node: ast.AST) -> bool:
    """Does this expression look like a float quantity (names/literals)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.arg)):
            name = getattr(sub, "name", None) or getattr(sub, "arg", None)
        if name and name != name.upper() and _FLOATY_NAMES.search(name):
            return True
    return False


class _Interp:
    """One function's fixpoint run (see module docstring)."""

    def __init__(
        self,
        fn: ast.AST,
        path: str,
        qualname: str,
        resolve: SummaryResolver,
        pessimistic_params: bool = False,
    ) -> None:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        self.fn = fn
        self.path = path
        self.resolve = resolve
        self.cfg: CFG = build_cfg(fn)
        self.facts = FunctionFacts(
            name=fn.name, qualname=qualname, node=fn,
            params=tuple(a.arg for a in self._all_args(fn)),
        )
        self._event_keys: Set[Tuple] = set()
        #: id(For-node) -> its iterable was unordered/tainted this visit.
        self.loop_unordered: Dict[int, bool] = {}
        self.globals_declared: Set[str] = set()
        self.pessimistic = pessimistic_params
        self._in_unordered_loop = False  # set per block during transfer

    @staticmethod
    def _all_args(fn: ast.AST) -> List[ast.arg]:
        a = fn.args  # type: ignore[attr-defined]
        out = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
        if a.vararg:
            out.append(a.vararg)
        if a.kwarg:
            out.append(a.kwarg)
        return out

    def initial_state(self) -> State:
        state: State = {}
        for i, arg in enumerate(self._all_args(self.fn)):
            setish = _is_setish_annotation(arg.annotation)
            value = AbstractValue(
                unordered=setish or self.pessimistic,
                tainted=self.pessimistic,
                alias_of=arg.arg,
                origin=(
                    f"set-typed parameter {arg.arg!r}" if setish else None
                ),
            )
            if i == 0 and arg.arg in ("self", "cls"):
                value = value.but(unordered=False, tainted=False, origin=None)
            state[arg.arg] = value
        return state

    # -- events ------------------------------------------------------------

    def _event(self, kind: str, node: ast.AST, **kw: object) -> None:
        ev = Event(kind=kind, lineno=getattr(node, "lineno", 1),
                   span=_span(node), **kw)  # type: ignore[arg-type]
        # The fixpoint revisits blocks; dedupe on everything but the
        # abstract value, keeping the *last* (= post-fixpoint) value.
        key = (ev.kind, ev.lineno, ev.name, ev.detail)
        if key in self._event_keys:
            for i, old in enumerate(self.facts.events):
                if (old.kind, old.lineno, old.name, old.detail) == key:
                    self.facts.events[i] = ev
                    return
        self._event_keys.add(key)
        self.facts.events.append(ev)

    # -- driver ------------------------------------------------------------

    def run(self) -> FunctionFacts:
        n = len(self.cfg.blocks)
        preds = self.cfg.preds()
        entry_states: List[Optional[State]] = [None] * n
        exit_states: List[Optional[State]] = [None] * n
        entry_states[self.cfg.entry] = self.initial_state()
        order = self.cfg.rpo()
        position = {bid: i for i, bid in enumerate(order)}
        from heapq import heappop, heappush

        work: List[Tuple[int, int]] = []
        for bid in order:
            heappush(work, (position[bid], bid))
        queued = set(order)
        iterations = 0
        limit = 50 * max(n, 1)
        while work and iterations < limit:
            iterations += 1
            _, bid = heappop(work)
            queued.discard(bid)
            joined: State = {}
            have_pred = False
            for p in preds[bid]:
                ps = exit_states[p]
                if ps is not None:
                    joined = join_states(joined, ps)
                    have_pred = True
            if bid == self.cfg.entry:
                joined = join_states(self.initial_state(), joined)
                have_pred = True
            if not have_pred:
                continue
            entry_states[bid] = joined
            new_exit = self.transfer_block(bid, dict(joined))
            old_exit = exit_states[bid]
            if old_exit is None or not states_equal(old_exit, new_exit):
                exit_states[bid] = new_exit
                for s in self.cfg.blocks[bid].succs:
                    if s not in queued and s in position:
                        queued.add(s)
                        heappush(work, (position[s], s))
        self.facts.globals_declared = tuple(sorted(self.globals_declared))
        return self.facts

    # -- transfer ----------------------------------------------------------

    def transfer_block(self, bid: int, state: State) -> State:
        block = self.cfg.blocks[bid]
        self._in_unordered_loop = any(
            self.loop_unordered.get(lid, False) for lid in block.loop_ids
        )
        for stmt in block.statements:
            self.transfer_stmt(stmt, state)
        return state

    def transfer_stmt(self, stmt: ast.stmt, state: State) -> None:
        if isinstance(stmt, _TestMarker):
            self.eval(stmt.value, state)
        elif isinstance(stmt, _BindMarker):
            state[stmt.name] = CLEAN
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, state)
            for target in stmt.targets:
                self.assign(target, value, state, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, state)
            elif _is_setish_annotation(stmt.annotation):
                value = unordered_value("set-typed declaration")
            else:
                value = CLEAN
            if stmt.target is not None:
                self.assign(stmt.target, value, state, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.transfer_augassign(stmt, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.transfer_for_header(stmt, state)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, state)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, state) if stmt.value else CLEAN
            self.facts.return_value = join(self.facts.return_value, value)
            self._event(
                "emit-return", stmt, value=value,
                in_unordered_loop=self._in_unordered_loop,
            )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
        elif isinstance(stmt, ast.Global):
            self.globals_declared.update(stmt.names)
        elif isinstance(stmt, ast.Nonlocal):
            for name in stmt.names:
                self._event("nonlocal-write", stmt, name=name)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self.mutation_target(target, stmt, state, "del")
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value, state, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            state[stmt.name] = CLEAN
        elif isinstance(stmt, ast.ClassDef):
            state[stmt.name] = CLEAN
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.eval(sub, state)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass)):
            pass

    def transfer_for_header(self, stmt: ast.stmt, state: State) -> None:
        assert isinstance(stmt, (ast.For, ast.AsyncFor))
        iter_value = self.eval(stmt.iter, state)
        unordered = iter_value.unordered or iter_value.tainted
        self.loop_unordered[id(stmt)] = unordered
        origin = iter_value.origin or (
            f"iteration over unordered value at line {stmt.iter.lineno}"
        )
        # Element values are deterministic set members — only their
        # *arrival order* is tainted, which the loop context carries.
        element = AbstractValue(nondet=iter_value.nondet, origin=origin)
        self.assign(stmt.target, element, state, stmt)

    def transfer_augassign(self, stmt: ast.AugAssign, state: State) -> None:
        rhs = self.eval(stmt.value, state)
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            old = state.get(name, CLEAN)
            new = join(old, rhs.but(alias_of=None))
            if self._in_unordered_loop:
                if isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult)) and (
                    _floaty_expr(stmt.target) or _floaty_expr(stmt.value)
                ):
                    self._event(
                        "float-accum", stmt, name=name,
                        value=new,
                        detail=(
                            f"float accumulator {name!r} updated under "
                            "unordered iteration"
                        ),
                        in_unordered_loop=True,
                    )
                if old.mutable or isinstance(stmt.value, (ast.List, ast.Tuple)):
                    new = join(
                        new,
                        tainted_value(
                            "accumulated under unordered iteration "
                            f"at line {stmt.lineno}"
                        ),
                    )
            state[name] = new
        elif isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
            self.mutation_target(stmt.target, stmt, state, "augmented write")

    def assign(
        self, target: ast.expr, value: AbstractValue, state: State,
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._event(
                    "global-write", stmt, name=target.id,
                    detail=f"assignment to module global {target.id!r}",
                )
            state[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = value.but(alias_of=None)
            for t in target.elts:
                self.assign(t, element, state, stmt)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value.but(alias_of=None), state, stmt)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self.mutation_target(target, stmt, state, "item/attribute write",
                                 written=value)

    def mutation_target(
        self,
        target: ast.expr,
        stmt: ast.stmt,
        state: State,
        what: str,
        written: AbstractValue = CLEAN,
    ) -> None:
        """A write through a subscript/attribute: record who it mutates
        and how it taints the container."""
        base = target.value if isinstance(target, (ast.Subscript, ast.Attribute)) else None
        if not isinstance(base, ast.Name):
            return
        base_value = state.get(base.id, CLEAN)
        if base_value.alias_of is not None:
            self._event(
                "param-mutation", stmt, name=base_value.alias_of,
                detail=f"{what} through {base.id!r}",
            )
        if base.id in self.globals_declared:
            self._event("global-write", stmt, name=base.id, detail=what)
        updates = {}
        if self._in_unordered_loop and isinstance(target, ast.Subscript):
            updates["tainted"] = True
            updates["origin"] = (
                base_value.origin
                or f"keyed insertion under unordered iteration at line {stmt.lineno}"
            )
        if written.tainted or written.nondet:
            updates["tainted"] = base_value.tainted or written.tainted
            updates["nondet"] = base_value.nondet or written.nondet
            if base_value.origin is None:
                updates["origin"] = written.origin
        if updates:
            state[base.id] = base_value.but(**updates)

    # -- expressions -------------------------------------------------------

    def eval(self, node: Optional[ast.expr], state: State) -> AbstractValue:
        if node is None:
            return CLEAN
        method = getattr(self, f"eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, state)
        # Default: join of child expression values (covers Starred,
        # FormattedValue, JoinedStr, Await, Slice, ...).
        value = CLEAN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                value = join(value, self.eval(child, state))
        return value.but(alias_of=None)

    def eval_Constant(self, node: ast.Constant, state: State) -> AbstractValue:
        return CLEAN

    def eval_Name(self, node: ast.Name, state: State) -> AbstractValue:
        return state.get(node.id, CLEAN)

    def eval_Set(self, node: ast.Set, state: State) -> AbstractValue:
        value = self._join_all(node.elts, state)
        return AbstractValue(
            unordered=True, nondet=value.nondet, mutable=True,
            origin=f"set display at line {node.lineno}",
        )

    def eval_List(self, node: ast.List, state: State) -> AbstractValue:
        value = self._join_all(node.elts, state)
        return value.but(mutable=True, unordered=False, alias_of=None)

    def eval_Tuple(self, node: ast.Tuple, state: State) -> AbstractValue:
        value = self._join_all(node.elts, state)
        return value.but(unordered=False, alias_of=None)

    def eval_Dict(self, node: ast.Dict, state: State) -> AbstractValue:
        value = CLEAN
        for k in node.keys:
            if k is not None:
                value = join(value, self.eval(k, state))
        for v in node.values:
            value = join(value, self.eval(v, state))
        return value.but(mutable=True, unordered=False, alias_of=None)

    def _join_all(
        self, nodes: Sequence[ast.expr], state: State
    ) -> AbstractValue:
        value = CLEAN
        for n in nodes:
            value = join(value, self.eval(n, state))
        return value

    def _eval_comprehension(
        self, node: ast.expr, state: State, result: str
    ) -> AbstractValue:
        local = dict(state)
        from_unordered = False
        origin: Optional[str] = None
        nondet = False
        for gen in node.generators:  # type: ignore[attr-defined]
            iter_value = self.eval(gen.iter, local)
            if iter_value.unordered or iter_value.tainted:
                from_unordered = True
                origin = origin or iter_value.origin or (
                    f"comprehension over unordered value at line {node.lineno}"
                )
            nondet = nondet or iter_value.nondet
            self.assign(gen.target, AbstractValue(nondet=iter_value.nondet),
                        local, node)  # type: ignore[arg-type]
            for cond in gen.ifs:
                self.eval(cond, local)
        if isinstance(node, ast.DictComp):
            element = join(self.eval(node.key, local), self.eval(node.value, local))
        else:
            element = self.eval(node.elt, local)  # type: ignore[attr-defined]
        nondet = nondet or element.nondet
        if result == "set":
            return AbstractValue(
                unordered=True, nondet=nondet, mutable=True,
                origin=f"set comprehension at line {node.lineno}",
            )
        tainted = from_unordered or element.tainted
        return AbstractValue(
            tainted=tainted, nondet=nondet, mutable=result != "generator",
            origin=origin if from_unordered else element.origin,
        )

    def eval_ListComp(self, node: ast.ListComp, state: State) -> AbstractValue:
        return self._eval_comprehension(node, state, "list")

    def eval_SetComp(self, node: ast.SetComp, state: State) -> AbstractValue:
        return self._eval_comprehension(node, state, "set")

    def eval_DictComp(self, node: ast.DictComp, state: State) -> AbstractValue:
        return self._eval_comprehension(node, state, "dict")

    def eval_GeneratorExp(
        self, node: ast.GeneratorExp, state: State
    ) -> AbstractValue:
        return self._eval_comprehension(node, state, "generator")

    def eval_BinOp(self, node: ast.BinOp, state: State) -> AbstractValue:
        left = self.eval(node.left, state)
        right = self.eval(node.right, state)
        return join(left, right).but(alias_of=None)

    def eval_BoolOp(self, node: ast.BoolOp, state: State) -> AbstractValue:
        return self._join_all(node.values, state).but(alias_of=None)

    def eval_UnaryOp(self, node: ast.UnaryOp, state: State) -> AbstractValue:
        return self.eval(node.operand, state).but(alias_of=None)

    def eval_Compare(self, node: ast.Compare, state: State) -> AbstractValue:
        # Membership/ordering tests are order-insensitive reductions:
        # order taint does not survive them, nondeterminism does.
        value = join(
            self.eval(node.left, state),
            self._join_all(node.comparators, state),
        )
        return AbstractValue(nondet=value.nondet, origin=value.origin)

    def eval_IfExp(self, node: ast.IfExp, state: State) -> AbstractValue:
        self.eval(node.test, state)
        return join(
            self.eval(node.body, state), self.eval(node.orelse, state)
        ).but(alias_of=None)

    def eval_Attribute(self, node: ast.Attribute, state: State) -> AbstractValue:
        base = self.eval(node.value, state)
        # A field read off a tainted object is a scalar whose *value*
        # does not depend on arrival order; nondet stickiness remains.
        return AbstractValue(nondet=base.nondet, origin=base.origin)

    def eval_Subscript(self, node: ast.Subscript, state: State) -> AbstractValue:
        base = self.eval(node.value, state)
        self.eval(node.slice, state)
        # Positional access into an order-tainted sequence is itself
        # order-dependent (xs[0] of a hash-ordered list).
        return AbstractValue(
            tainted=base.tainted, nondet=base.nondet, origin=base.origin
        )

    def eval_NamedExpr(self, node: ast.NamedExpr, state: State) -> AbstractValue:
        value = self.eval(node.value, state)
        self.assign(node.target, value, state, node)  # type: ignore[arg-type]
        return value

    def eval_Lambda(self, node: ast.Lambda, state: State) -> AbstractValue:
        return CLEAN

    def eval_Yield(self, node: ast.Yield, state: State) -> AbstractValue:
        self.facts.is_generator = True
        value = self.eval(node.value, state) if node.value else CLEAN
        self._event(
            "emit-yield", node, value=value,
            in_unordered_loop=self._in_unordered_loop,
        )
        return CLEAN

    def eval_YieldFrom(self, node: ast.YieldFrom, state: State) -> AbstractValue:
        self.facts.is_generator = True
        value = self.eval(node.value, state)
        self._event(
            "emit-yield", node, value=value,
            in_unordered_loop=self._in_unordered_loop,
        )
        return CLEAN

    def eval_Await(self, node: ast.Await, state: State) -> AbstractValue:
        return self.eval(node.value, state)

    # -- calls -------------------------------------------------------------

    def eval_Call(self, node: ast.Call, state: State) -> AbstractValue:
        qualified, attr = _call_names(node.func)
        args = [self.eval(a, state) for a in node.args]
        kw_values: List[Tuple[Optional[str], AbstractValue]] = [
            (kw.arg, self.eval(kw.value, state)) for kw in node.keywords
        ]
        data_args = list(args) + [
            v for name, v in kw_values
            if not (name and _TELEMETRY_KWARG.search(name))
        ]
        arg_join = CLEAN
        for v in data_args:
            arg_join = join(arg_join, v)

        self._check_receiver_mutation(node, state, args)

        name = qualified or attr or ""

        # Canonicalization point: kills order taint, keeps content nondet.
        if name == "sorted":
            return AbstractValue(nondet=arg_join.nondet, mutable=True)
        if name in _EXACT_REDUCERS:
            return AbstractValue(nondet=arg_join.nondet)

        # Nondeterministic sources.
        if (
            name in _NONDET_QUALIFIED
            or name in _NONDET_BUILTINS
            or (
                qualified is not None
                and qualified.startswith("random.")
                and qualified.split(".", 1)[1] not in _RANDOM_OK
            )
        ):
            origin = f"nondeterministic call {name}() at line {node.lineno}"
            self._event("nondet-call", node, name=name, detail=origin)
            return nondet_value(origin)

        # Filesystem listings arrive in arbitrary order.
        if name in _LISTING_QUALIFIED or (attr in _LISTING_METHODS):
            return tainted_value(
                f"unsorted filesystem listing {name or attr}() "
                f"at line {node.lineno}"
            ).but(mutable=True)

        if name in ("set", "frozenset"):
            return AbstractValue(
                unordered=True, nondet=arg_join.nondet,
                mutable=name == "set",
                origin=f"{name}() at line {node.lineno}",
            )
        if attr in _SET_METHODS and isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value, state)
            if receiver.unordered:
                return receiver.but(alias_of=None, mutable=True)

        # Keyed access: ``d.get(key, default)`` yields a *stored* value —
        # the key's bits select the entry, they do not flow into it
        # (id()-keyed memo caches are deterministic by construction).
        if attr == "get" and isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value, state)
            default_bits = CLEAN
            for v in args[1:]:
                default_bits = join(default_bits, v)
            return AbstractValue(
                tainted=receiver.tainted or default_bits.tainted,
                nondet=receiver.nondet or default_bits.nondet,
                origin=receiver.origin or default_bits.origin,
            )

        if name in _REDUCERS:
            if name == "sum":
                self._check_float_sum(node, state)
            return AbstractValue(nondet=arg_join.nondet)

        if name in _CONVERTERS or attr in ("keys", "values", "items"):
            receiver_bits = CLEAN
            if attr in ("keys", "values", "items") and isinstance(
                node.func, ast.Attribute
            ):
                receiver_bits = self.eval(node.func.value, state)
            source = join(arg_join, receiver_bits)
            tainted = source.tainted or source.unordered
            return AbstractValue(
                tainted=tainted,
                nondet=source.nondet,
                mutable=name == "list",
                origin=source.origin
                or (
                    f"ordered view of unordered value at line {node.lineno}"
                    if tainted
                    else None
                ),
            )

        if name in _EMIT_CONSTRUCTORS and (
            arg_join.tainted or arg_join.nondet
        ):
            self._event(
                "emit-constructor", node, name=name, value=arg_join,
                detail=f"{name}(...) built from tainted columns",
                in_unordered_loop=self._in_unordered_loop,
            )

        # The engine's own functions, via the summary table.
        summary = None
        if self.resolve is not None:
            for key in filter(None, (qualified, attr)):
                summary = self.resolve(key)
                if summary is not None:
                    break
        if summary is not None:
            if summary.nondet_inside:
                self._event(
                    "nondet-call", node, name=name,
                    detail=f"call into nondeterministic {name}()",
                )
            if summary.writes_globals:
                self._event(
                    "global-write", node, name=name,
                    detail=f"call into global-writing {name}()",
                )
            tainted = summary.returns_tainted or (
                summary.propagates_taint
                and (arg_join.tainted or arg_join.unordered)
            )
            return AbstractValue(
                unordered=summary.returns_unordered,
                tainted=tainted,
                nondet=summary.returns_nondet or arg_join.nondet,
                origin=arg_join.origin
                or (f"result of {name}() at line {node.lineno}" if tainted else None),
            )

        # Unknown callable: optimistic for ordering, sticky for taint
        # actually present in the arguments.
        return AbstractValue(
            tainted=arg_join.tainted,
            nondet=arg_join.nondet,
            origin=arg_join.origin,
        )

    def _check_receiver_mutation(
        self, node: ast.Call, state: State, args: List[AbstractValue]
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATORS:
            return
        base = func.value
        if not isinstance(base, ast.Name):
            return
        base_value = state.get(base.id, CLEAN)
        if base_value.alias_of is not None:
            self._event(
                "param-mutation", node, name=base_value.alias_of,
                detail=f".{func.attr}() on parameter alias {base.id!r}",
            )
        if base.id in self.globals_declared:
            self._event(
                "global-write", node, name=base.id,
                detail=f".{func.attr}() on module global",
            )
        arg_bits = CLEAN
        for v in args:
            arg_bits = join(arg_bits, v)
        updates: Dict[str, object] = {}
        if (
            self._in_unordered_loop
            and func.attr in _ORDER_INSERTERS
            and not base_value.unordered
        ):
            updates["tainted"] = True
            updates["origin"] = base_value.origin or (
                f".{func.attr}() under unordered iteration at line {node.lineno}"
            )
        if arg_bits.tainted and func.attr in _ORDER_INSERTERS:
            updates["tainted"] = True
            updates["origin"] = base_value.origin or arg_bits.origin
        if arg_bits.nondet and func.attr in _MUTATORS:
            updates["nondet"] = True
            if base_value.origin is None:
                updates.setdefault("origin", arg_bits.origin)
        if updates:
            state[base.id] = base_value.but(**updates)

    def _check_float_sum(self, node: ast.Call, state: State) -> None:
        """``sum(...)`` over an unordered/tainted iterable of floats is
        an order-sensitive reduction (DF306 raw material)."""
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            iter_unordered = False
            for gen in arg.generators:
                iv = self.eval(gen.iter, state)
                if iv.unordered or iv.tainted:
                    iter_unordered = True
            floaty = _floaty_expr(arg.elt) or _floaty_expr(node)
            if iter_unordered and floaty:
                self._event(
                    "float-accum", node, name="sum",
                    detail="sum() of float terms over unordered iteration",
                    in_unordered_loop=True,
                )
        else:
            value = self.eval(arg, state)
            if (value.unordered or value.tainted) and _floaty_expr(arg):
                self._event(
                    "float-accum", node, name="sum",
                    detail="sum() of a float container with unordered "
                    "iteration order",
                    in_unordered_loop=True,
                )


def analyze_function(
    fn: ast.AST,
    path: str,
    qualname: str,
    resolve: SummaryResolver,
    pessimistic_params: bool = False,
) -> FunctionFacts:
    """Run the fixpoint for one function and return its facts."""
    return _Interp(
        fn, path, qualname, resolve, pessimistic_params=pessimistic_params
    ).run()
