"""Static verification of SQL-compiler output before execution.

Mirrors the name-resolution and aggregate rules that
:mod:`repro.relational.sql.compiler` applies *lazily at bind time*, but
runs them eagerly over the parsed :class:`SelectStatement` against a
concrete catalog — so a bad query is rejected with structured
diagnostics instead of failing mid-execution (or worse, silently
producing an empty join).

Shares the ``PV1xx`` rule namespace with the plan verifier, plus:

``PV107`` unknown or mis-used function (not an aggregate, scalar, or
supported predicate form; wrong arity).

SSJOIN statements take a different path: they are lowered with
:func:`repro.relational.sql.compiler.compile_ssjoin_plan` and the
resulting operator tree is handed to the plan verifier, so one
``repro analyze`` invocation covers both the SQL surface (structural
rules, reported as ``SSJ110``) and the compiled plan (``PV1xx`` plus the
plan-level ``SSJ11x`` rules).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.analysis.diagnostics import SEVERITY_ERROR, AnalysisReport
from repro.errors import AnalysisError, PlanError
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.sql.ast import (
    Binary,
    Call,
    ColumnName,
    SelectStatement,
    SqlExpr,
    Star,
    Unary,
)
from repro.relational.sql.parser import parse

__all__ = ["verify_select", "verify_sql", "check_sql"]

_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")
_SCALARS = ("ABS", "LENGTH", "LOWER", "UPPER")


def _walk_expr(node: SqlExpr) -> Iterator[SqlExpr]:
    yield node
    if isinstance(node, Binary):
        yield from _walk_expr(node.left)
        yield from _walk_expr(node.right)
    elif isinstance(node, Unary):
        yield from _walk_expr(node.operand)
    elif isinstance(node, Call):
        for arg in node.args:
            yield from _walk_expr(arg)


def _column_refs(node: SqlExpr, *, inside_aggregates: bool = True) -> List[ColumnName]:
    """Column references in *node*; optionally skipping aggregate bodies."""
    out: List[ColumnName] = []

    def visit(n: SqlExpr) -> None:
        if isinstance(n, ColumnName):
            out.append(n)
        elif isinstance(n, Binary):
            visit(n.left)
            visit(n.right)
        elif isinstance(n, Unary):
            visit(n.operand)
        elif isinstance(n, Call):
            if n.name in _AGGREGATES and not inside_aggregates:
                return
            for arg in n.args:
                visit(arg)

    visit(node)
    return out


def _aggregate_calls(node: SqlExpr) -> List[Call]:
    return [
        n
        for n in _walk_expr(node)
        if isinstance(n, Call) and n.name in _AGGREGATES
    ]


def _resolve_name(schema: Schema, column: ColumnName) -> Optional[str]:
    """Non-raising twin of the compiler's ``_resolve``; None = unresolved."""
    if column.qualifier:
        qualified = f"{column.qualifier}.{column.name}"
        if qualified in schema:
            return qualified
        if column.name in schema:
            return column.name
        return None
    if column.name in schema:
        return column.name
    suffix = "." + column.name
    matches = [n for n in schema.names if n.endswith(suffix)]
    if len(matches) == 1:
        return matches[0]
    return None


def _check_refs(
    report: AnalysisReport,
    refs: Sequence[ColumnName],
    schema: Schema,
    location: str,
) -> None:
    for ref in refs:
        if _resolve_name(schema, ref) is None:
            suffix = "." + ref.name
            ambiguous = [n for n in schema.names if n.endswith(suffix)]
            if len(ambiguous) > 1:
                report.add(
                    "PV101",
                    SEVERITY_ERROR,
                    f"ambiguous column {ref.display()!r}: matches "
                    f"{', '.join(sorted(ambiguous))}",
                    location,
                    hint="qualify the column with its table alias",
                )
            else:
                report.add(
                    "PV101",
                    SEVERITY_ERROR,
                    f"unknown column {ref.display()!r}; available: "
                    f"{', '.join(schema.names)}",
                    location,
                )


def _check_functions(
    report: AnalysisReport, expr: SqlExpr, location: str, allow_aggregates: bool
) -> None:
    for node in _walk_expr(expr):
        if not isinstance(node, Call) or node.name == "__IN__":
            continue
        if node.name in _AGGREGATES:
            if not allow_aggregates:
                report.add(
                    "PV103",
                    SEVERITY_ERROR,
                    f"aggregate {node.name} is only allowed in the select "
                    "list or HAVING",
                    location,
                )
        elif node.name in _SCALARS:
            if len(node.args) != 1:
                report.add(
                    "PV107",
                    SEVERITY_ERROR,
                    f"{node.name} takes exactly one argument, got {len(node.args)}",
                    location,
                )
        else:
            report.add(
                "PV107",
                SEVERITY_ERROR,
                f"unknown function {node.name}",
                location,
                hint=f"supported: {', '.join(_AGGREGATES + _SCALARS)}",
            )


def _item_name(item: object, index: int) -> str:
    # Mirrors the compiler's output-naming rule.
    alias = getattr(item, "alias", None)
    expr = getattr(item, "expr", None)
    if alias:
        return str(alias)
    if isinstance(expr, ColumnName):
        return expr.name
    if isinstance(expr, Call):
        return expr.name.lower()
    return f"expr_{index}"


def _verify_ssjoin_select(
    statement: SelectStatement, catalog: Catalog
) -> AnalysisReport:
    """Verify an SSJOIN statement by lowering it and checking the plan.

    The compiler's lowering is purely structural (no catalog access), so
    running it here has no side effects; structural violations it raises
    (mixed JOIN/SSJOIN, aggregates, non-linear bounds ...) become
    ``SSJ110`` diagnostics and everything else — unknown tables, WHERE /
    select-list references against the SSJoin result schema, missing
    ``a``/``b`` input columns — falls out of :func:`verify_plan`.
    """
    from repro.analysis.plan_verifier import verify_plan
    from repro.relational.sql.compiler import compile_ssjoin_plan

    report = AnalysisReport()
    if statement.where is not None:
        _check_functions(report, statement.where, "where", allow_aggregates=False)
    out_names: List[str] = []
    for i, item in enumerate(statement.items):
        if isinstance(item.expr, Star):
            continue
        _check_functions(report, item.expr, f"select[{i}]", allow_aggregates=True)
        name = _item_name(item, i)
        if name in out_names:
            report.add(
                "PV102",
                SEVERITY_ERROR,
                f"duplicate output column {name!r} in select list",
                f"select[{i}]",
                hint="alias one of the items with AS",
            )
        out_names.append(name)
    try:
        plan = compile_ssjoin_plan(statement, catalog)
    except PlanError as exc:
        report.add(
            "SSJ110",
            SEVERITY_ERROR,
            str(exc),
            "ssjoin",
            hint="see the SSJOIN grammar in docs/tutorial.md",
        )
        return report
    return report.extend(verify_plan(plan, catalog))


def verify_select(
    statement: SelectStatement, catalog: Catalog
) -> AnalysisReport:
    """Statically verify one parsed SELECT against *catalog*."""
    if statement.ssjoins:
        return _verify_ssjoin_select(statement, catalog)
    report = AnalysisReport()

    # -- FROM / JOIN: build the input schema exactly as the compiler does.
    prefix_tables = bool(statement.joins)
    if statement.table.table not in catalog:
        report.add(
            "PV101",
            SEVERITY_ERROR,
            f"unknown table {statement.table.table!r}",
            "from",
        )
        return report
    schema = catalog.get(statement.table.table).schema
    if prefix_tables:
        schema = schema.prefixed(statement.table.label)
    for j, join in enumerate(statement.joins):
        location = f"join[{j}]"
        if join.table.table not in catalog:
            report.add(
                "PV101",
                SEVERITY_ERROR,
                f"unknown table {join.table.table!r}",
                location,
            )
            return report
        right = catalog.get(join.table.table).schema.prefixed(join.table.label)
        combined = schema.concat(right)
        for c1, c2 in join.on:
            _check_refs(report, [c1, c2], combined, location)
        schema = combined

    # -- WHERE: no aggregates, every column resolvable.
    if statement.where is not None:
        _check_refs(report, _column_refs(statement.where), schema, "where")
        _check_functions(report, statement.where, "where", allow_aggregates=False)

    has_aggregates = any(
        _aggregate_calls(item.expr)
        for item in statement.items
        if not isinstance(item.expr, Star)
    )
    grouped = bool(statement.group_by) or has_aggregates

    # -- GROUP BY keys.
    key_names: List[str] = []
    for c in statement.group_by:
        resolved = _resolve_name(schema, c)
        if resolved is None:
            _check_refs(report, [c], schema, "group by")
        else:
            key_names.append(resolved)

    # -- Select list.
    out_names: List[str] = []
    for i, item in enumerate(statement.items):
        location = f"select[{i}]"
        if isinstance(item.expr, Star):
            if grouped:
                report.add(
                    "PV103",
                    SEVERITY_ERROR,
                    "'*' is not allowed in an aggregate select list",
                    location,
                )
            elif len(statement.items) > 1:
                report.add(
                    "PV102",
                    SEVERITY_ERROR,
                    "'*' cannot be mixed with other select items",
                    location,
                )
            else:
                out_names.extend(schema.names)
            continue
        _check_refs(report, _column_refs(item.expr), schema, location)
        _check_functions(report, item.expr, location, allow_aggregates=True)
        if grouped and not _aggregate_calls(item.expr):
            if isinstance(item.expr, ColumnName):
                resolved = _resolve_name(schema, item.expr)
                if resolved is not None and resolved not in key_names:
                    report.add(
                        "PV103",
                        SEVERITY_ERROR,
                        f"column {item.expr.display()!r} must appear in "
                        "GROUP BY or inside an aggregate",
                        location,
                        hint="add it to GROUP BY or wrap it in an aggregate",
                    )
            else:
                report.add(
                    "PV103",
                    SEVERITY_ERROR,
                    "select items in an aggregate query must be group "
                    "columns or aggregate calls",
                    location,
                )
        name = _item_name(item, i)
        if name in out_names:
            report.add(
                "PV102",
                SEVERITY_ERROR,
                f"duplicate output column {name!r} in select list",
                location,
                hint="alias one of the items with AS",
            )
        out_names.append(name)

    # -- HAVING: aggregates plus group keys only.
    if statement.having is not None:
        if not grouped:
            report.add(
                "PV103",
                SEVERITY_ERROR,
                "HAVING requires GROUP BY or an aggregate select list",
                "having",
            )
        _check_functions(report, statement.having, "having", allow_aggregates=True)
        for ref in _column_refs(statement.having, inside_aggregates=False):
            resolved = _resolve_name(schema, ref)
            if resolved is None:
                _check_refs(report, [ref], schema, "having")
            elif resolved not in key_names:
                report.add(
                    "PV103",
                    SEVERITY_ERROR,
                    f"HAVING references {ref.display()!r}, which is not a "
                    "group key; non-key columns must appear inside an "
                    "aggregate",
                    "having",
                )
        for ref in (
            r
            for call in _aggregate_calls(statement.having)
            for a in call.args
            for r in _column_refs(a)
        ):
            _check_refs(report, [ref], schema, "having")

    # -- ORDER BY: aggregate queries sort the projected schema, plain
    # queries sort pre-projection (aliases or input columns).
    for i, order in enumerate(statement.order_by):
        location = f"order by[{i}]"
        display = order.column.display()
        if grouped:
            if order.column.qualifier is None and display in out_names:
                continue
            report.add(
                "PV101",
                SEVERITY_ERROR,
                f"ORDER BY references {display!r}, which is not an output "
                f"column of the aggregate query (outputs: {', '.join(out_names)})",
                location,
            )
        else:
            if order.column.qualifier is None and display in out_names:
                continue
            _check_refs(report, [order.column], schema, location)

    return report


def verify_sql(catalog: Catalog, sql: str) -> AnalysisReport:
    """Parse and statically verify one SELECT statement.

    >>> from repro.relational import Catalog, Relation
    >>> c = Catalog()
    >>> _ = c.register("t", Relation.from_rows(["a", "w"], [("x", 1)]))
    >>> verify_sql(c, "SELECT a FROM t").ok
    True
    >>> [d.rule for d in verify_sql(c, "SELECT nope FROM t")]
    ['PV101']
    """
    return verify_select(parse(sql), catalog)


def check_sql(catalog: Catalog, sql: str) -> None:
    """Verify and raise :class:`AnalysisError` on any error diagnostic."""
    report = verify_sql(catalog, sql)
    if not report.ok:
        raise AnalysisError(
            f"SQL verification failed with {len(report.errors())} error(s)",
            report.errors(),
        )
