"""Self-audit: verify the shipped engine's own plans and predicates.

Runs the analysis layers against *representative artifacts built
from the shipped engine itself* — the four predicate families of
Definition 1 across every physical implementation, a relational plan
exercising every operator the verifier knows, the SQL front end, the
engine-hygiene lint over the hot paths, and the DF3xx dataflow audit
(including its seeded-defect corpus gate, which proves the auditor's
rules still detect the defects they exist for). A clean report here is the
regression guarantee behind the CI ``static-analysis`` gate: if a change
to the engine introduces an unsound bound, a broken ordering contract,
or a schema bug in the shipped operators, ``repro analyze`` goes red
before any test dataset does.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.invariants import (
    KNOWN_IMPLEMENTATIONS,
    verify_shards,
    verify_ssjoin,
)
from repro.analysis.lint import lint_paths
from repro.analysis.plan_verifier import verify_plan
from repro.analysis.sql_check import verify_sql
from repro.core.encoded import encode_pair
from repro.core.ordering import frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.relational.aggregates import agg_count, agg_sum
from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.plan import (
    Extend,
    GroupBy,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    Select,
    SSJoinNode,
    TableScan,
)
from repro.relational.relation import Relation

__all__ = ["selfcheck"]


def _sample_relations() -> Tuple[PreparedRelation, PreparedRelation]:
    tokenize = lambda s: s.split()  # noqa: E731 - trivial whitespace tokenizer
    left = PreparedRelation.from_strings(
        ["data cleaning primer", "similarity joins", "primitive operator"],
        tokenize,
        name="L",
    )
    right = PreparedRelation.from_strings(
        ["data cleaning", "similarity join operator", "prefix filter"],
        tokenize,
        name="R",
    )
    return left, right


def _predicate_families() -> List[Tuple[str, OverlapPredicate]]:
    return [
        ("absolute", OverlapPredicate.absolute(1.5)),
        ("one_sided", OverlapPredicate.one_sided(0.6)),
        ("two_sided", OverlapPredicate.two_sided(0.5)),
        ("max_norm", OverlapPredicate.max_norm(0.4)),
    ]


def _ssjoin_selfcheck() -> AnalysisReport:
    left, right = _sample_relations()
    ordering = frequency_ordering(left, right)
    enc_left, enc_right, _ = encode_pair(left, right, ordering=ordering)
    reports: List[Diagnostic] = []
    for family, predicate in _predicate_families():
        for impl in KNOWN_IMPLEMENTATIONS:
            encoding = (
                (enc_left, enc_right)
                if impl.startswith("encoded-")
                else None
            )
            report = verify_ssjoin(
                left,
                right,
                predicate,
                ordering=ordering,
                implementation=impl,
                encoding=encoding,
            )
            for d in report.diagnostics:
                reports.append(
                    dataclasses.replace(
                        d, location=f"ssjoin[{family}/{impl}] {d.location}"
                    )
                )
    return AnalysisReport(reports)


def _parallel_selfcheck() -> AnalysisReport:
    """SSJ108 over the shipped shard planners: plan real shards on the
    sample relations and verify they cover their universes exactly."""
    from repro.core.encoded_prefix import group_prefix_lengths
    from repro.parallel.shards import plan_group_shards, plan_token_range_shards

    left, right = _sample_relations()
    ordering = frequency_ordering(left, right)
    enc_left, enc_right, dictionary = encode_pair(left, right, ordering=ordering)
    predicate = OverlapPredicate.two_sided(0.5)
    left_prefix = group_prefix_lengths(enc_left, predicate.left_filter_threshold)
    right_prefix = group_prefix_lengths(enc_right, predicate.right_filter_threshold)

    diagnostics: List[Diagnostic] = []
    for n_shards in (1, 2, 4, 8):
        group_plan = plan_group_shards(left, n_shards)
        token_plan = plan_token_range_shards(
            enc_left.ids, left_prefix, enc_right.ids, right_prefix,
            len(dictionary), n_shards,
        )
        for kind, plan, universe in (
            ("group-hash", group_plan, left.num_groups),
            ("token-range", token_plan, len(dictionary)),
        ):
            report = verify_shards(plan, universe)
            for d in report.diagnostics:
                diagnostics.append(
                    dataclasses.replace(
                        d, location=f"parallel[{kind}/n={n_shards}] {d.location}"
                    )
                )
    return AnalysisReport(diagnostics)


def _plan_selfcheck() -> AnalysisReport:
    catalog = Catalog()
    catalog.register(
        "orders",
        Relation.from_rows(
            ["order_id", "customer", "amount"],
            [(1, "ada", 10.0), (2, "bob", 7.5), (3, "ada", 2.5)],
        ),
    )
    catalog.register(
        "customers",
        Relation.from_rows(
            ["customer", "city"], [("ada", "london"), ("bob", "berlin")]
        ),
    )
    plan = Limit(
        OrderBy(
            GroupBy(
                Project(
                    Select(
                        HashJoin(
                            TableScan("orders"),
                            TableScan("customers"),
                            keys=["customer"],
                        ),
                        col("amount") >= 1.0,
                    ),
                    ["customer", "amount", "city"],
                ),
                keys=["customer"],
                aggregates=[agg_count("n"), agg_sum("total", col("amount"))],
                having=col("n") >= 1,
            ),
            ["customer"],
        ),
        2,
    )
    extend_plan = Extend(
        TableScan("orders"), "flagged", col("amount") >= 5.0
    )
    # Layer 7: an SSJoin plan tree (PV1xx + SSJ110-112) built the way the
    # joins layer composes them, and the SQL SSJOIN path through the
    # compiler (structural checks + plan verification of the result).
    catalog.register(
        "tokens",
        Relation.from_rows(
            ["a", "b", "w"],
            [
                ("r1", "apple", 1.0),
                ("r1", "pie", 1.0),
                ("r2", "apple", 1.0),
                ("r2", "pie", 1.0),
                ("r2", "tin", 1.0),
            ],
        ),
    )
    scan = TableScan("tokens")
    ssjoin_plan = Project(
        Select(
            SSJoinNode(scan, scan, OverlapPredicate.two_sided(0.8)),
            col("a_r").ne(col("a_s")),
        ),
        ["a_r", "a_s", "overlap"],
    )
    report = verify_plan(plan, catalog)
    report.extend(verify_plan(extend_plan, catalog))
    report.extend(verify_plan(ssjoin_plan, catalog))
    report.extend(
        verify_sql(
            catalog,
            "SELECT customer, SUM(amount) AS total FROM orders "
            "GROUP BY customer HAVING SUM(amount) >= 1 ORDER BY total",
        )
    )
    report.extend(
        verify_sql(
            catalog,
            "SELECT a_r, a_s, overlap FROM tokens r SSJOIN tokens s "
            "ON OVERLAP(b) >= 0.8 * r.norm AND OVERLAP(b) >= 0.8 * s.norm "
            "WHERE a_r < a_s ORDER BY overlap DESC LIMIT 10",
        )
    )
    return report


def _storage_selfcheck() -> AnalysisReport:
    """SSJ114 over a freshly ingested table, plus the seeded stale-stamp
    fixture — the gate proving the rule still detects the defect it
    exists for (the DF399 corpus pattern, applied to storage)."""
    import os
    import tempfile

    from repro.analysis.diagnostics import SEVERITY_ERROR
    from repro.analysis.invariants import verify_storage
    from repro.storage import ingest_prepared
    from repro.storage.fixtures import seed_stale_table

    left, _ = _sample_relations()
    diagnostics: List[Diagnostic] = []
    with tempfile.TemporaryDirectory(prefix="repro-selfcheck-") as tmp:
        clean = os.path.join(tmp, "clean.rpsf")
        ingest_prepared(left, clean).close()
        for d in verify_storage(clean).diagnostics:
            diagnostics.append(
                dataclasses.replace(d, location=f"storage[clean] {d.location}")
            )
        stale = os.path.join(tmp, "stale.rpsf")
        seed_stale_table(stale)
        seeded = verify_storage(stale)
        if not any(
            d.rule == "SSJ114" and d.severity == SEVERITY_ERROR
            for d in seeded.diagnostics
        ):
            diagnostics.append(
                Diagnostic(
                    "SSJ114",
                    SEVERITY_ERROR,
                    "seeded stale-generation fixture was NOT detected — the "
                    "rule no longer catches the defect it exists for",
                    "storage[seeded]",
                )
            )
    return AnalysisReport(diagnostics)


def _dataflow_selfcheck() -> AnalysisReport:
    """DF3xx over the engine hot paths, plus the seeded-defect corpus
    gate (DF399) when the source checkout's corpus is present."""
    from pathlib import Path

    from repro.analysis.dataflow import analyze_dataflow, check_corpus
    from repro.analysis.dataflow.corpus import DEFAULT_CORPUS
    from repro.analysis.lint import DEFAULT_PATHS

    report = analyze_dataflow([p for p in DEFAULT_PATHS if Path(p).exists()])
    if DEFAULT_CORPUS.is_dir():
        check_corpus(DEFAULT_CORPUS, report=report)
    return report


def selfcheck(
    include_lint: bool = True, include_dataflow: bool = True
) -> AnalysisReport:
    """Audit the shipped engine; a non-``ok`` report is a regression.

    Set ``include_lint=False`` to skip the source-tree lint, or
    ``include_dataflow=False`` to skip the DF3xx dataflow audit (e.g.
    when running from an installed package without the source checkout).
    """
    parts = [
        _ssjoin_selfcheck(),
        _parallel_selfcheck(),
        _plan_selfcheck(),
        _storage_selfcheck(),
    ]
    if include_lint:
        parts.append(lint_paths())
    if include_dataflow:
        parts.append(_dataflow_selfcheck())
    return AnalysisReport.combine(parts)
