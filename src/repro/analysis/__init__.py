"""Static analysis layer: plan verifier, invariant linter, engine lint.

Three layers, one diagnostic vocabulary (:class:`Diagnostic` /
:class:`AnalysisReport`):

- :mod:`repro.analysis.plan_verifier` / :mod:`repro.analysis.sql_check`
  — schema propagation over relational plans and SQL (``PV1xx`` rules).
- :mod:`repro.analysis.invariants` — SSJoin safety: Lemma-1 bound
  soundness, ordering-contract checks for encoded plans, float-equality
  and verify-step audits (``SSJ1xx`` rules).
- :mod:`repro.analysis.lint` — ``ast``-based engine-hygiene lint over
  the hot paths (``RL2xx`` rules); also ``python -m repro.analysis.lint``.
- :mod:`repro.analysis.dataflow` — fixpoint dataflow auditor for
  ordering determinism, kernel purity, and float-accumulation order in
  the parallel/batch engine (``DF3xx`` rules).

Entry points: ``repro analyze`` (CLI; ``--dataflow`` for the DF3xx
audit), ``SSJoin(..., verify=True)`` (facade), and :func:`selfcheck`
(the CI regression gate).
"""

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.invariants import (
    KNOWN_IMPLEMENTATIONS,
    check_shards,
    check_ssjoin,
    verify_shards,
    verify_ssjoin,
)
from repro.analysis.dataflow import DF_RULES, analyze_dataflow, check_corpus
from repro.analysis.lint import lint_file, lint_paths, lint_source
from repro.analysis.plan_verifier import check_plan, verify_plan
from repro.analysis.selfcheck import selfcheck
from repro.analysis.sql_check import check_sql, verify_select, verify_sql
from repro.errors import AnalysisError

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "AnalysisReport",
    "Diagnostic",
    "AnalysisError",
    "KNOWN_IMPLEMENTATIONS",
    "verify_ssjoin",
    "check_ssjoin",
    "verify_shards",
    "check_shards",
    "verify_plan",
    "check_plan",
    "verify_select",
    "verify_sql",
    "check_sql",
    "lint_source",
    "lint_file",
    "lint_paths",
    "DF_RULES",
    "analyze_dataflow",
    "check_corpus",
    "selfcheck",
]
