"""Canonicalization: electing a representative per duplicate cluster.

After clustering, cleaning replaces each duplicate with its cluster's
canonical form. Three standard election policies are provided; all are
deterministic (ties broken lexicographically) so cleaning runs are
reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.errors import ReproError
from repro.sim.jaccard import string_jaccard_resemblance

__all__ = ["elect_longest", "elect_most_frequent", "elect_centroid", "canonical_mapping"]

Elector = Callable[[Sequence[str]], str]


def elect_longest(cluster: Sequence[str]) -> str:
    """The longest member — usually the least-abbreviated variant.

    >>> elect_longest(["ms corp", "microsoft corp"])
    'microsoft corp'
    """
    if not cluster:
        raise ReproError("cannot elect from an empty cluster")
    return max(cluster, key=lambda s: (len(s), s))


def elect_most_frequent(
    cluster: Sequence[str], frequencies: Optional[Dict[str, int]] = None
) -> str:
    """The member occurring most often in the source data.

    Without a frequency table this falls back to :func:`elect_longest`
    (every member of a deduplicated cluster is otherwise equally frequent).
    """
    if not cluster:
        raise ReproError("cannot elect from an empty cluster")
    if not frequencies:
        return elect_longest(cluster)
    return max(cluster, key=lambda s: (frequencies.get(s, 0), len(s), s))


def elect_centroid(
    cluster: Sequence[str],
    similarity: Callable[[str, str], float] = string_jaccard_resemblance,
) -> str:
    """The member maximizing total similarity to the rest of the cluster.

    O(k²) similarity evaluations per cluster — clusters are small, so this
    is cheap and gives the most defensible representative.

    >>> elect_centroid(["main st 12", "12 main st", "12 main street"])
    '12 main st'
    """
    if not cluster:
        raise ReproError("cannot elect from an empty cluster")
    if len(cluster) == 1:
        return cluster[0]

    def total(candidate: str) -> float:
        return sum(similarity(candidate, other) for other in cluster if other != candidate)

    return max(cluster, key=lambda s: (total(s), len(s), s))


def canonical_mapping(
    clusters: Iterable[Sequence[str]],
    elector: Elector = elect_centroid,
) -> Dict[str, str]:
    """Map every clustered value to its cluster's canonical form.

    Values outside any cluster are absent (map through with ``dict.get``).

    >>> canonical_mapping([["ms corp", "microsoft corp"]], elector=elect_longest)
    {'ms corp': 'microsoft corp', 'microsoft corp': 'microsoft corp'}
    """
    mapping: Dict[str, str] = {}
    for cluster in clusters:
        representative = elector(cluster)
        for member in cluster:
            if member in mapping and mapping[member] != representative:
                raise ReproError(
                    f"value {member!r} appears in two clusters "
                    f"({mapping[member]!r} and {representative!r})"
                )
            mapping[member] = representative
    return mapping
