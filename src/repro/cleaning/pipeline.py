"""The end-to-end deduplication pipeline.

Ties the whole reproduction together into the artifact the paper's
introduction motivates: a data-cleaning platform step that takes a dirty
column, runs a similarity join through the SSJoin operator, clusters the
matches, elects canonical forms, and reports what changed.

>>> values = ["12 main st", "12 main street", "9 oak ave"]
>>> report = dedupe(values, similarity="jaccard", threshold=0.5, weights=None)
>>> report.num_duplicates
1
>>> report.clean_values()
['12 main street', '12 main street', '9 oak ave']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.cleaning.canonical import Elector, canonical_mapping, elect_centroid
from repro.cleaning.clusters import clusters_with_scores
from repro.core.metrics import ExecutionMetrics
from repro.errors import ReproError
from repro.joins.base import SimilarityJoinResult
from repro.joins.cosine_join import cosine_join
from repro.joins.edit_join import edit_similarity_join
from repro.joins.ges_join import ges_join
from repro.joins.jaccard_join import jaccard_resemblance_join
from repro.tokenize.weights import WeightTable

__all__ = ["DedupeReport", "dedupe"]

_SIMILARITIES = {
    "edit": lambda values, t, i, w: edit_similarity_join(
        values, threshold=t, implementation=i
    ),
    "jaccard": lambda values, t, i, w: jaccard_resemblance_join(
        values, threshold=t, implementation=i, weights=w
    ),
    "ges": lambda values, t, i, w: ges_join(
        values, threshold=t, implementation=i, weights=w
    ),
    "cosine": lambda values, t, i, w: cosine_join(
        values, threshold=t, implementation=i, weights=w
    ),
}


@dataclass
class DedupeReport:
    """Everything a cleaning run produced."""

    original: List[str]
    clusters: List[List[str]]
    mapping: Dict[str, str]
    join_result: SimilarityJoinResult
    metrics: ExecutionMetrics

    @property
    def num_duplicates(self) -> int:
        """Rows whose value was replaced by a different canonical form."""
        return sum(1 for v in self.original if self.mapping.get(v, v) != v)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def clean_values(self) -> List[str]:
        """The input column with duplicates rewritten to canonical forms."""
        return [self.mapping.get(v, v) for v in self.original]

    def summary(self) -> str:
        return (
            f"{len(self.original)} rows -> {self.num_clusters} duplicate "
            f"clusters, {self.num_duplicates} rows rewritten "
            f"({self.join_result.implementation} plan, "
            f"{self.metrics.total_seconds:.3f}s)"
        )


def dedupe(
    values: Sequence[str],
    similarity: str = "jaccard",
    threshold: float = 0.8,
    bridge_threshold: Optional[float] = None,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    elector: Elector = elect_centroid,
) -> DedupeReport:
    """Deduplicate a string column end to end.

    Parameters
    ----------
    similarity:
        ``"edit"``, ``"jaccard"``, ``"ges"``, or ``"cosine"``.
    threshold:
        Similarity-join threshold.
    bridge_threshold:
        Minimum similarity for an edge to participate in cluster merging
        (defaults to *threshold*: all matches merge). Raise it to stop
        borderline pairs chaining distinct entities together.
    elector:
        Canonical-form election policy (see :mod:`repro.cleaning.canonical`).
    """
    if similarity not in _SIMILARITIES:
        raise ReproError(
            f"unknown similarity {similarity!r}; expected one of "
            f"{sorted(_SIMILARITIES)}"
        )
    join = _SIMILARITIES[similarity](list(values), threshold, implementation, weights)
    clusters = clusters_with_scores(
        join.pairs,
        bridge_threshold=threshold if bridge_threshold is None else bridge_threshold,
    )
    mapping = canonical_mapping(clusters, elector=elector)
    return DedupeReport(
        original=list(values),
        clusters=clusters,
        mapping=mapping,
        join_result=join,
        metrics=join.metrics,
    )
