"""Duplicate clustering: from matched pairs to entity groups.

A similarity join emits *pairs*; data cleaning needs *groups* — "these five
rows are the same customer". The standard construction (used by
merge/purge [11] and the fuzzy-duplicate literature [1] the paper builds
on) is connected components over the match graph, optionally tightened to
reject sprawling chains.

:class:`UnionFind` is a classic disjoint-set-union with path compression
and union by size; :func:`cluster_pairs` applies it to a pair list;
:func:`clusters_with_scores` additionally prunes weak bridges first so a
single borderline match cannot glue two large groups together.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.joins.base import MatchPair

__all__ = ["UnionFind", "cluster_pairs", "clusters_with_scores"]


class UnionFind:
    """Disjoint-set union over arbitrary hashable items.

    >>> uf = UnionFind()
    >>> uf.union("a", "b"); uf.union("b", "c")
    >>> uf.same("a", "c")
    True
    >>> uf.same("a", "z")
    False
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        """Register *item* as its own singleton set (no-op if known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Representative of *item*'s set (with path compression)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        """Merge the sets containing *a* and *b* (union by size)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def same(self, a: Hashable, b: Hashable) -> bool:
        """Are *a* and *b* currently in the same set?"""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Hashable]]:
        """All sets, each as a list; deterministic order (sorted by repr)."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        out = [sorted(members, key=repr) for members in by_root.values()]
        out.sort(key=lambda g: repr(g[0]))
        return out

    def __len__(self) -> int:
        """Number of registered items."""
        return len(self._parent)


def cluster_pairs(
    pairs: Iterable[Tuple[Any, Any]],
    items: Optional[Iterable[Any]] = None,
    min_size: int = 2,
) -> List[List[Any]]:
    """Connected components of the match graph.

    Parameters
    ----------
    pairs:
        Matched ``(a, b)`` tuples (direction irrelevant).
    items:
        Optional universe; items never matched form singletons, reported
        only if ``min_size <= 1``.
    min_size:
        Smallest cluster to report (default 2: only true duplicate groups).

    >>> cluster_pairs([("a", "b"), ("b", "c"), ("x", "y")])
    [['a', 'b', 'c'], ['x', 'y']]
    """
    if min_size < 1:
        raise ReproError(f"min_size must be >= 1, got {min_size}")
    uf = UnionFind()
    if items is not None:
        for item in items:
            uf.add(item)
    for a, b in pairs:
        uf.union(a, b)
    return [g for g in uf.groups() if len(g) >= min_size]


def clusters_with_scores(
    matches: Sequence[MatchPair],
    bridge_threshold: float = 0.0,
    min_size: int = 2,
) -> List[List[Any]]:
    """Cluster scored matches, dropping weak "bridge" edges first.

    Transitive closure over borderline matches merges distinct entities
    ("a~b at 0.80, b~c at 0.80" does not imply a~c). Raising
    *bridge_threshold* above the join threshold keeps only confident edges
    for the merge step while the weaker pairs remain available for manual
    review.

    >>> ms = [MatchPair("a", "b", 0.95), MatchPair("b", "c", 0.62)]
    >>> clusters_with_scores(ms, bridge_threshold=0.9)
    [['a', 'b']]
    """
    strong = [m for m in matches if m.similarity + 1e-9 >= bridge_threshold]
    return cluster_pairs([m.as_tuple() for m in strong], min_size=min_size)
