"""Multi-field record linkage on top of the similarity joins.

Real cleaning tasks match *records*, not single strings: two customer rows
are duplicates when the weighted combination of per-field similarities
(name, address, phone, …) crosses a threshold — the practical distillation
of Fellegi–Sunter scoring [7] that the record-linkage literature the paper
cites employs.

The expensive part is candidate generation; evaluating every field on
every record pair is quadratic. :func:`record_linkage_join` therefore
generates candidates with a *blocking* SSJoin on one designated field:
pairs whose blocking field shares enough q-grams. Blocking is the standard
recall/efficiency trade of the record-linkage literature — a pair whose
blocking fields share no q-grams at all is invisible to it. The default
block threshold is derived conservatively from the lowest blocking-field
similarity any passing pair can have, then halved to absorb the gap
between q-gram containment and the field similarity; pass
``exhaustive=True`` to skip blocking entirely and score every pair
(guaranteed completeness, quadratic cost — fine for modest inputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.errors import ReproError
from repro.joins.base import MatchPair, SimilarityJoinResult
from repro.joins.jaccard_join import jaccard_containment_join
from repro.sim.edit import edit_similarity
from repro.sim.jaccard import string_jaccard_resemblance
from repro.tokenize.qgrams import qgrams

__all__ = ["FieldRule", "record_linkage_join"]

SimilarityFn = Callable[[str, str], float]

#: Named similarity functions accepted by FieldRule.
_FIELD_SIMILARITIES: Dict[str, SimilarityFn] = {
    "edit": edit_similarity,
    "jaccard": string_jaccard_resemblance,
    "exact": lambda a, b: 1.0 if a == b else 0.0,
}


@dataclass(frozen=True)
class FieldRule:
    """How one record field contributes to the combined score.

    ``similarity`` is a name from ``edit``/``jaccard``/``exact`` or any
    callable ``(str, str) -> float``. Weights are normalized across the
    rule set, so only their ratios matter.
    """

    field: str
    weight: float = 1.0
    similarity: Any = "edit"

    def fn(self) -> SimilarityFn:
        if callable(self.similarity):
            return self.similarity
        try:
            return _FIELD_SIMILARITIES[self.similarity]
        except KeyError:
            raise ReproError(
                f"unknown field similarity {self.similarity!r}; expected one "
                f"of {sorted(_FIELD_SIMILARITIES)} or a callable"
            ) from None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ReproError(f"field weight must be positive, got {self.weight}")


def _combined_score(
    r1: Mapping[str, Any], r2: Mapping[str, Any], rules: Sequence[FieldRule]
) -> float:
    total_weight = sum(rule.weight for rule in rules)
    score = 0.0
    for rule in rules:
        v1, v2 = r1.get(rule.field), r2.get(rule.field)
        if v1 is None or v2 is None:
            continue  # a missing field contributes nothing
        score += rule.weight * rule.fn()(str(v1), str(v2))
    return score / total_weight


def record_linkage_join(
    left: Sequence[Mapping[str, Any]],
    right: Optional[Sequence[Mapping[str, Any]]] = None,
    rules: Sequence[FieldRule] = (),
    threshold: float = 0.8,
    block_on: Optional[str] = None,
    block_threshold: Optional[float] = None,
    exhaustive: bool = False,
    key: str = "id",
) -> SimilarityJoinResult:
    """Match records by a weighted combination of per-field similarities.

    Parameters
    ----------
    left, right:
        Record mappings; each must carry a unique *key* value.
        ``right=None`` self-joins *left* (each unordered pair once).
    rules:
        Per-field scoring rules; the combined score is the weight-normalized
        sum of field similarities.
    block_on:
        Field used for SSJoin candidate generation (default: the
        highest-weight rule's field). Candidates are pairs whose blocking
        field's q-gram containment is at least *block_threshold*.
    block_threshold:
        Defaults to ``max(0, (threshold − (1 − w)) / w) / 2`` where ``w``
        is the blocking field's normalized weight — the lowest blocking
        similarity a passing pair can have, halved to absorb the gap
        between q-gram containment and the field similarity. Blocking is a
        recall heuristic; see the module docstring.
    exhaustive:
        Skip blocking and score every pair (complete, quadratic).
    """
    if not rules:
        raise ReproError("record_linkage_join requires at least one FieldRule")
    if not 0.0 < threshold <= 1.0:
        raise ReproError(f"threshold must be in (0, 1], got {threshold}")

    self_join = right is None
    right_records = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        left_by_key = {r[key]: r for r in left}
        right_by_key = {r[key]: r for r in right_records}
        if len(left_by_key) != len(left) or len(right_by_key) != len(right_records):
            raise ReproError(f"records must have unique {key!r} values")

        block_rule = (
            max(rules, key=lambda r: r.weight)
            if block_on is None
            else next((r for r in rules if r.field == block_on), None)
        )
        if block_rule is None:
            raise ReproError(f"block_on field {block_on!r} has no rule")
        w = block_rule.weight / sum(r.weight for r in rules)
        if block_threshold is None:
            block_threshold = max((threshold - (1.0 - w)) / w, 0.0) / 2.0
        block_threshold = max(block_threshold, 0.05)

        def field_text(record: Mapping[str, Any]) -> str:
            value = record.get(block_rule.field)
            return "" if value is None else str(value)

        left_texts = [field_text(left_by_key[k]) for k in left_by_key]
        right_texts = [field_text(right_by_key[k]) for k in right_by_key]
        left_of_text: Dict[str, List[Any]] = {}
        for k in left_by_key:
            left_of_text.setdefault(field_text(left_by_key[k]), []).append(k)
        right_of_text: Dict[str, List[Any]] = {}
        for k in right_by_key:
            right_of_text.setdefault(field_text(right_by_key[k]), []).append(k)

    candidate_keys = set()
    if exhaustive:
        candidate_keys = {(k1, k2) for k1 in left_by_key for k2 in right_by_key}
    else:
        # Candidate generation: q-gram containment SSJoin on the blocking
        # field (its phases merge into this run's metrics).
        block = jaccard_containment_join(
            left_texts,
            right_texts,
            threshold=block_threshold,
            tokenizer=lambda s: qgrams(s, 3),
            weights=None,
        )
        metrics.merge(block.metrics)
        for match in block.pairs:
            for k1 in left_of_text.get(match.left, ()):
                for k2 in right_of_text.get(match.right, ()):
                    candidate_keys.add((k1, k2))
        # Equal blocking texts never appear in the containment join output
        # across sides (distinct-value semantics) — add them explicitly.
        for text, k1s in left_of_text.items():
            for k2 in right_of_text.get(text, ()):
                candidate_keys.update((k1, k2) for k1 in k1s)

    pairs: List[MatchPair] = []
    with metrics.phase(PHASE_FILTER):
        seen = set()
        for k1, k2 in candidate_keys:
            if self_join:
                if k1 == k2:
                    continue
                canonical = (k1, k2) if repr(k1) <= repr(k2) else (k2, k1)
                if canonical in seen:
                    continue
                seen.add(canonical)
                k1, k2 = canonical
            metrics.similarity_comparisons += 1
            score = _combined_score(left_by_key[k1], right_by_key[k2], rules)
            if score + 1e-9 >= threshold:
                pairs.append(MatchPair(k1, k2, score))

    pairs.sort(key=lambda p: (-p.similarity, repr(p.as_tuple())))
    metrics.result_pairs = len(pairs)
    return SimilarityJoinResult(
        pairs=pairs,
        metrics=metrics,
        implementation=f"record-linkage[block={block_rule.field}]",
        threshold=threshold,
    )
