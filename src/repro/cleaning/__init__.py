"""End-to-end data cleaning on top of the similarity joins.

The paper motivates SSJoin as the primitive of a *data cleaning platform*;
this subpackage is the platform step built on it: similarity join →
duplicate clustering (connected components with bridge pruning) →
canonical-form election → a rewritten column plus a report.
"""

from repro.cleaning.canonical import (
    canonical_mapping,
    elect_centroid,
    elect_longest,
    elect_most_frequent,
)
from repro.cleaning.clusters import UnionFind, cluster_pairs, clusters_with_scores
from repro.cleaning.pipeline import DedupeReport, dedupe
from repro.cleaning.records import FieldRule, record_linkage_join

__all__ = [
    "canonical_mapping",
    "elect_centroid",
    "elect_longest",
    "elect_most_frequent",
    "UnionFind",
    "cluster_pairs",
    "clusters_with_scores",
    "DedupeReport",
    "dedupe",
    "FieldRule",
    "record_linkage_join",
]
