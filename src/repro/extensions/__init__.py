"""Extensions following the paper's research lineage.

The prefix filter introduced by the reproduced paper spawned a family of
set-similarity join algorithms; this subpackage implements its two most
influential descendants as the natural "future work" layer:

* **All-Pairs** (Bayardo, Ma & Srikant, WWW'07) — size filtering + prefix
  indexing for cosine thresholds;
* **PPJoin** (Xiao, Wang, Lin & Yu, WWW'08) — the positional prefix filter
  for Jaccard thresholds.
"""

from repro.extensions.allpairs import allpairs, allpairs_strings
from repro.extensions.ppjoin import ppjoin, ppjoin_strings

__all__ = ["allpairs", "allpairs_strings", "ppjoin", "ppjoin_strings"]
