"""PPJoin — the positional prefix-filter join built on this paper's ideas.

Xiao, Wang, Lin & Yu ("Efficient Similarity Joins for Near Duplicate
Detection", WWW 2008) extended the SSJoin/prefix-filter line with a
*positional* filter: because prefixes are taken under one global order,
the position at which two prefixes first intersect bounds how large their
total overlap can still get, letting candidates be abandoned before
verification. This module implements PPJoin for the unweighted-set /
Jaccard-threshold setting it was defined for — the natural "future work"
extension of the reproduced paper.

Definitions (for Jaccard threshold t, set sizes ``|x| ⩾ |y|``):

* overlap requirement ``α = ⌈ t/(1+t) · (|x|+|y|) ⌉``
  (from ``J(x,y) ⩾ t ⇔ |x∩y| ⩾ α``),
* probe-prefix length ``|x| − ⌈t·|x|⌉ + 1``, index-prefix length
  ``|y| − ⌈t·|y|⌉ + 1``,
* size filter ``|y| ⩾ ⌈t·|x|⌉``,
* positional filter: seeing a match at positions ``(i, j)``, the overlap
  can reach at most ``A[y] + 1 + min(|x|−i−1, |y|−j−1)``; below α the
  candidate is abandoned.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dictionary import TokenDictionary
from repro.core.metrics import ExecutionMetrics, PHASE_FILTER, PHASE_PREP, PHASE_SSJOIN
from repro.core.verify import (
    VerifyConfig,
    bounded_overlap_count,
    choose_signature_bits,
    required_overlap_count,
    signature_of,
)
from repro.errors import PredicateError
from repro.joins.base import MatchPair, SimilarityJoinResult
from repro.tokenize.words import word_set

__all__ = ["ppjoin", "ppjoin_strings"]


def _overlap_from_sorted(x: Sequence[int], y: Sequence[int]) -> int:
    """Merge-count intersection of two ascending int-id arrays."""
    i = j = count = 0
    nx, ny = len(x), len(y)
    while i < nx and j < ny:
        xi, yj = x[i], y[j]
        if xi == yj:
            count += 1
            i += 1
            j += 1
        elif xi < yj:
            i += 1
        else:
            j += 1
    return count


def ppjoin(
    records: Sequence[Sequence[Any]],
    threshold: float,
    metrics: Optional[ExecutionMetrics] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> List[Tuple[int, int, float]]:
    """Self-join *records* (token sets) at Jaccard threshold *threshold*.

    Returns ``(i, j, jaccard)`` triples with ``i < j`` over record indexes.
    Duplicate tokens within a record are ignored (PPJoin is defined on
    sets). Empty records never match (see the operator's degenerate-input
    note).

    Verification goes through the bitmap stage of
    :mod:`repro.core.verify` (sets are unweighted, so the XOR-popcount
    bound is integer-exact) and a merge that abandons once the required
    overlap count is unreachable; *verify_config* tunes both (None =
    auto-width signatures, bounded merge on).
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "ppjoin"
    t = threshold

    with m.phase(PHASE_PREP):
        # Canonicalize on the dictionary substrate: intern distinct tokens
        # into dense int ids in ascending document-frequency order (the
        # same ordering principle as the paper's Sec 4.3.2), so each record
        # becomes a sorted int array — id comparison IS the global order —
        # then order records by size so the index only holds smaller sets.
        freq: Dict[Any, int] = {}
        for rec in records:
            for token in set(rec):
                freq[token] = freq.get(token, 0) + 1
        dictionary = TokenDictionary.from_frequencies(freq)
        canonical: List[Tuple[int, array]] = []
        for idx, rec in enumerate(records):
            tokens = array("q", sorted(dictionary.id_of(t) for t in set(rec)))
            if tokens:
                canonical.append((idx, tokens))
        canonical.sort(key=lambda entry: (len(entry[1]), entry[0]))
        m.prepared_rows += sum(len(tokens) for _, tokens in canonical)
        # Bit signatures for the verification-stage bitmap bound.  The
        # strictness argument is the fraction of a set the overlap
        # requirement α demands at equal sizes: α/|x| = 2t/(1+t).
        cfg = verify_config if verify_config is not None else VerifyConfig()
        nbits = cfg.signature_bits
        if nbits is None:
            nbits = choose_signature_bits(len(dictionary), 2.0 * t / (1.0 + t))
        sigs: List[int] = (
            [signature_of(tokens, nbits) for _, tokens in canonical] if nbits else []
        )
        bounded = cfg.early_exit

    results: List[Tuple[int, int, float]] = []
    index: Dict[int, List[Tuple[int, int]]] = {}  # token id -> [(record pos, token pos)]

    with m.phase(PHASE_SSJOIN):
        for xpos, (xid, x) in enumerate(canonical):
            size_x = len(x)
            probe_prefix = size_x - math.ceil(t * size_x) + 1
            # A[ypos] = overlap seen so far; None marks pruned candidates.
            seen: Dict[int, Optional[int]] = {}
            for i in range(probe_prefix):
                token = x[i]
                for ypos, j in index.get(token, ()):
                    _, y = canonical[ypos]
                    size_y = len(y)
                    if size_y < math.ceil(t * size_x):  # size filter
                        continue
                    state = seen.get(ypos, 0)
                    if state is None:
                        continue  # already pruned by the positional filter
                    alpha = math.ceil(t / (1 + t) * (size_x + size_y))
                    upper = state + 1 + min(size_x - i - 1, size_y - j - 1)
                    if upper >= alpha:
                        seen[ypos] = state + 1
                    else:
                        seen[ypos] = None
            m.candidate_pairs += sum(1 for v in seen.values() if v)

            # Verification: bitmap-bound candidates, then exact overlap by
            # merging the full sorted sets (abandoned once the required
            # count is unreachable).  The required count is derived from
            # the admission test ``jaccard + 1e-9 >= t`` itself (not the
            # bare α), with a generous float guard, so neither stage can
            # drop a pair the unfiltered merge would emit.
            sig_x = sigs[xpos] if nbits else 0
            for ypos, partial in seen.items():
                if not partial:
                    continue
                yid, y = canonical[ypos]
                size_y = len(y)
                m.verify_candidates += 1
                required = required_overlap_count(
                    (t - 1e-9) / (1.0 + t - 1e-9) * (size_x + size_y)
                )
                if nbits:
                    count_bound = (size_x + size_y - (sig_x ^ sigs[ypos]).bit_count()) >> 1
                    if count_bound < required:
                        m.verify_bitmap_pruned += 1
                        continue
                m.similarity_comparisons += 1
                m.verify_merges_run += 1
                # x and y are already ascending id arrays — merge directly.
                if bounded:
                    overlap = bounded_overlap_count(x, y, required)
                    if overlap < 0:
                        m.verify_merges_early_exited += 1
                        continue
                else:
                    overlap = _overlap_from_sorted(x, y)
                union = size_x + size_y - overlap
                jaccard = overlap / union if union else 1.0
                if jaccard + 1e-9 >= t:
                    a, b = sorted((xid, yid))
                    results.append((a, b, jaccard))

            # Index this record's prefix for future probes.
            index_prefix = size_x - math.ceil(t * size_x) + 1
            for i in range(index_prefix):
                index.setdefault(x[i], []).append((xpos, i))

    with m.phase(PHASE_FILTER):
        results.sort()
        m.result_pairs = len(results)
    return results


def ppjoin_strings(
    values: Sequence[str],
    threshold: float = 0.8,
    tokenizer: Callable[[str], Sequence[Any]] = word_set,
    metrics: Optional[ExecutionMetrics] = None,
) -> SimilarityJoinResult:
    """String front end: PPJoin over distinct-token sets of *values*.

    Duplicate strings collapse; identity pairs are excluded; each unordered
    pair appears once — matching the other joins' self-join conventions.
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    distinct = list(dict.fromkeys(values))
    records = [tokenizer(v) for v in distinct]
    triples = ppjoin(records, threshold, metrics=m)
    pairs = [
        MatchPair(*sorted((distinct[i], distinct[j]), key=repr), similarity=jaccard)
        for i, j, jaccard in triples
    ]
    pairs.sort(key=lambda p: repr(p.as_tuple()))
    m.result_pairs = len(pairs)
    return SimilarityJoinResult(
        pairs=pairs, metrics=m, implementation="ppjoin", threshold=threshold
    )
