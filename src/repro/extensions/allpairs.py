"""All-Pairs — Bayardo, Ma & Srikant (WWW 2007), binary-cosine case.

The second famous descendant of this paper's prefix filter: a similarity
join for cosine thresholds built on size filtering plus prefix indexing.
This module implements the binary-vector (unweighted set) case:

* ``cos(x, y) = |x ∩ y| / sqrt(|x|·|y|)`` for sets x, y;
* **size filter** — ``cos ≥ t`` forces ``|y| ≥ t²·|x|`` (for ``|y| ≤ |x|``);
* **overlap requirement** — ``α(x, y) = ⌈t·sqrt(|x|·|y|)⌉``;
* **prefix bound** — since every eligible partner needs overlap at least
  ``t²·|x|``, keeping the first ``|x| − ⌈t²·|x|⌉ + 1`` tokens (rarest
  first) of each side preserves all qualifying pairs — the same Lemma-1
  argument as the reproduced paper, with the cosine-specific α.

Like :mod:`repro.extensions.ppjoin`, records are processed in size order
with an inverted index over prior records' prefixes, and surviving
candidates are verified by an exact sorted-merge intersection.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.dictionary import TokenDictionary
from repro.core.metrics import ExecutionMetrics, PHASE_FILTER, PHASE_PREP, PHASE_SSJOIN
from repro.core.verify import (
    VerifyConfig,
    bounded_overlap_count,
    choose_signature_bits,
    required_overlap_count,
    signature_of,
)
from repro.errors import PredicateError
from repro.extensions.ppjoin import _overlap_from_sorted
from repro.joins.base import MatchPair, SimilarityJoinResult
from repro.tokenize.words import word_set

__all__ = ["allpairs", "allpairs_strings"]


def allpairs(
    records: Sequence[Sequence[Any]],
    threshold: float,
    metrics: Optional[ExecutionMetrics] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> List[Tuple[int, int, float]]:
    """Self-join *records* at binary-cosine threshold *threshold*.

    Returns ``(i, j, cosine)`` triples with ``i < j``. Duplicate tokens in
    a record are ignored; empty records never match.  Candidates pass the
    bitmap stage of :mod:`repro.core.verify` (integer-exact on unweighted
    sets) before the merge, which abandons once the required overlap
    count ``⌈t·sqrt(|x|·|y|)⌉`` is unreachable; *verify_config* tunes
    both stages.
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "allpairs"
    t = threshold
    t2 = t * t

    with m.phase(PHASE_PREP):
        # Same dictionary substrate as ppjoin: records become sorted int-id
        # arrays ranked by ascending document frequency.
        freq: Dict[Any, int] = {}
        for rec in records:
            for token in set(rec):
                freq[token] = freq.get(token, 0) + 1
        dictionary = TokenDictionary.from_frequencies(freq)
        canonical: List[Tuple[int, array]] = []
        for idx, rec in enumerate(records):
            tokens = array("q", sorted(dictionary.id_of(t) for t in set(rec)))
            if tokens:
                canonical.append((idx, tokens))
        canonical.sort(key=lambda entry: (len(entry[1]), entry[0]))
        m.prepared_rows += sum(len(tokens) for _, tokens in canonical)
        # Bit signatures for the verification-stage bitmap bound; at equal
        # sizes the cosine overlap requirement demands fraction t of a set.
        cfg = verify_config if verify_config is not None else VerifyConfig()
        nbits = cfg.signature_bits
        if nbits is None:
            nbits = choose_signature_bits(len(dictionary), t)
        sigs: List[int] = (
            [signature_of(tokens, nbits) for _, tokens in canonical] if nbits else []
        )
        bounded = cfg.early_exit

    results: List[Tuple[int, int, float]] = []
    index: Dict[int, List[int]] = {}  # token id -> [record position]

    with m.phase(PHASE_SSJOIN):
        for xpos, (xid, x) in enumerate(canonical):
            size_x = len(x)
            prefix_len = size_x - math.ceil(t2 * size_x) + 1
            candidates: Dict[int, bool] = {}
            for i in range(prefix_len):
                for ypos in index.get(x[i], ()):
                    candidates[ypos] = True
            m.candidate_pairs += len(candidates)

            sig_x = sigs[xpos] if nbits else 0
            for ypos in candidates:
                yid, y = canonical[ypos]
                size_y = len(y)
                if size_y < t2 * size_x:  # size filter
                    continue
                m.verify_candidates += 1
                # Required count from the admission test itself
                # (``cosine + 1e-9 >= t``), with a generous float guard,
                # so pruning can never drop an emitted pair.
                required = required_overlap_count(
                    (t - 1e-9) * math.sqrt(size_x * size_y)
                )
                if nbits:
                    count_bound = (size_x + size_y - (sig_x ^ sigs[ypos]).bit_count()) >> 1
                    if count_bound < required:
                        m.verify_bitmap_pruned += 1
                        continue
                m.similarity_comparisons += 1
                m.verify_merges_run += 1
                # x and y are already ascending id arrays — merge directly.
                if bounded:
                    overlap = bounded_overlap_count(x, y, required)
                    if overlap < 0:
                        m.verify_merges_early_exited += 1
                        continue
                else:
                    overlap = _overlap_from_sorted(x, y)
                cosine = overlap / math.sqrt(size_x * size_y)
                if cosine + 1e-9 >= t:
                    a, b = sorted((xid, yid))
                    results.append((a, b, cosine))

            for i in range(prefix_len):
                index.setdefault(x[i], []).append(xpos)

    with m.phase(PHASE_FILTER):
        results.sort()
        m.result_pairs = len(results)
    return results


def allpairs_strings(
    values: Sequence[str],
    threshold: float = 0.8,
    tokenizer=word_set,
    metrics: Optional[ExecutionMetrics] = None,
) -> SimilarityJoinResult:
    """String front end: All-Pairs over distinct-token sets of *values*."""
    m = metrics if metrics is not None else ExecutionMetrics()
    distinct = list(dict.fromkeys(values))
    records = [tokenizer(v) for v in distinct]
    triples = allpairs(records, threshold, metrics=m)
    pairs = [
        MatchPair(*sorted((distinct[i], distinct[j]), key=repr), similarity=cosine)
        for i, j, cosine in triples
    ]
    pairs.sort(key=lambda p: repr(p.as_tuple()))
    m.result_pairs = len(pairs)
    return SimilarityJoinResult(
        pairs=pairs, metrics=m, implementation="allpairs", threshold=threshold
    )
