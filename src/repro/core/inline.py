"""Prefix-filtered SSJoin with inlined set representation (paper Figure 9).

The plain prefix-filter plan must join candidates back with both base
relations just to regroup each group's elements. The inline variant
"carries the groups along with each R.A and S.A value that pass through the
prefix-filter": every prefix row also holds the group's full element set,
encoded as a single string (the paper's "concatenating all elements
together separating them by a special marker"). Verification then needs no
base-relation joins — only a small overlap UDF over two encoded sets.

Encoding format: entries separated by ``US`` (0x1F), each entry
``repr(element) GS(0x1D) weight``. ``repr`` is injective on the element
types used by the library (strings, ints and tuples thereof), and parsing
memoizes per encoded string since each group's encoding is a single shared
str object.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.basic import RESULT_SCHEMA
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREFIX,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prefixes import prefix_of_sorted
from repro.core.prepared import PreparedRelation
from repro.core.verify import (
    PRUNE_MARGIN,
    VerifyConfig,
    choose_signature_bits,
    hashed_signature,
    predicate_strictness,
)
from repro.relational.joins import hash_join
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.tokenize.sets import WeightedSet

__all__ = ["encode_set", "encoded_overlap", "inline_ssjoin"]

_ENTRY_SEP = "\x1f"
_FIELD_SEP = "\x1d"


def encode_set(wset: WeightedSet) -> str:
    """Serialize a weighted set into the inline string representation."""
    return _ENTRY_SEP.join(
        f"{e!r}{_FIELD_SEP}{w!r}" for e, w in sorted(wset.items(), key=lambda kv: repr(kv[0]))
    )


def _parse(encoded: str, cache: Dict[int, Dict[str, float]]) -> Dict[str, float]:
    """Parse an encoded set into {element_repr: weight}, memoized by id.

    Keys stay as their repr strings: overlap only needs key equality, and
    repr equality coincides with element equality for library element types.
    """
    key = id(encoded)
    hit = cache.get(key)
    if hit is not None:
        return hit
    parsed: Dict[str, float] = {}
    if encoded:
        for entry in encoded.split(_ENTRY_SEP):
            erepr, _, wrepr = entry.rpartition(_FIELD_SEP)
            parsed[erepr] = float(wrepr)
    cache[key] = parsed
    return parsed


def encoded_overlap(
    left: str, right: str, cache: Optional[Dict[int, Dict[str, float]]] = None
) -> float:
    """The inline overlap UDF: ``wt(decode(left) ∩ decode(right))``.

    Intersection weight is taken from the *left* set's weights, matching
    the other implementations (which sum ``R.w``); the two only differ when
    a join deliberately weights its sides asymmetrically, as the GES
    expansion does.
    """
    c = cache if cache is not None else {}
    lw = _parse(left, c)
    rw = _parse(right, c)
    if len(rw) < len(lw):
        return sum(lw[e] for e in rw if e in lw)
    return sum(w for e, w in lw.items() if e in rw)


def _signature_stats(
    encoded: str,
    sig_cache: Dict[int, Tuple[int, int, float]],
    nbits: int,
    parse_cache: Dict[int, Dict[str, float]],
) -> Tuple[int, int, float]:
    """Per-set ``(bit signature, cardinality, max weight)``, memoized by id.

    Signatures hash element reprs with crc32 (builtin ``hash`` is salted
    per process, which would make prune counters nondeterministic); each
    group's encoding is one shared str object, so the memo hits once per
    group, like :func:`_parse`.
    """
    key = id(encoded)
    hit = sig_cache.get(key)
    if hit is not None:
        return hit
    parsed = _parse(encoded, parse_cache)
    stats = (
        hashed_signature(parsed, nbits),
        len(parsed),
        max(parsed.values()) if parsed else 0.0,
    )
    sig_cache[key] = stats
    return stats


_INLINE_SCHEMA = Schema(["a", "b", "norm", "set"])


def _inline_prefix_relation(
    prepared: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: ElementOrdering,
    side: str,
) -> Relation:
    """Prefix rows that also carry the group's encoded full set."""
    bound_fn = (
        predicate.left_filter_threshold if side == "left" else predicate.right_filter_threshold
    )
    rows: List[Tuple] = []
    for a, wset in prepared.groups.items():
        norm = prepared.norms[a]
        # Widen beta by the shared overlap epsilon so boundary pairs that
        # satisfied() admits are never pruned (Lemma 1 with alpha - eps).
        beta = wset.norm - bound_fn(norm) + OVERLAP_EPSILON
        ordered = wset.sorted_elements(ordering.key)
        kept = prefix_of_sorted([(e, wset.weight(e)) for e in ordered], beta)
        if not kept:
            continue
        encoded = encode_set(wset)  # one shared str object per group
        rows.extend((a, b, norm, encoded) for b in kept)
    return Relation(_INLINE_SCHEMA, rows, name=f"inline-prefix({prepared.name})")


def inline_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> Relation:
    """Execute the Figure 9 plan; returns a :data:`RESULT_SCHEMA` relation.

    Before invoking the overlap UDF on a candidate, a crc32 bit-signature
    bound (weight-aware via the left set's max element weight) prunes
    pairs that cannot reach the pair threshold; *verify_config* tunes the
    signature width (None = auto, 0 = off).
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "inline"

    with m.phase(PHASE_PREP):
        m.prepared_rows += left.num_elements + right.num_elements
        if ordering is None:
            ordering = frequency_ordering(left, right)

    with m.phase(PHASE_PREFIX):
        pr = _inline_prefix_relation(left, predicate, ordering, side="left")
        ps = _inline_prefix_relation(right, predicate, ordering, side="right")
        m.prefix_rows += len(pr) + len(ps)

    with m.phase(PHASE_SSJOIN):
        matched = hash_join(
            pr.rename({"a": "a_r", "b": "b", "norm": "norm_r", "set": "set_r"}),
            ps.rename({"a": "a_s", "b": "b_s", "norm": "norm_s", "set": "set_s"}),
            keys=[("b", "b_s")],
        )
        m.equijoin_rows += len(matched)
        candidates = matched.project(["a_r", "norm_r", "set_r", "a_s", "norm_s", "set_s"]).distinct()
        m.candidate_pairs += len(candidates)

    with m.phase(PHASE_FILTER):
        cache: Dict[int, Dict[str, float]] = {}
        pos = candidates.schema.positions(
            ["a_r", "norm_r", "set_r", "a_s", "norm_s", "set_s"]
        )
        cfg = verify_config if verify_config is not None else VerifyConfig()
        nbits = cfg.signature_bits
        if nbits is None:
            # No dictionary here; total element count over-states the
            # distinct universe, which only widens (and the clamp caps)
            # the signature.  Typical norm: mean of the predicate norms.
            n_groups = len(left.norms) + len(right.norms)
            mean_norm = (
                (sum(left.norms.values()) + sum(right.norms.values())) / n_groups
                if n_groups
                else 0.0
            )
            nbits = choose_signature_bits(
                left.num_elements + right.num_elements,
                predicate_strictness(predicate, mean_norm),
            )
        sig_cache: Dict[int, Tuple[int, int, float]] = {}
        threshold = predicate.threshold
        n_cand = bitmap_pruned = merges = 0
        out_rows: List[Tuple] = []
        for row in candidates.rows:
            a_r, norm_r, set_r, a_s, norm_s, set_s = (row[p] for p in pos)
            if nbits:
                n_cand += 1
                sl, cl, maxw = _signature_stats(set_r, sig_cache, nbits, cache)
                sr, cr, _ = _signature_stats(set_s, sig_cache, nbits, cache)
                bound = (cl + cr - (sl ^ sr).bit_count()) * 0.5 * maxw
                if bound < threshold(norm_r, norm_s) - PRUNE_MARGIN:
                    bitmap_pruned += 1
                    continue
                merges += 1
            overlap = encoded_overlap(set_r, set_s, cache)
            if predicate.satisfied(overlap, norm_r, norm_s):
                out_rows.append((a_r, a_s, overlap, norm_r, norm_s))
        m.verify_candidates += n_cand
        m.verify_bitmap_pruned += bitmap_pruned
        m.verify_merges_run += merges
        result = Relation(RESULT_SCHEMA, out_rows)
        m.output_pairs += len(result)
    return result
