"""Prefix-filtered SSJoin with inlined set representation (paper Figure 9).

The plain prefix-filter plan must join candidates back with both base
relations just to regroup each group's elements. The inline variant
"carries the groups along with each R.A and S.A value that pass through the
prefix-filter": every prefix row also holds the group's full element set,
encoded as a single string (the paper's "concatenating all elements
together separating them by a special marker"). Verification then needs no
base-relation joins — only a small overlap UDF over two encoded sets.

Encoding format: entries separated by ``US`` (0x1F), each entry
``repr(element) GS(0x1D) weight``. ``repr`` is injective on the element
types used by the library (strings, ints and tuples thereof), and parsing
memoizes per encoded string since each group's encoding is a single shared
str object.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.basic import RESULT_SCHEMA
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREFIX,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prefixes import prefix_of_sorted
from repro.core.prepared import PreparedRelation
from repro.relational.joins import hash_join
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.tokenize.sets import WeightedSet

__all__ = ["encode_set", "encoded_overlap", "inline_ssjoin"]

_ENTRY_SEP = "\x1f"
_FIELD_SEP = "\x1d"


def encode_set(wset: WeightedSet) -> str:
    """Serialize a weighted set into the inline string representation."""
    return _ENTRY_SEP.join(
        f"{e!r}{_FIELD_SEP}{w!r}" for e, w in sorted(wset.items(), key=lambda kv: repr(kv[0]))
    )


def _parse(encoded: str, cache: Dict[int, Dict[str, float]]) -> Dict[str, float]:
    """Parse an encoded set into {element_repr: weight}, memoized by id.

    Keys stay as their repr strings: overlap only needs key equality, and
    repr equality coincides with element equality for library element types.
    """
    key = id(encoded)
    hit = cache.get(key)
    if hit is not None:
        return hit
    parsed: Dict[str, float] = {}
    if encoded:
        for entry in encoded.split(_ENTRY_SEP):
            erepr, _, wrepr = entry.rpartition(_FIELD_SEP)
            parsed[erepr] = float(wrepr)
    cache[key] = parsed
    return parsed


def encoded_overlap(
    left: str, right: str, cache: Optional[Dict[int, Dict[str, float]]] = None
) -> float:
    """The inline overlap UDF: ``wt(decode(left) ∩ decode(right))``.

    Intersection weight is taken from the *left* set's weights, matching
    the other implementations (which sum ``R.w``); the two only differ when
    a join deliberately weights its sides asymmetrically, as the GES
    expansion does.
    """
    c = cache if cache is not None else {}
    lw = _parse(left, c)
    rw = _parse(right, c)
    if len(rw) < len(lw):
        return sum(lw[e] for e in rw if e in lw)
    return sum(w for e, w in lw.items() if e in rw)


_INLINE_SCHEMA = Schema(["a", "b", "norm", "set"])


def _inline_prefix_relation(
    prepared: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: ElementOrdering,
    side: str,
) -> Relation:
    """Prefix rows that also carry the group's encoded full set."""
    bound_fn = (
        predicate.left_filter_threshold if side == "left" else predicate.right_filter_threshold
    )
    rows: List[Tuple] = []
    for a, wset in prepared.groups.items():
        norm = prepared.norms[a]
        # Widen beta by the shared overlap epsilon so boundary pairs that
        # satisfied() admits are never pruned (Lemma 1 with alpha - eps).
        beta = wset.norm - bound_fn(norm) + OVERLAP_EPSILON
        ordered = wset.sorted_elements(ordering.key)
        kept = prefix_of_sorted([(e, wset.weight(e)) for e in ordered], beta)
        if not kept:
            continue
        encoded = encode_set(wset)  # one shared str object per group
        rows.extend((a, b, norm, encoded) for b in kept)
    return Relation(_INLINE_SCHEMA, rows, name=f"inline-prefix({prepared.name})")


def inline_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
) -> Relation:
    """Execute the Figure 9 plan; returns a :data:`RESULT_SCHEMA` relation."""
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "inline"

    with m.phase(PHASE_PREP):
        m.prepared_rows += left.num_elements + right.num_elements
        if ordering is None:
            ordering = frequency_ordering(left, right)

    with m.phase(PHASE_PREFIX):
        pr = _inline_prefix_relation(left, predicate, ordering, side="left")
        ps = _inline_prefix_relation(right, predicate, ordering, side="right")
        m.prefix_rows += len(pr) + len(ps)

    with m.phase(PHASE_SSJOIN):
        matched = hash_join(
            pr.rename({"a": "a_r", "b": "b", "norm": "norm_r", "set": "set_r"}),
            ps.rename({"a": "a_s", "b": "b_s", "norm": "norm_s", "set": "set_s"}),
            keys=[("b", "b_s")],
        )
        m.equijoin_rows += len(matched)
        candidates = matched.project(["a_r", "norm_r", "set_r", "a_s", "norm_s", "set_s"]).distinct()
        m.candidate_pairs += len(candidates)

    with m.phase(PHASE_FILTER):
        cache: Dict[int, Dict[str, float]] = {}
        pos = candidates.schema.positions(
            ["a_r", "norm_r", "set_r", "a_s", "norm_s", "set_s"]
        )
        out_rows: List[Tuple] = []
        for row in candidates.rows:
            a_r, norm_r, set_r, a_s, norm_s, set_s = (row[p] for p in pos)
            overlap = encoded_overlap(set_r, set_s, cache)
            if predicate.satisfied(overlap, norm_r, norm_s):
                out_rows.append((a_r, a_s, overlap, norm_r, norm_s))
        result = Relation(RESULT_SCHEMA, out_rows)
        m.output_pairs += len(result)
    return result
