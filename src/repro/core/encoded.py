"""Dictionary-encoded relations and the encoding cache.

:class:`EncodedPreparedRelation` is the columnar twin of
:class:`~repro.core.prepared.PreparedRelation`: per group, a sorted
``array('q')`` of dense token ids plus a parallel ``array('d')`` of
weights, with group norms in flat arrays. Because ids are assigned in the
global ordering ``O`` (see :mod:`repro.core.dictionary`), a group's
β-prefix is a leading slice of its id array and overlap between two groups
is a merge-intersection of two sorted int arrays — no tuple hashing, no
key-function sorts.

Encoding costs one sort per group, so :class:`EncodingCache` memoizes the
``(TokenDictionary, encoded left, encoded right)`` triple per input pair.
Entries are keyed by a content *fingerprint* of each side (which reflects
the tokenizer and weight table through the elements and weights
themselves) and verified by exact group/norm comparison on every hit, so
repeated benchmark sweeps and the optimizer's costing probes re-encode
nothing even though each sweep call rebuilds fresh
:class:`PreparedRelation` objects from the same strings.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Any, List, Optional, Tuple

from repro.core.dictionary import TokenDictionary
from repro.core.metrics import ExecutionMetrics
from repro.core.ordering import ElementOrdering
from repro.core.prepared import PreparedRelation

__all__ = [
    "EncodedPreparedRelation",
    "EncodingCache",
    "encode_pair",
    "encoding_cached",
    "encoding_tier",
    "global_encoding_cache",
]


class EncodedPreparedRelation:
    """Columnar, integer-native view of a prepared relation.

    Attributes
    ----------
    keys:
        Group keys, in the prepared relation's group order; positions in
        this list index every other per-group structure.
    ids / weights:
        Per group, parallel arrays sorted ascending by id (= the ordering
        ``O``): ``ids[g][i]`` is the i-th element of group ``g`` under
        ``O`` and ``weights[g][i]`` its weight.
    norms:
        The predicate norms (``prepared.norms`` — may be string length,
        cardinality, or set weight).
    set_norms:
        ``wt(Set(a))`` per group — the β computation needs the set's own
        total weight regardless of which norm the predicate uses.
    """

    __slots__ = (
        "prepared",
        "dictionary",
        "keys",
        "ids",
        "weights",
        "norms",
        "set_norms",
        "prefix_cache",
        "verify_cache",
        "storage_ref",
        "_num_elements",
    )

    def __init__(
        self,
        prepared: PreparedRelation,
        dictionary: TokenDictionary,
        lenient: bool = False,
    ) -> None:
        self.prepared = prepared
        self.dictionary = dictionary
        # β-prefix lengths are a pure function of (this encoding, predicate
        # bound); group_prefix_lengths memoizes them here so repeated
        # executes against one encoding skip the per-group recomputation.
        self.prefix_cache: dict = {}
        # Verification-engine columnar state (bit signatures per width,
        # cumulative weights, max weights) — see repro.core.verify.
        # Signature entries record the dictionary size they were packed
        # under so a grown dictionary invalidates them.
        self.verify_cache: dict = {}
        # When this encoding was decoded from (or persisted to) a page
        # file, the file's path — lets the parallel executor ship a path
        # instead of pickled columns, and the optimizer charge page I/O.
        self.storage_ref: Optional[str] = None
        self.keys = list(prepared.groups)
        self._num_elements: Optional[int] = None
        self.ids: List[array] = []
        self.weights: List[array] = []
        self.norms = array("d")
        self.set_norms = array("d")
        encode = dictionary.encode_sorted_lenient if lenient else dictionary.encode_sorted
        for a, wset in prepared.groups.items():
            ids, weights = encode(wset)
            self.ids.append(ids)
            self.weights.append(weights)
            self.norms.append(prepared.norms[a])
            self.set_norms.append(wset.norm)

    @classmethod
    def from_columns(
        cls,
        prepared: PreparedRelation,
        dictionary: TokenDictionary,
        ids: List[array],
        weights: List[array],
        norms: array,
        set_norms: array,
        storage_ref: Optional[str] = None,
    ) -> "EncodedPreparedRelation":
        """Adopt pre-built columnar arrays without re-encoding.

        This is the storage layer's decode path: the arrays come straight
        out of page segments (already sorted under the dictionary's
        ordering ``O``), so constructing the relation costs zero per-group
        sorts. Callers are responsible for array/dictionary coherence —
        the SSJ1xx verifier and the SSJ114 generation stamp audit it.
        """
        self = cls.__new__(cls)
        self.prepared = prepared
        self.dictionary = dictionary
        self.prefix_cache = {}
        self.verify_cache = {}
        self.storage_ref = storage_ref
        self.keys = list(prepared.groups)
        self._num_elements = None
        self.ids = list(ids)
        self.weights = list(weights)
        self.norms = norms
        self.set_norms = set_norms
        return self

    @property
    def num_groups(self) -> int:
        return len(self.keys)

    @property
    def num_elements(self) -> int:
        # Memoized: columns are fixed after construction and the parallel
        # executor reads this on every dispatch.
        if self._num_elements is None:
            self._num_elements = sum(len(ids) for ids in self.ids)
        return self._num_elements

    def __repr__(self) -> str:
        return (
            f"<EncodedPreparedRelation {self.prepared.name!r} "
            f"groups={self.num_groups} elements={self.num_elements}>"
        )


class EncodingCache:
    """Tiered LRU memo of encodings per (left fp, right fp, ordering).

    Fingerprints are content hashes (see
    :meth:`PreparedRelation.fingerprint`); because hashes can collide, a
    hit is only honored after exact comparison of the cached groups and
    norms against the incoming relations — an O(elements) dict compare,
    orders of magnitude cheaper than re-encoding's per-group sorts.

    The memory tier is bounded: at most *capacity* entries, evicted
    least-recently-used (``evictions`` counts them). An optional
    **persistent tier** (attach via :meth:`attach_persistent` — any
    object speaking ``load/save/has``, normally
    :class:`repro.storage.store.EncodingStore`) turns the lookup into
    memory → disk → rebuild: a memory miss probes the page files, a disk
    hit decodes the columnar arrays (no re-encode, no re-sort) and is
    promoted into the memory tier. Disk lookups only apply to the
    default (joint-frequency) ordering — a custom
    :class:`ElementOrdering` is keyed by object identity, which does not
    survive a process boundary.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        #: persistent tier (duck-typed; see :meth:`attach_persistent`)
        self.persistent: Optional[Any] = None
        #: write encodings built on a full miss back to the persistent tier
        self.auto_persist = False

    def attach_persistent(self, store: Any, auto_persist: bool = False) -> None:
        """Attach a disk tier. With *auto_persist*, encodings built on a
        full miss are written back so the next process warm-starts."""
        self.persistent = store
        self.auto_persist = auto_persist

    def encode_pair(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        ordering: Optional[ElementOrdering] = None,
        metrics: Optional[ExecutionMetrics] = None,
    ) -> Tuple[EncodedPreparedRelation, EncodedPreparedRelation, TokenDictionary]:
        """Encode both sides of a join, reusing a cached encoding if the
        inputs are content-identical to a previous pair."""
        key = (left.fingerprint(), right.fingerprint(),
               None if ordering is None else id(ordering))
        entry = self._entries.get(key)
        if entry is not None:
            enc_left, enc_right, dictionary = entry
            if self._matches(enc_left, left) and self._matches(enc_right, right):
                self._entries.move_to_end(key)
                self.hits += 1
                if metrics is not None:
                    metrics.encode_cache_hits += 1
                return enc_left, enc_right, dictionary

        if self.persistent is not None and ordering is None:
            loaded = self.persistent.load(left, right)
            if loaded is not None:
                self.disk_hits += 1
                if metrics is not None:
                    metrics.encode_cache_hits += 1
                self._insert(key, loaded)
                return loaded

        self.misses += 1
        if metrics is not None:
            metrics.encode_cache_misses += 1
        dictionary = TokenDictionary.from_relations(left, right, ordering=ordering)
        enc_left = EncodedPreparedRelation(left, dictionary)
        enc_right = (
            enc_left
            if right is left
            else EncodedPreparedRelation(right, dictionary)
        )
        if self.persistent is not None and self.auto_persist and ordering is None:
            self.persistent.save(left, right, enc_left, enc_right, dictionary)
        self._insert(key, (enc_left, enc_right, dictionary))
        return enc_left, enc_right, dictionary

    def _insert(self, key: Tuple, entry: Tuple) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def seed(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        enc_left: EncodedPreparedRelation,
        enc_right: EncodedPreparedRelation,
        dictionary: TokenDictionary,
        ordering: Optional[ElementOrdering] = None,
    ) -> None:
        """Pre-populate the memory tier with an externally-built encoding
        (e.g. one decoded from an attached table's page file)."""
        key = (left.fingerprint(), right.fingerprint(),
               None if ordering is None else id(ordering))
        self._insert(key, (enc_left, enc_right, dictionary))

    def contains(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        ordering: Optional[ElementOrdering] = None,
    ) -> bool:
        """Whether a verified encoding for this pair is in the memory tier
        (used by the optimizer to zero the encode cost)."""
        key = (left.fingerprint(), right.fingerprint(),
               None if ordering is None else id(ordering))
        entry = self._entries.get(key)
        if entry is None:
            return False
        enc_left, enc_right, _ = entry
        return self._matches(enc_left, left) and self._matches(enc_right, right)

    def tier(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        ordering: Optional[ElementOrdering] = None,
    ) -> Optional[str]:
        """Which tier would serve this pair: ``"memory"``, ``"disk"``, or
        ``None`` (full rebuild). The optimizer charges zero encode cost
        for memory, page I/O for disk, per-element encode otherwise."""
        if self.contains(left, right, ordering):
            return "memory"
        if (
            self.persistent is not None
            and ordering is None
            and self.persistent.has(left, right)
        ):
            return "disk"
        return None

    def stats(self) -> dict:
        """Counters for ``ExecutionMetrics.extra`` and bench telemetry."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "persistent": self.persistent is not None,
        }

    @staticmethod
    def _matches(encoded: EncodedPreparedRelation, prepared: PreparedRelation) -> bool:
        cached = encoded.prepared
        if cached is prepared:
            return True
        # Content-identity check for cache reuse: exact equality intended.
        return cached.groups == prepared.groups and cached.norms == prepared.norms  # repro: ignore[RL203]

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide cache shared by the facade, the optimizer, and callers
#: that invoke the encoded plans directly.
_GLOBAL_CACHE = EncodingCache()


def global_encoding_cache() -> EncodingCache:
    return _GLOBAL_CACHE


def encode_pair(
    left: PreparedRelation,
    right: PreparedRelation,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    cache: Optional[EncodingCache] = None,
) -> Tuple[EncodedPreparedRelation, EncodedPreparedRelation, TokenDictionary]:
    """Module-level shorthand over the global :class:`EncodingCache`."""
    return (_GLOBAL_CACHE if cache is None else cache).encode_pair(left, right, ordering, metrics)


def encoding_cached(
    left: PreparedRelation,
    right: PreparedRelation,
    ordering: Optional[ElementOrdering] = None,
    cache: Optional[EncodingCache] = None,
) -> bool:
    """Whether :func:`encode_pair` would hit the memory tier for this pair."""
    return (_GLOBAL_CACHE if cache is None else cache).contains(left, right, ordering)


def encoding_tier(
    left: PreparedRelation,
    right: PreparedRelation,
    ordering: Optional[ElementOrdering] = None,
    cache: Optional[EncodingCache] = None,
) -> Optional[str]:
    """Which tier :func:`encode_pair` would serve this pair from
    (``"memory"`` / ``"disk"`` / ``None``), against the given or global
    cache — the optimizer's encode-cost discriminator."""
    return (_GLOBAL_CACHE if cache is None else cache).tier(left, right, ordering)
