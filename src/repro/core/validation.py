"""Result validation: brute-force checking of SSJoin outputs.

When integrating a new predicate, ordering, or physical plan, the first
question is "is the output exactly right?". :func:`verify_result` answers
it by comparing a result relation against the brute-force evaluation of
the predicate over all group pairs — the same oracle the test suite uses,
packaged as a public debugging tool. :func:`explain_pair` zooms into one
pair and reports every quantity involved in its accept/reject decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.ordering import ElementOrdering
from repro.core.predicate import OverlapPredicate
from repro.core.prefixes import prefix_elements
from repro.core.prepared import PreparedRelation
from repro.relational.relation import Relation

__all__ = ["VerificationReport", "verify_result", "explain_pair"]


@dataclass  # repro: ignore[RL204] -- mutable by design: findings accumulate during verification
class VerificationReport:
    """Outcome of :func:`verify_result`."""

    missing: Set[Tuple[Any, Any]] = field(default_factory=set)
    spurious: Set[Tuple[Any, Any]] = field(default_factory=set)
    wrong_overlap: Dict[Tuple[Any, Any], Tuple[float, float]] = field(
        default_factory=dict
    )  # pair -> (reported, true)
    expected_pairs: int = 0

    @property
    def ok(self) -> bool:
        return not (self.missing or self.spurious or self.wrong_overlap)

    def summary(self) -> str:
        if self.ok:
            return f"OK: {self.expected_pairs} pairs, all present and exact"
        parts = []
        if self.missing:
            parts.append(f"{len(self.missing)} missing (false dismissals!)")
        if self.spurious:
            parts.append(f"{len(self.spurious)} spurious")
        if self.wrong_overlap:
            parts.append(f"{len(self.wrong_overlap)} wrong overlaps")
        return "FAIL: " + ", ".join(parts)


def verify_result(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    result: Relation,
    tolerance: float = 1e-6,
) -> VerificationReport:
    """Check a result relation against brute-force evaluation.

    Only pairs with positive overlap are expected (the operator's
    equi-join semantics); reported overlap values are checked against the
    exact set intersection within *tolerance*.
    """
    report = VerificationReport()

    expected: Dict[Tuple[Any, Any], float] = {}
    for a_r, s1 in left.groups.items():
        norm_r = left.norm(a_r)
        for a_s, s2 in right.groups.items():
            overlap = s1.overlap(s2)
            if overlap <= 0:
                continue
            if predicate.satisfied(overlap, norm_r, right.norm(a_s)):
                expected[(a_r, a_s)] = overlap
    report.expected_pairs = len(expected)

    ar = result.schema.position("a_r")
    as_ = result.schema.position("a_s")
    ov = result.schema.position("overlap")
    got: Dict[Tuple[Any, Any], float] = {
        (row[ar], row[as_]): row[ov] for row in result.rows
    }

    report.missing = set(expected) - set(got)
    report.spurious = set(got) - set(expected)
    for pair in set(got) & set(expected):
        if abs(got[pair] - expected[pair]) > tolerance:
            report.wrong_overlap[pair] = (got[pair], expected[pair])
    return report


def explain_pair(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    a_r: Any,
    a_s: Any,
    ordering: Optional[ElementOrdering] = None,
) -> str:
    """Human-readable account of one pair's accept/reject decision.

    Reports norms, exact overlap, the effective threshold, each conjunct's
    value, and — when an ordering is supplied — both prefixes and whether
    they intersect (i.e. whether the prefix plans would even consider the
    pair as a candidate).
    """
    s1 = left.group(a_r)
    s2 = right.group(a_s)
    norm_r, norm_s = left.norm(a_r), right.norm(a_s)
    overlap = s1.overlap(s2)
    threshold = predicate.threshold(norm_r, norm_s)
    verdict = "ACCEPT" if predicate.satisfied(overlap, norm_r, norm_s) else "REJECT"

    lines = [
        f"pair: {a_r!r} vs {a_s!r}",
        f"  norms: left={norm_r:g} right={norm_s:g}",
        f"  set sizes: left={len(s1)} right={len(s2)}",
        f"  overlap: {overlap:g}  threshold: {threshold:g}  -> {verdict}",
    ]
    for bound in predicate.bounds:
        lines.append(f"  conjunct {bound!r}: e_i = {bound.value(norm_r, norm_s):g}")
    if overlap == 0:
        lines.append("  note: zero overlap — no equi-join plan can emit this pair")
    if ordering is not None:
        beta_l = s1.norm - predicate.left_filter_threshold(norm_r)
        beta_r = s2.norm - predicate.right_filter_threshold(norm_s)
        p1 = set(prefix_elements(s1, ordering, beta_l))
        p2 = set(prefix_elements(s2, ordering, beta_r))
        lines.append(
            f"  prefixes: left beta={beta_l:g} ({len(p1)} elems), "
            f"right beta={beta_r:g} ({len(p2)} elems), "
            f"intersect={'yes' if p1 & p2 else 'NO'}"
        )
    return "\n".join(lines)
