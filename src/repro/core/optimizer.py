"""Cost-based choice among SSJoin implementations.

Section 5 observes "there is not always a clear winner between the basic
and prefix-filtered implementations", which "motivates the requirement for
a cost-based decision", and Section 7 states the intent to integrate SSJoin
with a query optimizer. This module supplies that optimizer.

The model is deliberately simple and histogram-exact where it can be:

* The **basic** plan's dominant cost is the element equi-join, whose output
  size is computed *exactly* from the element frequency histograms
  (``Σ_t f_R(t)·f_S(t)``), plus grouping that same row count.
* The **prefix** plans' costs are the prefix extraction (sorting each
  group), the far smaller equi-join of prefixes (again histogram-exact,
  over the *actual* extracted prefixes), and a verification term — regroup
  joins proportional to candidate-pair set sizes for the plain prefix plan,
  an encoded-set overlap per candidate for the inline plan.
* The **dictionary-encoded** plans (``encoded-prefix``, ``encoded-probe``)
  share the prefix/probe shapes but with integer-native per-row constants,
  plus a one-time encode term that drops to zero when the encoding cache
  already holds this input pair — which is how repeat workloads (sweeps,
  re-planning) automatically route to the fast path.

Because prefixes are cheap to extract relative to any join, the optimizer
*actually extracts them* and prices the real filtered relations instead of
guessing — the same trick a DBMS plays with sampled statistics, with the
sample rate turned up to 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.encoded import encoding_tier
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prefix_filter import prefix_filter_relation
from repro.core.prepared import PreparedRelation
from repro.core.verify import (
    choose_signature_bits,
    estimated_prune_fraction,
    predicate_strictness,
)
from repro.errors import OptimizerError
from repro.relational.stats import ColumnStats, estimate_equijoin_size

if TYPE_CHECKING:  # the optimizer only touches Relation in estimates
    from repro.relational.relation import Relation

__all__ = [
    "CostEstimate",
    "CostModel",
    "calibrate_cost_model",
    "choose_implementation",
]

IMPLEMENTATIONS = (
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
)


@dataclass(frozen=True)
class CostEstimate:
    """Estimated cost of one implementation, with its drivers.

    ``cost`` is in abstract row-operation units — only comparisons between
    estimates are meaningful, mirroring the paper's unitless "time units".
    """

    implementation: str
    cost: float
    details: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        drivers = ", ".join(f"{k}={v:.0f}" for k, v in self.details.items())
        return f"CostEstimate({self.implementation}, cost={self.cost:.0f}, {drivers})"


class CostModel:
    """Per-row cost constants, tunable if a deployment calibrates them."""

    #: cost of producing one equi-join output row (hash probe + emit)
    JOIN_ROW = 1.0
    #: cost of hashing one input row into a join or group table
    BUILD_ROW = 0.6
    #: cost of aggregating one row in GROUP BY
    GROUP_ROW = 0.8
    #: cost of sorting one element during prefix extraction
    PREFIX_ELEMENT = 0.4
    #: cost of one regroup-join row during prefix verification
    VERIFY_ROW = 1.2
    #: cost of one encoded-set overlap evaluation per candidate element
    INLINE_ELEMENT = 0.5
    #: fixed per-candidate overhead of the inline UDF call
    INLINE_PAIR = 2.0
    #: discounted cost of a suffix-completion posting visit in the
    #: index-probe plan (only already-discovered candidates are updated)
    PROBE_COMPLETION = 0.3
    #: cost of interning + array-encoding one element into the dictionary
    #: layer (paid only on an encoding-cache miss)
    ENCODE_ELEMENT = 0.15
    #: cost of one merge-intersection step during encoded verification —
    #: an int compare on sorted arrays, far below VERIFY_ROW's regroup-join
    #: row cost
    MERGE_ELEMENT = 0.15
    #: cost of one int-keyed index/posting visit in the encoded plans
    #: (discovery probes and index builds)
    ENCODED_POSTING = 0.35
    #: cost of one verification-engine bound evaluation per candidate
    #: (XOR-popcount plus the positional check — paid before any merge)
    VERIFY_BOUND = 0.4
    #: cost of packing one element into a bit signature (paid alongside
    #: the encode term, i.e. only on an encoding-cache miss)
    SIGNATURE_ELEMENT = 0.05
    #: cost of reading one 4 KiB page from a persisted encoding (mmap
    #: fault + checksum + array adoption) — charged instead of
    #: ENCODE_ELEMENT when the encoding cache's disk tier holds the pair
    PAGE_IO = 8.0
    #: estimated on-disk bytes per encoded element (one i64 id + one f64
    #: weight), used to convert element counts into page counts
    BYTES_PER_ELEMENT = 16
    #: fixed cost of forking + warming up one worker process
    PARALLEL_SPAWN = 2500.0
    #: per-shard submit/pickle/result overhead of one pool task
    PARALLEL_TASK = 40.0
    #: per-element cost of shipping the payload to one worker
    #: (pickle + unpickle of the columnar arrays or prepared groups)
    PARALLEL_SHIP = 0.08

    def estimate_all(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        predicate: OverlapPredicate,
        ordering: Optional[ElementOrdering] = None,
    ) -> List[CostEstimate]:
        """Cost every implementation; cheapest first."""
        if ordering is None:
            ordering = frequency_ordering(left, right)

        lstats = _element_stats(left)
        rstats = _element_stats(right)
        join_rows = float(estimate_equijoin_size(lstats, rstats))
        n_left = left.num_elements
        n_right = right.num_elements

        basic = CostEstimate(
            "basic",
            self.BUILD_ROW * (n_left + n_right)
            + self.JOIN_ROW * join_rows
            + self.GROUP_ROW * join_rows,
            {"equijoin_rows": join_rows, "input_rows": n_left + n_right},
        )

        # Extract the real prefixes and price the filtered join exactly.
        pl = prefix_filter_relation(left, predicate, ordering, side="left")
        pr = prefix_filter_relation(right, predicate, ordering, side="right")
        plstats = ColumnStats.from_relation(pl, "b")
        prstats = ColumnStats.from_relation(pr, "b")
        prefix_join_rows = float(estimate_equijoin_size(plstats, prstats))
        prefix_cost = self.PREFIX_ELEMENT * (n_left + n_right)

        avg_left = n_left / max(left.num_groups, 1)
        avg_right = n_right / max(right.num_groups, 1)
        # Candidate pairs are at most the filtered join rows; use that as
        # the (pessimistic) estimate of pairs needing verification.
        candidates = prefix_join_rows

        prefix = CostEstimate(
            "prefix",
            prefix_cost
            + self.BUILD_ROW * (len(pl) + len(pr))
            + self.JOIN_ROW * prefix_join_rows
            + self.VERIFY_ROW * candidates * (avg_left + avg_right)
            + self.GROUP_ROW * candidates * min(avg_left, avg_right),
            {
                "prefix_rows": float(len(pl) + len(pr)),
                "prefix_join_rows": prefix_join_rows,
                "est_candidates": candidates,
            },
        )

        inline = CostEstimate(
            "inline",
            prefix_cost
            + self.BUILD_ROW * (len(pl) + len(pr))
            + self.JOIN_ROW * prefix_join_rows
            + self.INLINE_PAIR * candidates
            + self.INLINE_ELEMENT * candidates * min(avg_left, avg_right),
            {
                "prefix_rows": float(len(pl) + len(pr)),
                "prefix_join_rows": prefix_join_rows,
                "est_candidates": candidates,
            },
        )

        # Index-probe plan ([13]-style): build an index over the right
        # side, probe left prefixes to discover candidates, complete with
        # suffix elements (touching only already-known candidates, hence
        # the completion discount).
        left_prefix_probe_rows = float(estimate_equijoin_size(plstats, rstats))
        suffix_rows = max(join_rows - left_prefix_probe_rows, 0.0)
        probe = CostEstimate(
            "probe",
            self.BUILD_ROW * n_right
            + self.JOIN_ROW * left_prefix_probe_rows
            + self.PROBE_COMPLETION * suffix_rows,
            {
                "index_postings": float(n_right),
                "probe_rows": left_prefix_probe_rows,
                "completion_rows": suffix_rows,
            },
        )

        # Dictionary-encoded plans: the same shapes as prefix/probe but
        # with int-native per-row costs, plus a one-time encode term that
        # the encoding cache amortizes away on repeat workloads.
        # The facade encodes under the *user's* ordering key (None when it
        # defaulted to joint frequency), so probe both cache keys.
        tier = encoding_tier(left, right, None) or encoding_tier(
            left, right, ordering
        )
        cached = tier == "memory"
        if cached:
            encode_cost = 0.0
        elif tier == "disk":
            # A persisted encoding exists: charge page I/O for decoding
            # the columnar arrays instead of the per-element re-encode.
            from repro.storage.pages import PAGE_SIZE

            est_pages = 1.0 + (n_left + n_right) * self.BYTES_PER_ELEMENT / PAGE_SIZE
            encode_cost = self.PAGE_IO * est_pages
        else:
            encode_cost = self.ENCODE_ELEMENT * (n_left + n_right)

        # Verification-engine factors. The engine bypasses itself (width
        # 0) on loose predicates, in which case every extra term vanishes
        # and the encoded costs reduce to the engine-off model exactly.
        n_groups = left.num_groups + right.num_groups
        mean_norm = (
            (sum(left.norms.values()) + sum(right.norms.values())) / n_groups
            if n_groups
            else 0.0
        )
        strictness = predicate_strictness(predicate, mean_norm)
        verify_bits = choose_signature_bits(
            lstats.num_distinct + rstats.num_distinct, strictness
        )
        prune = estimated_prune_fraction(strictness) if verify_bits else 0.0
        signature_cost = (
            0.0 if cached or not verify_bits else self.SIGNATURE_ELEMENT * (n_left + n_right)
        )

        encoded_prefix = CostEstimate(
            "encoded-prefix",
            encode_cost
            + signature_cost
            + self.ENCODED_POSTING * (len(pl) + len(pr) + prefix_join_rows)
            + (self.VERIFY_BOUND * candidates if verify_bits else 0.0)
            + self.MERGE_ELEMENT * candidates * (1.0 - prune) * (avg_left + avg_right),
            {
                "encode_rows": 0.0 if cached else float(n_left + n_right),
                "prefix_rows": float(len(pl) + len(pr)),
                "prefix_join_rows": prefix_join_rows,
                "est_candidates": candidates,
                "est_prune_fraction": prune,
            },
        )
        encoded_probe = CostEstimate(
            "encoded-probe",
            encode_cost
            + signature_cost
            + self.ENCODED_POSTING * (n_right + left_prefix_probe_rows)
            + (self.VERIFY_BOUND * left_prefix_probe_rows if verify_bits else 0.0)
            + self.PROBE_COMPLETION * 0.5 * suffix_rows * (1.0 - prune),
            {
                "encode_rows": 0.0 if cached else float(n_left + n_right),
                "index_postings": float(n_right),
                "probe_rows": left_prefix_probe_rows,
                "completion_rows": suffix_rows,
                "est_prune_fraction": prune,
            },
        )

        return sorted(
            [basic, prefix, inline, probe, encoded_prefix, encoded_probe],
            key=lambda e: e.cost,
        )

    def parallel_cost(
        self,
        sequential_cost: float,
        workers: int,
        ship_elements: int,
        oversplit: int = 4,
    ) -> float:
        """Modeled cost of running a *sequential_cost* plan on *workers*.

        Per-shard work divides across workers (the shard planners
        balance; oversplit + largest-first dispatch absorbs skew), while
        three overheads are added back: process spawn per worker, task
        dispatch per shard, and payload shipping — *ship_elements* set
        elements pickled to every worker.  ``workers <= 1`` is exactly
        the sequential cost, which is what makes ``workers="auto"``'s
        crossover safe: below it the scheduler resolves to 1 and the
        executor never spawns.
        """
        if workers <= 1:
            return sequential_cost
        n_shards = workers * max(oversplit, 1)
        return (
            sequential_cost / workers
            + self.PARALLEL_SPAWN * workers
            + self.PARALLEL_TASK * n_shards
            + self.PARALLEL_SHIP * ship_elements * workers
        )


def calibrate_cost_model(
    sample_left: PreparedRelation,
    sample_right: PreparedRelation,
    predicate: OverlapPredicate,
    repeats: int = 2,
) -> CostModel:
    """Fit the cost constants to this machine by timing a sample workload.

    Runs each implementation on the sample, then scales the model's
    per-row constants so predicted costs are proportional to the measured
    times (least-squares on the ratio, one scale factor per plan family).
    The *relative* constants within a plan keep their defaults; only the
    plan-level scale is fit, which is what the chooser's comparisons need.
    Returns a new :class:`CostModel` subclass instance; the default model
    is untouched.
    """
    import time as _time

    from repro.core.ssjoin import SSJoin

    base = CostModel()
    estimates = {e.implementation: e.cost for e in base.estimate_all(
        sample_left, sample_right, predicate
    )}
    measured: Dict[str, float] = {}
    op = SSJoin(sample_left, sample_right, predicate)
    for impl in IMPLEMENTATIONS:
        best = float("inf")
        for _ in range(max(repeats, 1)):
            start = _time.perf_counter()
            op.execute(impl)
            best = min(best, _time.perf_counter() - start)
        measured[impl] = best

    # One scale per implementation family: seconds per abstract cost unit.
    scales = {
        impl: measured[impl] / estimates[impl] if estimates[impl] else 1.0
        for impl in IMPLEMENTATIONS
    }

    class CalibratedModel(CostModel):
        """Cost model rescaled to the measured machine profile."""

        _SCALES = scales

        def estimate_all(
            self,
            left: PreparedRelation,
            right: PreparedRelation,
            predicate: OverlapPredicate,
            ordering: Optional[ElementOrdering] = None,
        ) -> List[CostEstimate]:
            raw = CostModel.estimate_all(self, left, right, predicate, ordering)
            rescaled = [
                CostEstimate(
                    e.implementation,
                    e.cost * self._SCALES.get(e.implementation, 1.0),
                    e.details,
                )
                for e in raw
            ]
            return sorted(rescaled, key=lambda e: e.cost)

    return CalibratedModel()


def choose_implementation(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    model: Optional[CostModel] = None,
) -> CostEstimate:
    """Pick the cheapest implementation under the cost model."""
    estimates = (model or CostModel()).estimate_all(left, right, predicate, ordering)
    if not estimates:
        raise OptimizerError("no implementations could be costed")
    return estimates[0]


def _element_stats(prepared: PreparedRelation) -> ColumnStats:
    """Element (``b`` column) statistics of a prepared relation.

    Built from the group dicts directly — equivalent to
    ``ColumnStats.from_relation(prepared.relation, "b")`` without forcing
    the First-Normal-Form materialization.
    """
    freq = prepared.element_frequencies()
    return ColumnStats(
        num_rows=prepared.num_elements, num_distinct=len(freq), frequencies=freq
    )
