"""Partitioned SSJoin — different physical plans for different partitions.

Section 4.3.2 raises exactly this optimization question: "whether we should
proceed by partitioning the relations and using different approaches for
different partitions". This module answers it: the left relation's groups
are partitioned (by default into small-set and large-set halves, the axis
along which the basic vs prefix trade-off flips), each partition is joined
against the right relation with the implementation the cost model picks
*for that partition*, and the results are unioned.

Completeness is immediate: the partitions cover the left groups, every
⟨partition, right⟩ sub-join is complete for its pairs, and a pair belongs
to exactly one sub-join — so the union equals the unpartitioned result
(asserted by the property tests).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.basic import RESULT_SCHEMA
from repro.core.metrics import ExecutionMetrics
from repro.core.optimizer import CostModel, choose_implementation
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.errors import PlanError
from repro.relational.relation import Relation

__all__ = ["partition_by_set_size", "partitioned_ssjoin", "PartitionedResult"]

PartitionFn = Callable[[PreparedRelation], Dict[str, PreparedRelation]]


def partition_by_set_size(
    prepared: PreparedRelation, boundary: Optional[int] = None
) -> Dict[str, PreparedRelation]:
    """Split groups into ``small`` / ``large`` by element count.

    *boundary* defaults to the median set size, splitting the relation
    roughly in half. Either partition may be empty.
    """
    sizes = sorted(len(s) for s in prepared.groups.values())
    if not sizes:
        # Both halves must be fresh, properly-named empties: returning the
        # input aliased as "small" would let downstream per-partition
        # metrics and shard planners double-count one shared object.
        return {
            "small": PreparedRelation.from_sets({}, name=f"{prepared.name}[small]"),
            "large": PreparedRelation.from_sets({}, name=f"{prepared.name}[large]"),
        }
    if boundary is None:
        boundary = sizes[len(sizes) // 2]
    small = {a: s for a, s in prepared.groups.items() if len(s) <= boundary}
    large = {a: s for a, s in prepared.groups.items() if len(s) > boundary}
    return {
        "small": PreparedRelation.from_sets(
            small, {a: prepared.norms[a] for a in small}, name=f"{prepared.name}[small]"
        ),
        "large": PreparedRelation.from_sets(
            large, {a: prepared.norms[a] for a in large}, name=f"{prepared.name}[large]"
        ),
    }


class PartitionedResult:
    """Union of per-partition SSJoin results, with per-partition telemetry."""

    def __init__(
        self,
        pairs: Relation,
        choices: Dict[str, str],
        metrics: ExecutionMetrics,
    ) -> None:
        self.pairs = pairs
        self.choices = choices
        self.metrics = metrics

    def pair_set(self) -> set:
        ar = self.pairs.schema.position("a_r")
        as_ = self.pairs.schema.position("a_s")
        return {(row[ar], row[as_]) for row in self.pairs.rows}

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        picks = ", ".join(f"{k}->{v}" for k, v in sorted(self.choices.items()))
        return f"<PartitionedResult pairs={len(self.pairs)} choices=[{picks}]>"


def partitioned_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    partition: PartitionFn = partition_by_set_size,
    ordering: Optional[ElementOrdering] = None,
    cost_model: Optional[CostModel] = None,
    metrics: Optional[ExecutionMetrics] = None,
    workers: Optional[Union[int, str]] = None,
) -> PartitionedResult:
    """Join each left partition against *right* with its own best plan.

    Returns a :class:`PartitionedResult`; ``choices`` records which
    implementation the cost model picked per partition.

    With *workers* set, every partition's sub-join runs through the
    parallel executor as its own shard family (each partition is sharded
    and dispatched independently), and the unioned rows are canonically
    sorted — so partitioning composes with parallelism and the result is
    deterministic for any ⟨partition, workers⟩ combination.
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "partitioned"
    if ordering is None:
        ordering = frequency_ordering(left, right)
    model = cost_model or CostModel()

    partitions = partition(left)
    if not partitions:
        raise PlanError("partition function returned no partitions")

    all_rows: List[Tuple] = []
    choices: Dict[str, str] = {}
    for label, part in partitions.items():
        if not part.num_groups:
            choices[label] = "(empty)"
            continue
        estimate = choose_implementation(part, right, predicate, ordering, model=model)
        choices[label] = estimate.implementation
        sub = SSJoin(part, right, predicate, ordering=ordering).execute(
            estimate.implementation, metrics=m, workers=workers
        )
        all_rows.extend(sub.pairs.rows)

    if workers is not None:
        # Imported here: repro.parallel layers above repro.core.
        from repro.parallel.executor import canonical_sort_key

        all_rows.sort(key=canonical_sort_key)
    return PartitionedResult(
        pairs=Relation(RESULT_SCHEMA, all_rows),
        choices=choices,
        metrics=m,
    )
