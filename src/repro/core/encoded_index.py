"""Encoded index-probe SSJoin: the [13]-style inverted index over int ids.

The tuple-based :mod:`repro.core.index` plan probes a hash index keyed by
``(token, ordinal)`` tuples and sorts every probe group with a Python key
function. Here the index maps dense ``int`` ids to postings arrays and
each probe group's elements already sit in a sorted id array, so

* the discovery pass walks the group's leading β-prefix *slice*,
* the completion pass walks the remaining suffix slice, updating only
  candidates discovered earlier (the OptMerge discount), and
* every index lookup hashes a machine int instead of a tuple.

Identical output to :func:`repro.core.index.index_probe_ssjoin` (same
Lemma 1 argument: the whole right side is indexed, i.e. the right filter
threshold is zero).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.basic import RESULT_SCHEMA
from repro.core.encoded import EncodedPreparedRelation, encode_pair
from repro.core.encoded_prefix import prefix_length
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.verify import VerifyConfig, engine_for_encoded
from repro.relational.batch import ColumnarRelation
from repro.relational.relation import Relation

__all__ = ["EncodedInvertedIndex", "encoded_index_probe_ssjoin"]


class EncodedInvertedIndex:
    """``int id -> [(right group pos, weight)]`` over an encoded relation."""

    __slots__ = ("encoded", "_postings")

    def __init__(self, encoded: EncodedPreparedRelation) -> None:
        self.encoded = encoded
        postings: Dict[int, List[Tuple[int, float]]] = {}
        for g, ids in enumerate(encoded.ids):
            weights = encoded.weights[g]
            for i, t in enumerate(ids):
                postings.setdefault(t, []).append((g, weights[i]))
        self._postings = postings

    def postings(self, token_id: int) -> List[Tuple[int, float]]:
        return self._postings.get(token_id, [])

    @property
    def num_elements(self) -> int:
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        return sum(len(p) for p in self._postings.values())

    def __repr__(self) -> str:
        return (
            f"EncodedInvertedIndex(elements={self.num_elements}, "
            f"postings={self.num_postings})"
        )


def encoded_index_probe_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    index: Optional[EncodedInvertedIndex] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> Relation:
    """Probe-side encoded SSJoin; returns a RESULT_SCHEMA relation.

    Pass a prebuilt *index* (whose encoded relation must share the
    dictionary that will encode *left*) to amortize construction across a
    lookup workload.  Between the discovery and completion passes the
    verification engine drops candidates whose bitmap bound or
    ``partial + left-suffix-weight`` bound cannot reach the pair
    threshold, so the completion pass updates (and the final check
    examines) only survivors; *verify_config* tunes it (None = auto).
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "encoded-probe"

    with m.phase(PHASE_PREP):
        if index is None:
            enc_left, enc_right, _ = encode_pair(left, right, ordering, metrics=m)
            index = EncodedInvertedIndex(enc_right)
        else:
            # Probe against a prebuilt index: the probe side must speak the
            # index's dictionary. Lenient encoding gives elements unknown to
            # that dictionary past-the-end ids, which match no posting.
            enc_left = EncodedPreparedRelation(
                left, index.encoded.dictionary, lenient=True
            )
        m.prepared_rows += enc_left.num_elements + index.num_postings

    enc_right = index.encoded
    # Admitted pairs accumulate as five parallel RESULT_SCHEMA columns —
    # the engine-wide columnar output shape (see encoded_prefix).
    col_ar: List[object] = []
    col_as: List[object] = []
    col_ov: List[float] = []
    col_nr: List[float] = []
    col_ns: List[float] = []
    with m.phase(PHASE_SSJOIN):
        right_keys = enc_right.keys
        right_norms = enc_right.norms
        left_threshold = predicate.left_filter_threshold
        satisfied = predicate.satisfied
        get_postings = index.postings
        # Prefix lengths are computed inline below; the engine only runs
        # prune_partial, which never reads them.
        engine = engine_for_encoded(
            enc_left, enc_right, predicate, (), (), config=verify_config
        )
        for g, lids in enumerate(enc_left.ids):
            lw = enc_left.weights[g]
            norm_r = enc_left.norms[g]
            beta = enc_left.set_norms[g] - left_threshold(norm_r) + OVERLAP_EPSILON
            k = prefix_length(lw, beta)
            if k == 0:
                continue

            # Discovery pass: only prefix ids can introduce candidates.
            overlaps: Dict[int, float] = {}
            for i in range(k):
                postings = get_postings(lids[i])
                if postings:
                    w = lw[i]
                    for h, _w_s in postings:
                        overlaps[h] = overlaps.get(h, 0.0) + w
            if not overlaps:
                continue
            m.candidate_pairs += len(overlaps)
            # equijoin_rows counts discovered candidates (pre-prune), as
            # in the unfiltered plan, where it equals the discovery count.
            m.equijoin_rows += len(overlaps)

            if engine is not None:
                overlaps = engine.prune_partial(g, k, overlaps)
                if not overlaps:
                    continue

            # Completion pass: suffix ids only grow known candidates.
            for i in range(k, len(lids)):
                postings = get_postings(lids[i])
                if postings:
                    w = lw[i]
                    for h, _w_s in postings:
                        if h in overlaps:
                            overlaps[h] += w

            a_r = enc_left.keys[g]
            for h, overlap in overlaps.items():
                norm_s = right_norms[h]
                if satisfied(overlap, norm_r, norm_s):
                    col_ar.append(a_r)
                    col_as.append(right_keys[h])
                    col_ov.append(overlap)
                    col_nr.append(norm_r)
                    col_ns.append(norm_s)
        if engine is not None:
            engine.flush(m)

    with m.phase(PHASE_FILTER):
        result = ColumnarRelation(
            RESULT_SCHEMA, (col_ar, col_as, col_ov, col_nr, col_ns)
        )
        m.output_pairs += len(result)
    return result
