"""The physical layer of the SSJoin operator.

:class:`~repro.relational.plan.SSJoinNode` is purely logical — it states
*what* joins (two normalized set relations under an overlap predicate), not
*how*. This module is the how: :func:`execute_physical` rewrites the
logical node into one of the concrete implementations

================  ==========================================================
``basic``         element equi-join + GROUP BY/HAVING (Figure 3)
``prefix``        prefix-filtered candidate join + regroup verify (Figure 5)
``inline``        prefix join carrying inlined sets, UDF verify (Section 3.2)
``probe``         inverted-index probe with suffix completion ([13]-style)
``encoded-prefix``  dictionary-encoded prefix plan + bitmap verify engine
``encoded-probe``   dictionary-encoded index probe + bitmap verify engine
================  ==========================================================

selected either explicitly or by the cost model over
:mod:`repro.relational.stats` histograms (``implementation="auto"``). All
run-scoped configuration — metrics, cost model, worker pool, encoding
cache, verify tuning — comes from one
:class:`~repro.relational.context.ExecutionContext` rather than ad-hoc
keyword plumbing, so an SSJoin node inside a larger plan tree shares state
with every other node of the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.basic import basic_ssjoin
from repro.core.encoded_index import EncodedInvertedIndex, encoded_index_probe_ssjoin
from repro.core.encoded_prefix import encoded_prefix_ssjoin
from repro.core.index import index_probe_ssjoin
from repro.core.inline import inline_ssjoin
from repro.core.metrics import ExecutionMetrics
from repro.core.optimizer import CostEstimate, choose_implementation
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prefix_filter import prefix_filtered_ssjoin
from repro.core.prepared import PreparedRelation
from repro.errors import PlanError
from repro.relational.context import ExecutionContext
from repro.relational.relation import Relation

__all__ = ["SSJoinResult", "execute_physical", "execute_ssjoin_node"]


@dataclass(frozen=True)
class SSJoinResult:
    """Outcome of one SSJoin execution.

    ``parallel`` is the :class:`repro.parallel.ParallelReport` when the
    run went through the parallel executor (typed ``Any``: repro.parallel
    layers above this module), ``None`` for plain sequential runs.
    """

    pairs: Relation
    metrics: ExecutionMetrics
    implementation: str
    cost_estimate: Optional[CostEstimate] = None
    parallel: Optional[Any] = None

    def pair_tuples(self) -> List[Tuple[Any, Any]]:
        """The matched ⟨a_r, a_s⟩ pairs as plain tuples."""
        ar = self.pairs.schema.position("a_r")
        as_ = self.pairs.schema.position("a_s")
        return [(row[ar], row[as_]) for row in self.pairs.rows]

    def pair_set(self) -> set:
        return set(self.pair_tuples())

    def __len__(self) -> int:
        return len(self.pairs)


def execute_physical(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    implementation: str = "auto",
    ordering: Optional[ElementOrdering] = None,
    encoding: Optional[Tuple[Any, Any]] = None,
    context: Optional[ExecutionContext] = None,
    ordering_cache: Optional[List[Optional[ElementOrdering]]] = None,
) -> SSJoinResult:
    """Run the physical rewrite of one logical SSJoin.

    Parameters
    ----------
    implementation:
        ``"basic"``, ``"prefix"``, ``"inline"``, ``"probe"``, the
        dictionary-encoded fast paths ``"encoded-prefix"`` /
        ``"encoded-probe"``, or ``"auto"`` to let the cost model decide.
    ordering:
        The element ordering as the *user* supplied it — ``None`` when
        defaulted. Plans that need a concrete ordering build the default
        frequency ordering lazily; the encoded plans key their encoding
        cache on the user's value so the lazily-built default never
        fragments the key.
    encoding:
        Optional prebuilt ``(left, right)`` encoding pair for the encoded
        plans; both sides must share one TokenDictionary.
    context:
        The run's :class:`ExecutionContext`. ``context.verify`` runs the
        static invariant verifier (SSJ1xx) first; ``context.workers``
        routes through the parallel executor; ``context.metrics``,
        ``context.cost_model``, ``context.verify_config`` and
        ``context.encoding_cache`` configure the rewrite itself.
    ordering_cache:
        Optional one-slot list memoizing the built default ordering
        across executions (the facade and plan nodes pass their own).
    """
    ctx = ExecutionContext.of(context)

    def built_ordering() -> ElementOrdering:
        if ordering is not None:
            return ordering
        if ordering_cache is not None and ordering_cache[0] is not None:
            return ordering_cache[0]
        o = frequency_ordering(left, right)
        if ordering_cache is not None:
            ordering_cache[0] = o
        return o

    if ctx.verify:
        # Imported here: repro.analysis depends on repro.core.
        from repro.analysis.invariants import check_ssjoin

        check_ssjoin(
            left,
            right,
            predicate,
            ordering=ordering,
            implementation=implementation,
            encoding=encoding,
        )
    if ctx.workers is not None:
        # Imported here: repro.parallel layers above repro.core.
        from repro.parallel.executor import parallel_ssjoin

        result = parallel_ssjoin(
            left,
            right,
            predicate,
            workers=ctx.workers,
            implementation=implementation,
            ordering=ordering,
            metrics=ctx._metrics,
            cost_model=ctx.cost_model,
            verify_config=ctx.verify_config,
            encoding_cache=ctx.encoding_cache,
        )
        if result.implementation in ("encoded-prefix", "encoded-probe"):
            cache = ctx.encoding_cache
            if cache is None:
                from repro.core.encoded import global_encoding_cache

                cache = global_encoding_cache()
            result.metrics.extra["encoding_cache"] = cache.stats()
        return result
    m = ctx.metrics
    estimate: Optional[CostEstimate] = None
    impl = implementation
    if impl == "auto":
        estimate = choose_implementation(
            left, right, predicate, built_ordering(), model=ctx.cost_model
        )
        impl = estimate.implementation

    enc = encoding
    if (
        enc is None
        and ctx.encoding_cache is not None
        and impl in ("encoded-prefix", "encoded-probe")
    ):
        # A context-scoped cache overrides the process-global one, so
        # plans sharing a context also share their encodings.
        l_enc, r_enc, _ = ctx.encoding_cache.encode_pair(left, right, ordering, m)
        enc = (l_enc, r_enc)

    if impl == "basic":
        pairs = basic_ssjoin(left, right, predicate, metrics=m)
    elif impl == "prefix":
        pairs = prefix_filtered_ssjoin(
            left, right, predicate, ordering=built_ordering(), metrics=m
        )
    elif impl == "inline":
        pairs = inline_ssjoin(
            left, right, predicate, ordering=built_ordering(),
            metrics=m, verify_config=ctx.verify_config,
        )
    elif impl == "probe":
        pairs = index_probe_ssjoin(
            left, right, predicate, ordering=built_ordering(), metrics=m
        )
    elif impl == "encoded-prefix":
        # The encoded plans take the *user's* ordering (None when it
        # defaulted): the dictionary's joint-frequency ids already
        # realize the default ordering, and None keys the encoding
        # cache consistently across executions.
        pairs = encoded_prefix_ssjoin(
            left, right, predicate,
            ordering=ordering, metrics=m,
            encoding=enc,
            verify_config=ctx.verify_config,
        )
    elif impl == "encoded-probe":
        pairs = encoded_index_probe_ssjoin(
            left, right, predicate,
            ordering=ordering, metrics=m,
            index=(None if enc is None else EncodedInvertedIndex(enc[1])),
            verify_config=ctx.verify_config,
        )
    else:
        raise PlanError(
            f"unknown implementation {implementation!r}; expected "
            "basic/prefix/inline/probe/encoded-prefix/encoded-probe/auto"
        )
    if impl in ("encoded-prefix", "encoded-probe"):
        cache = ctx.encoding_cache
        if cache is None:
            from repro.core.encoded import global_encoding_cache

            cache = global_encoding_cache()
        m.extra["encoding_cache"] = cache.stats()
    return SSJoinResult(pairs=pairs, metrics=m, implementation=impl, cost_estimate=estimate)


def execute_ssjoin_node(node: Any, context: ExecutionContext) -> SSJoinResult:
    """Execute a logical :class:`~repro.relational.plan.SSJoinNode`.

    Resolves both children to PreparedRelations (identity-preserving for
    :class:`~repro.relational.plan.PreparedInput` leaves) and hands off to
    :func:`execute_physical`. The built default ordering is memoized on
    the node, so repeated executions of one plan don't re-derive it.
    """
    left, right = node.resolve_sides(context)
    cache = getattr(node, "_built_ordering_cache", None)
    if cache is None:
        cache = [None]
        node._built_ordering_cache = cache
    return execute_physical(
        left,
        right,
        node.predicate,
        implementation=node.implementation,
        ordering=node.ordering,
        encoding=node.encoding,
        context=context,
        ordering_cache=cache,
    )
