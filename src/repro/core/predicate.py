"""SSJoin overlap predicates (paper Definition 1).

An SSJoin predicate is a conjunction ``AND_i { Overlap_B(a_r, a_s) >= e_i }``
where each ``e_i`` is an expression over constants and the norms of the two
groups. Example 2 names the three shapes that matter in practice —
*absolute*, *1-sided normalized* and *2-sided normalized* overlap — and the
edit-distance reduction (Property 4) adds a ``max(norm_r, norm_s)`` form.

Every bound exposes, besides its exact value, per-side *lower bounds* given
only that side's norm. Lemma 1's prefix length for a group ``s`` is
``β = wt(s) − α``; when α is normalized the filter must use a sound lower
bound on α knowable from that side alone (Section 4.2's "Normalized Overlap
Predicates" discussion). A side whose lower bound is ⩽ 0 simply keeps its
whole set — which is exactly the paper's rule that a 1-sided predicate can
prefix-filter only the normalized side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import PredicateError

__all__ = [
    "OVERLAP_EPSILON",
    "Bound",
    "AbsoluteBound",
    "LeftNormBound",
    "RightNormBound",
    "MaxNormBound",
    "SumNormBound",
    "OverlapPredicate",
]


#: Absolute tolerance for overlap comparisons. Summing float weights in
#: different orders (equi-join + GROUP BY vs. threshold arithmetic) drifts
#: by ~1e-15 per element; every comparison in the operator — HAVING, the
#: inline UDF filter, and the prefix β — uses this same epsilon so all
#: three physical implementations agree on boundary pairs.
OVERLAP_EPSILON = 1e-9


class Bound:
    """One conjunct ``Overlap >= e_i``; subclasses define the expression."""

    def value(self, left_norm: float, right_norm: float) -> float:
        """The exact threshold ``e_i`` for a concrete pair of group norms."""
        raise NotImplementedError

    def lower_bound_left(self, left_norm: float) -> float:
        """Sound lower bound on ``e_i`` knowing only the left group's norm.

        Must satisfy ``lower_bound_left(l) <= value(l, r)`` for every r ⩾ 0.
        """
        raise NotImplementedError

    def lower_bound_right(self, right_norm: float) -> float:
        """Mirror of :meth:`lower_bound_left` for the right side."""
        raise NotImplementedError


@dataclass(frozen=True)
class AbsoluteBound(Bound):
    """``Overlap >= alpha`` for a constant alpha (Example 2, absolute)."""

    alpha: float

    def __post_init__(self) -> None:
        if not self.alpha > 0:
            raise PredicateError(f"absolute overlap bound must be positive, got {self.alpha!r}")

    def value(self, left_norm: float, right_norm: float) -> float:
        return self.alpha

    def lower_bound_left(self, left_norm: float) -> float:
        return self.alpha

    def lower_bound_right(self, right_norm: float) -> float:
        return self.alpha

    def __repr__(self) -> str:
        return f"Overlap >= {self.alpha:g}"


@dataclass(frozen=True)
class LeftNormBound(Bound):
    """``Overlap >= fraction * norm(a_r) + offset`` (1-sided, R side).

    This is the Jaccard-containment reduction: ``JC(r, s) >= θ`` becomes
    ``Overlap >= θ·wt(Set(r))``.
    """

    fraction: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.fraction < 0:
            raise PredicateError(f"fraction must be non-negative, got {self.fraction!r}")

    def value(self, left_norm: float, right_norm: float) -> float:
        return self.fraction * left_norm + self.offset

    def lower_bound_left(self, left_norm: float) -> float:
        return self.fraction * left_norm + self.offset

    def lower_bound_right(self, right_norm: float) -> float:
        # Knows nothing about the left norm; only the constant part is sound.
        return self.offset

    def __repr__(self) -> str:
        text = f"Overlap >= {self.fraction:g}*R.norm"
        if self.offset:
            text += f" + {self.offset:g}"
        return text


@dataclass(frozen=True)
class RightNormBound(Bound):
    """``Overlap >= fraction * norm(a_s) + offset`` (1-sided, S side)."""

    fraction: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.fraction < 0:
            raise PredicateError(f"fraction must be non-negative, got {self.fraction!r}")

    def value(self, left_norm: float, right_norm: float) -> float:
        return self.fraction * right_norm + self.offset

    def lower_bound_left(self, left_norm: float) -> float:
        return self.offset

    def lower_bound_right(self, right_norm: float) -> float:
        return self.fraction * right_norm + self.offset

    def __repr__(self) -> str:
        text = f"Overlap >= {self.fraction:g}*S.norm"
        if self.offset:
            text += f" + {self.offset:g}"
        return text


@dataclass(frozen=True)
class MaxNormBound(Bound):
    """``Overlap >= fraction * max(norm_r, norm_s) + offset``.

    The edit-distance reduction (Property 4) is the instance
    ``Overlap >= max(|σ1|, |σ2|) − q + 1 − ε·q``, i.e. fraction 1 with
    offset ``1 − q − ε·q`` when norms hold string lengths.
    """

    fraction: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.fraction < 0:
            raise PredicateError(f"fraction must be non-negative, got {self.fraction!r}")

    def value(self, left_norm: float, right_norm: float) -> float:
        return self.fraction * max(left_norm, right_norm) + self.offset

    def lower_bound_left(self, left_norm: float) -> float:
        # max(l, r) >= l, so fraction*l + offset is a sound lower bound.
        return self.fraction * left_norm + self.offset

    def lower_bound_right(self, right_norm: float) -> float:
        return self.fraction * right_norm + self.offset

    def __repr__(self) -> str:
        text = f"Overlap >= {self.fraction:g}*max(R.norm, S.norm)"
        if self.offset:
            text += f" + {self.offset:g}"
        return text


@dataclass(frozen=True)
class SumNormBound(Bound):
    """``Overlap >= f_l·norm_r + f_r·norm_s + offset`` (both norms, linear).

    The hamming-distance reduction is the instance
    ``HD(s1, s2) ≤ k  ⇔  Overlap ≥ (wt(s1) + wt(s2) − k)/2``, i.e.
    fractions ``(0.5, 0.5)`` with offset ``−k/2``.
    """

    left_fraction: float
    right_fraction: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.left_fraction < 0 or self.right_fraction < 0:
            raise PredicateError(
                f"fractions must be non-negative, got "
                f"({self.left_fraction!r}, {self.right_fraction!r})"
            )

    def value(self, left_norm: float, right_norm: float) -> float:
        return self.left_fraction * left_norm + self.right_fraction * right_norm + self.offset

    def lower_bound_left(self, left_norm: float) -> float:
        # Non-negative right fraction: the bound is minimized at norm_s = 0.
        return self.left_fraction * left_norm + self.offset

    def lower_bound_right(self, right_norm: float) -> float:
        return self.right_fraction * right_norm + self.offset

    def __repr__(self) -> str:
        return (
            f"Overlap >= {self.left_fraction:g}*R.norm + "
            f"{self.right_fraction:g}*S.norm + {self.offset:g}"
        )


class OverlapPredicate:
    """A conjunction of :class:`Bound` conjuncts.

    Since every conjunct must hold, the effective overlap threshold for a
    pair is the **maximum** of the bound values. Constructors for the three
    shapes of Example 2 are provided as classmethods.

    Note on degenerate thresholds: equi-join-based SSJoin implementations
    can only ever observe pairs sharing at least one element, so pairs whose
    effective threshold is ⩽ 0 (which are satisfied vacuously) are *not*
    produced unless they overlap. Callers with such degenerate pairs (e.g.
    very short strings under the edit-distance reduction) must handle them
    out of band — see :mod:`repro.joins.edit_join`.
    """

    def __init__(self, bounds: Iterable[Bound]) -> None:
        self.bounds: Tuple[Bound, ...] = tuple(bounds)
        if not self.bounds:
            raise PredicateError("an SSJoin predicate needs at least one bound")
        for b in self.bounds:
            if not isinstance(b, Bound):
                raise PredicateError(f"{b!r} is not a Bound")

    def __eq__(self, other: object) -> bool:
        # Content equality: bounds are frozen dataclasses, so two predicates
        # built from the same parameters (e.g. two_sided(0.85) twice) compare
        # equal — prefix-length caches key on the predicate and must hit
        # across equal instances, not just the identical object.
        if not isinstance(other, OverlapPredicate):
            return NotImplemented
        return type(self) is type(other) and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash((type(self), self.bounds))

    # -- constructors for the paper's named forms ------------------------------

    @classmethod
    def absolute(cls, alpha: float) -> "OverlapPredicate":
        """Example 2 bullet 1: ``Overlap_B(a_r, a_s) >= alpha``."""
        return cls([AbsoluteBound(alpha)])

    @classmethod
    def one_sided(cls, fraction: float, side: str = "left") -> "OverlapPredicate":
        """Example 2 bullet 2: ``Overlap >= fraction · norm`` of one side."""
        if side == "left":
            return cls([LeftNormBound(fraction)])
        if side == "right":
            return cls([RightNormBound(fraction)])
        raise PredicateError(f"side must be 'left' or 'right', got {side!r}")

    @classmethod
    def two_sided(cls, fraction: float) -> "OverlapPredicate":
        """Example 2 bullet 3: overlap ⩾ fraction of *both* norms."""
        return cls([LeftNormBound(fraction), RightNormBound(fraction)])

    @classmethod
    def max_norm(cls, fraction: float, offset: float = 0.0) -> "OverlapPredicate":
        """``Overlap >= fraction·max(norms) + offset`` (edit-join form)."""
        return cls([MaxNormBound(fraction, offset)])

    # -- evaluation ------------------------------------------------------------

    def threshold(self, left_norm: float, right_norm: float) -> float:
        """Effective overlap threshold for a pair: max over conjunct values."""
        return max(b.value(left_norm, right_norm) for b in self.bounds)

    def satisfied(self, overlap: float, left_norm: float, right_norm: float) -> bool:
        """Does an observed overlap satisfy every conjunct?

        A tiny epsilon absorbs float round-off from summing weights in a
        different order than the threshold arithmetic.
        """
        return overlap + OVERLAP_EPSILON >= self.threshold(left_norm, right_norm)

    def left_filter_threshold(self, left_norm: float) -> float:
        """Sound overlap lower bound for prefix-filtering a left group."""
        return max(b.lower_bound_left(left_norm) for b in self.bounds)

    def right_filter_threshold(self, right_norm: float) -> float:
        """Sound overlap lower bound for prefix-filtering a right group."""
        return max(b.lower_bound_right(right_norm) for b in self.bounds)

    def __repr__(self) -> str:
        return " AND ".join(repr(b) for b in self.bounds)
