"""Token dictionary: dense integer ids realizing the ordering ``O``.

Section 4.3.2 fixes a global total order over set elements and takes each
group's β-prefix under it. Every tuple-based plan realizes that order by
calling :meth:`ElementOrdering.key` once per element per sort — a Python-
level comparison in the hottest loop of Figures 10–13. The encoded
execution layer instead *interns* every element into a dense ``int`` id
assigned in increasing joint-frequency order, so that

* the ordering ``O`` **is** integer comparison (``id_1 < id_2`` iff the
  element of ``id_1`` precedes that of ``id_2`` under ``O``), and
* prefix extraction over a group whose ids are kept sorted is plain array
  slicing.

This is the substrate PPJoin-family systems assume (frequency-ranked
integer tokens; Xiao et al., WWW 2008) and what bitmap-filter approaches
build their dense bitsets over.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.ordering import ElementOrdering
from repro.core.prepared import PreparedRelation
from repro.errors import ReproError
from repro.tokenize.sets import WeightedSet

__all__ = ["TokenDictionary"]


class TokenDictionary:
    """An immutable interning table ``element -> dense int id``.

    Ids are dense (``0 .. len-1``) and assigned in the order of the global
    ordering ``O``, so comparing ids compares elements under ``O``.

    >>> d = TokenDictionary.from_frequencies({"the": 3, "cat": 1})
    >>> d.id_of("cat") < d.id_of("the")   # rarer element ranks first
    True
    """

    __slots__ = ("_ids", "_elements", "description")

    def __init__(self, ids: Mapping[Any, int], description: str = "custom") -> None:
        self._ids: Dict[Any, int] = dict(ids)
        self.description = description
        if sorted(self._ids.values()) != list(range(len(self._ids))):
            raise ReproError("dictionary ids must be dense 0..n-1")
        self._elements: Optional[List[Any]] = None  # lazy inverse table

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_relations(
        cls,
        *relations: PreparedRelation,
        ordering: Optional[ElementOrdering] = None,
    ) -> "TokenDictionary":
        """Intern the joint universe of *relations*.

        With no *ordering*, ids follow increasing joint frequency with a
        ``repr`` tiebreak — exactly the ranks of
        :func:`repro.core.ordering.frequency_ordering` — so the encoded
        plans' prefixes coincide with the tuple plans'. An explicit
        *ordering* (ablation orders, custom ranks) is honored instead.
        """
        freq: Dict[Any, int] = {}
        for rel in relations:
            for e, n in rel.element_frequencies().items():
                freq[e] = freq.get(e, 0) + n
        if ordering is None:
            ranked = sorted(freq, key=lambda e: (freq[e], repr(e)))
            description = "joint-frequency"
        else:
            ranked = sorted(freq, key=ordering.key)
            description = f"ordering:{ordering.description}"
        return cls({e: i for i, e in enumerate(ranked)}, description=description)

    @classmethod
    def from_frequencies(
        cls,
        frequencies: Mapping[Any, int],
        tiebreak: Callable[[Any], Any] = repr,
    ) -> "TokenDictionary":
        """Intern a precomputed frequency histogram, rarest first."""
        ranked = sorted(frequencies, key=lambda e: (frequencies[e], tiebreak(e)))
        return cls({e: i for i, e in enumerate(ranked)}, description="frequency")

    # -- lookups ---------------------------------------------------------------

    def id_of(self, element: Any) -> int:
        """The dense id of *element*; raises for un-interned elements."""
        try:
            return self._ids[element]
        except KeyError:
            raise ReproError(
                f"element {element!r} is not in the dictionary; encoded plans "
                "require a dictionary built over both join sides"
            ) from None

    def get(self, element: Any, default: Optional[int] = None) -> Optional[int]:
        return self._ids.get(element, default)

    def element_of(self, token_id: int) -> Any:
        """Invert an id back to its element (lazy inverse table)."""
        if self._elements is None:
            inverse: List[Any] = [None] * len(self._ids)
            for e, i in self._ids.items():
                inverse[i] = e
            self._elements = inverse
        return self._elements[token_id]

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, element: object) -> bool:
        return element in self._ids

    def covers(self, elements: Iterable[Any]) -> bool:
        """Whether every element is interned (cheap encodability probe)."""
        return all(e in self._ids for e in elements)

    # -- encoding --------------------------------------------------------------

    def encode_sorted(self, wset: WeightedSet) -> Tuple[array, array]:
        """Encode a weighted set as parallel ``(ids, weights)`` arrays.

        Ids come back ascending — i.e. the set is already sorted by the
        ordering ``O`` — so a β-prefix is a leading slice of both arrays.
        """
        ids = self._ids
        pairs = sorted((ids[e], w) for e, w in wset.items())
        return (
            array("q", [p[0] for p in pairs]),
            array("d", [p[1] for p in pairs]),
        )

    def encode_sorted_lenient(self, wset: WeightedSet) -> Tuple[array, array]:
        """Like :meth:`encode_sorted`, but tolerates un-interned elements.

        Unseen elements receive per-set pseudo-ids past the dictionary's
        range (sorted by ``repr`` among themselves, mirroring
        :class:`ElementOrdering`'s unseen-last rule), so they sort after
        every interned element and can never match a posting or a real id
        on the other side. Used when probing a prebuilt index whose
        dictionary predates the probe relation.
        """
        ids = self._ids
        base = len(ids)
        seen: list = []
        unseen: list = []
        for e, w in wset.items():
            i = ids.get(e)
            if i is None:
                unseen.append((e, w))
            else:
                seen.append((i, w))
        seen.sort()
        unseen.sort(key=lambda ew: repr(ew[0]))
        pairs = seen + [(base + k, w) for k, (_e, w) in enumerate(unseen)]
        return (
            array("q", [p[0] for p in pairs]),
            array("d", [p[1] for p in pairs]),
        )

    def to_ordering(self) -> ElementOrdering:
        """The equivalent :class:`ElementOrdering` (rank table = id table)."""
        return ElementOrdering(
            dict(self._ids), description=f"dictionary({self.description})"
        )

    def __repr__(self) -> str:
        return f"TokenDictionary({self.description}, |universe|={len(self._ids)})"
