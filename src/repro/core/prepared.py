"""Normalized set representation: the ``R(A, B, norm)`` relations of Figure 1.

A :class:`PreparedRelation` is the "string to set" stage of Figure 2 made
concrete: each group key ``a`` (a string, record id, author name, …) is
associated with a weighted element set, materialized both

* relationally — a row ``(a, b, w, norm)`` per element, the First-Normal-Form
  representation the paper insists on (Section 2), consumed by the basic and
  prefix-filter plans; and
* as a dict of :class:`~repro.tokenize.sets.WeightedSet` — consumed by the
  verification stages and the inline-set plan.

The *norm* is configurable per the paper: string length, set cardinality,
or total set weight.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.tokenize.elements import ordinal_encode
from repro.tokenize.sets import WeightedSet
from repro.tokenize.weights import UnitWeights, WeightTable

__all__ = ["PreparedRelation", "NORM_WEIGHT", "NORM_CARDINALITY", "NORM_LENGTH"]

#: norm = total element weight of the set (Jaccard-style predicates).
NORM_WEIGHT = "weight"
#: norm = number of elements in the set.
NORM_CARDINALITY = "cardinality"
#: norm = length of the source string (edit-distance reduction).
NORM_LENGTH = "length"

#: Schema of every prepared relation, fixed so plans can rely on it.
PREPARED_SCHEMA = Schema(["a", "b", "w", "norm"])


class PreparedRelation:
    """Groups of weighted elements keyed by the join attribute ``A``."""

    def __init__(
        self,
        groups: Mapping[Any, WeightedSet],
        norms: Optional[Mapping[Any, float]] = None,
        name: str = "prepared",
    ) -> None:
        self.name = name
        self.groups: Dict[Any, WeightedSet] = dict(groups)
        if norms is None:
            self.norms: Dict[Any, float] = {a: s.norm for a, s in self.groups.items()}
        else:
            missing = set(self.groups) - set(norms)
            if missing:
                raise ReproError(f"norms missing for groups: {sorted(map(repr, missing))[:5]}")
            self.norms = {a: float(norms[a]) for a in self.groups}
        self._relation: Optional[Relation] = None
        self._fingerprint: Optional[int] = None
        self._num_elements: Optional[int] = None
        #: per-instance memo for prefix_filter_relation (see prefix_filter.py)
        self._prefix_cache: Dict[Any, Any] = {}

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_strings(
        cls,
        values: Iterable[str],
        tokenizer: Callable[[str], Sequence[Any]],
        weights: Optional[WeightTable] = None,
        norm: str = NORM_WEIGHT,
        name: str = "prepared",
    ) -> "PreparedRelation":
        """Prepare distinct strings: tokenize, ordinal-encode, weigh.

        Duplicate input strings collapse into one group (the SSJoin operator
        joins *distinct* values of ``A`` by definition).
        """
        table = weights if weights is not None else UnitWeights()
        groups: Dict[Any, WeightedSet] = {}
        norms: Dict[Any, float] = {}
        for value in values:
            if value in groups:
                continue
            elements = ordinal_encode(tokenizer(value))
            wset = WeightedSet({e: table.weight(e[0]) for e in elements})
            groups[value] = wset
            norms[value] = _norm_value(norm, value, wset)
        return cls(groups, norms, name=name)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Any, Any]],
        weights: Optional[WeightTable] = None,
        norm: str = NORM_WEIGHT,
        name: str = "prepared",
    ) -> "PreparedRelation":
        """Prepare from explicit ``(a, b)`` pairs — the relational form.

        This is how non-textual joins (co-occurrence, soft FDs) enter
        SSJoin: the pairs *are* the normalized representation already, e.g.
        ``(author, paper_title)`` rows. Duplicate ``(a, b)`` pairs are
        ordinal-encoded into multiset elements.
        """
        table = weights if weights is not None else UnitWeights()
        by_group: Dict[Any, List[Any]] = {}
        for a, b in pairs:
            by_group.setdefault(a, []).append(b)
        groups: Dict[Any, WeightedSet] = {}
        norms: Dict[Any, float] = {}
        for a, tokens in by_group.items():
            elements = ordinal_encode(tokens)
            wset = WeightedSet({e: table.weight(e[0]) for e in elements})
            groups[a] = wset
            norms[a] = _norm_value(norm, a if isinstance(a, str) else "", wset)
        return cls(groups, norms, name=name)

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        weights: Optional[WeightTable] = None,
        norm: str = NORM_WEIGHT,
        name: Optional[str] = None,
    ) -> "PreparedRelation":
        """Re-prepare a First-Normal-Form relation produced by a plan.

        Accepts anything with at least ``a`` and ``b`` columns — a
        :class:`TableScan` over a normalized table, a filtered prepared
        view, or the output of an arbitrary subtree feeding an SSJoin
        node. When a ``w`` column is present it supplies the element
        weights (*weights* must then be ``None``); when a ``norm`` column
        is present it supplies the group norms, otherwise norms are
        recomputed per *norm*.
        """
        schema = relation.schema
        for required in ("a", "b"):
            if required not in schema:
                raise ReproError(
                    f"cannot prepare relation {relation.name!r}: missing "
                    f"column {required!r} (need at least a, b)"
                )
        pa = schema.position("a")
        pb = schema.position("b")
        pw = schema.position("w") if "w" in schema else None
        pn = schema.position("norm") if "norm" in schema else None
        if pw is not None and weights is not None:
            raise ReproError(
                "relation carries a 'w' column and an explicit weight "
                "table was given; use one source of weights, not both"
            )
        table = weights if weights is not None else UnitWeights()

        by_group: Dict[Any, List[Tuple[Any, Optional[float]]]] = {}
        norms_in: Dict[Any, float] = {}
        for row in relation.rows:
            a = row[pa]
            w = float(row[pw]) if pw is not None else None
            by_group.setdefault(a, []).append((row[pb], w))
            if pn is not None:
                norms_in[a] = float(row[pn])
        groups: Dict[Any, WeightedSet] = {}
        norms: Dict[Any, float] = {}
        for a, pairs in by_group.items():
            elements = ordinal_encode([b for b, _ in pairs])
            wset = WeightedSet(
                {
                    e: (w if w is not None else table.weight(e[0]))
                    for e, (_, w) in zip(elements, pairs)
                }
            )
            groups[a] = wset
            norms[a] = norms_in.get(a, _norm_value(norm, a if isinstance(a, str) else "", wset))
        return cls(groups, norms, name=name if name is not None else relation.name)

    @classmethod
    def from_sets(
        cls,
        groups: Mapping[Any, WeightedSet],
        norms: Optional[Mapping[Any, float]] = None,
        name: str = "prepared",
    ) -> "PreparedRelation":
        """Wrap pre-built weighted sets directly."""
        return cls(groups, norms, name=name)

    # -- views ---------------------------------------------------------------------

    @property
    def relation(self) -> Relation:
        """The normalized ``(a, b, w, norm)`` relation (built lazily, cached)."""
        if self._relation is None:
            rows: List[Tuple[Any, Any, float, float]] = []
            for a, wset in self.groups.items():
                n = self.norms[a]
                rows.extend((a, b, w, n) for b, w in wset.items())
            self._relation = Relation(PREPARED_SCHEMA, rows, name=self.name)
        return self._relation

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_elements(self) -> int:
        """Total rows of the normalized relation (memoized — groups are
        fixed after construction, and the executor reads this on every
        parallel dispatch)."""
        if self._num_elements is None:
            self._num_elements = sum(len(s) for s in self.groups.values())
        return self._num_elements

    def group(self, a: Any) -> WeightedSet:
        return self.groups[a]

    def norm(self, a: Any) -> float:
        return self.norms[a]

    def keys(self) -> Tuple[Any, ...]:
        return tuple(self.groups)

    def fingerprint(self) -> int:
        """Content hash over groups, weights, and norms (memoized).

        Two relations prepared from the same values with the same
        tokenizer and weight table fingerprint identically, which is what
        lets the encoding cache (:mod:`repro.core.encoded`) recognize a
        repeat workload across freshly-built instances. Hash collisions
        are possible, so cache consumers must verify content on a hit.
        """
        if self._fingerprint is None:
            self._fingerprint = hash(
                (
                    len(self.groups),
                    frozenset(
                        (a, wset, self.norms[a]) for a, wset in self.groups.items()
                    ),
                )
            )
        return self._fingerprint

    def element_frequencies(self) -> Dict[Any, int]:
        """How many groups contain each element (drives the ordering O)."""
        freq: Dict[Any, int] = {}
        for wset in self.groups.values():
            for e in wset:
                freq[e] = freq.get(e, 0) + 1
        return freq

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        return (
            f"<PreparedRelation {self.name!r} groups={self.num_groups} "
            f"elements={self.num_elements}>"
        )


def _norm_value(kind: str, source_string: str, wset: WeightedSet) -> float:
    if kind == NORM_WEIGHT:
        return wset.norm
    if kind == NORM_CARDINALITY:
        return float(len(wset))
    if kind == NORM_LENGTH:
        return float(len(source_string))
    raise ReproError(f"unknown norm kind {kind!r}; expected weight/cardinality/length")
