"""The SSJoin operator facade — a thin shim over the plan layer.

Since the Layer-7 refactor, the operator itself lives in the plan layer:
:class:`SSJoin` builds a one-node logical plan
(:class:`repro.relational.plan.SSJoinNode` over
:class:`~repro.relational.plan.PreparedInput` leaves) and executes it
against an :class:`~repro.relational.context.ExecutionContext` assembled
from its keyword arguments. The historical call shape — and its results,
metrics and chosen implementations — are preserved exactly; the facade
remains the convenient entry point for joining two prepared relations
without writing a plan tree by hand. :func:`ssjoin` is the one-call
functional form.

Result rows are ``(a_r, a_s, overlap, norm_r, norm_s)``; see
:data:`repro.core.basic.RESULT_SCHEMA`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

from repro.core.encoded import EncodedPreparedRelation
from repro.core.metrics import ExecutionMetrics
from repro.core.optimizer import CostModel, choose_implementation
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.physical import SSJoinResult
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.verify import VerifyConfig
from repro.errors import PlanError
from repro.relational.context import ExecutionContext
from repro.relational.plan import PreparedInput, SSJoinNode

__all__ = ["SSJoinResult", "SSJoin", "ssjoin"]


class SSJoin:
    """``R SSJoin_A S`` with a fixed overlap predicate.

    >>> from repro.tokenize.words import words
    >>> r = PreparedRelation.from_strings(["microsoft corp"], words)
    >>> s = PreparedRelation.from_strings(["microsoft corporation"], words)
    >>> op = SSJoin(r, s, OverlapPredicate.absolute(1.0))
    >>> op.execute("basic").pair_tuples()
    [('microsoft corp', 'microsoft corporation')]
    """

    def __init__(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        predicate: OverlapPredicate,
        ordering: Optional[ElementOrdering] = None,
        encoding: Optional[
            Tuple["EncodedPreparedRelation", "EncodedPreparedRelation"]
        ] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        # The ordering as the *user* supplied it (None when defaulted) —
        # the encoded plans key their encoding cache on this, so that the
        # lazily-built default frequency ordering never fragments the key.
        self._user_ordering = ordering
        # One-slot memo shared with the plan node: the built default
        # ordering, reused across repeated executions of this facade.
        self._ordering_slot: List[Optional[ElementOrdering]] = [ordering]
        # Optional prebuilt (left, right) encoding pair for the encoded
        # plans. Both sides must share one TokenDictionary and encode the
        # *current* contents of left/right — `verify=True` checks both.
        self._encoding = encoding
        self._node: Optional[SSJoinNode] = None

    @property
    def ordering(self) -> ElementOrdering:
        """The global element ordering (built lazily, frequency-based)."""
        if self._ordering_slot[0] is None:
            self._ordering_slot[0] = frequency_ordering(self.left, self.right)
        return self._ordering_slot[0]

    def plan(self, implementation: str = "auto") -> SSJoinNode:
        """The one-node logical plan this facade executes (cached)."""
        if self._node is None:
            left = PreparedInput(self.left)
            right = left if self.right is self.left else PreparedInput(self.right)
            self._node = SSJoinNode(
                left,
                right,
                self.predicate,
                implementation=implementation,
                ordering=self._user_ordering,
                encoding=self._encoding,
            )
            # Share the facade's ordering memo with the physical layer.
            self._node._built_ordering_cache = self._ordering_slot
        else:
            self._node.implementation = implementation
        return self._node

    def execute(
        self,
        implementation: str = "auto",
        metrics: Optional[ExecutionMetrics] = None,
        cost_model: Optional[CostModel] = None,
        verify: bool = False,
        workers: Optional[Union[int, str]] = None,
        verify_config: Optional[VerifyConfig] = None,
        encoding_cache: Any = None,
    ) -> SSJoinResult:
        """Run the join with the named (or cost-chosen) implementation.

        Parameters
        ----------
        implementation:
            ``"basic"``, ``"prefix"``, ``"inline"``, ``"probe"``, the
            dictionary-encoded fast paths ``"encoded-prefix"`` /
            ``"encoded-probe"``, or ``"auto"`` to let the cost model
            decide (which routes encodable repeat workloads to the
            encoded plans automatically).
        metrics:
            Optional pre-existing metrics object to accumulate into
            (multi-stage joins pass their own).
        verify:
            Run the static invariant verifier
            (:func:`repro.analysis.check_ssjoin`) before executing:
            Lemma-1 bound soundness, ordering/dictionary coherence of any
            prebuilt encoding, float-equality and verify-step audits. An
            unsafe plan raises :class:`repro.errors.AnalysisError` with
            structured diagnostics instead of running.
        workers:
            ``None`` (default) runs sequentially.  An ``int >= 1`` or
            ``"auto"`` routes through :func:`repro.parallel.parallel_ssjoin`:
            work is sharded across that many processes (``"auto"`` sizes
            from the cost model and falls back to sequential below the
            crossover, so it never regresses small joins).  Parallel
            results are bit-identical to sequential and canonically
            sorted regardless of worker count.
        verify_config:
            Tuning for the bitmap-signature verification engine
            (:class:`repro.core.verify.VerifyConfig`) used by the
            ``inline`` and encoded plans (and their parallel shards):
            ``None`` resolves the signature width automatically,
            ``VerifyConfig.disabled()`` reproduces the unfiltered
            verify step exactly.  Results are identical either way —
            the engine only prunes candidates that cannot qualify.
        encoding_cache:
            A context-scoped :class:`~repro.core.encoded.EncodingCache`
            (possibly with a persistent tier attached) overriding the
            process-global one for the encoded plans; ``None`` keeps the
            global cache.
        """
        node = self.plan(implementation)
        context = ExecutionContext(
            metrics=metrics,
            cost_model=cost_model,
            verify_config=verify_config,
            workers=workers,
            verify=verify,
            encoding_cache=encoding_cache,
        )
        node.execute(context)
        return node.last_result

    def explain(self, implementation: str = "auto") -> str:
        """Describe the physical plan that :meth:`execute` would run."""
        impl = implementation
        note = ""
        if impl == "auto":
            estimate = choose_implementation(
                self.left, self.right, self.predicate, self.ordering
            )
            impl = estimate.implementation
            note = f"  -- chosen by cost model: {estimate!r}\n"
        shapes = {
            "basic": (
                "GroupBy(a_r, a_s) HAVING overlap >= pred\n"
                "  HashJoin(R.b = S.b)\n"
                "    Scan(R normalized)\n"
                "    Scan(S normalized)"
            ),
            "prefix": (
                "GroupBy(a_r, a_s) HAVING overlap >= pred\n"
                "  HashJoin(candidates x R x S regroup)\n"
                "    Distinct(a_r, a_s)\n"
                "      HashJoin(prefix(R).b = prefix(S).b)\n"
                "        PrefixFilter(R, beta = wt - pred_lb)\n"
                "        PrefixFilter(S, beta = wt - pred_lb)"
            ),
            "inline": (
                "Filter(encoded_overlap(set_r, set_s) >= pred)\n"
                "  Distinct(a_r, set_r, a_s, set_s)\n"
                "    HashJoin(prefix(R).b = prefix(S).b)\n"
                "      InlinePrefixFilter(R, carries encoded set)\n"
                "      InlinePrefixFilter(S, carries encoded set)"
            ),
            "probe": (
                "Filter(overlap >= pred)\n"
                "  IndexProbe(per R group: prefix elements discover,\n"
                "             suffix elements complete)\n"
                "    InvertedIndex(S.b -> postings)"
            ),
            "encoded-prefix": (
                "Filter(early-exit merge_overlap(ids_r, ids_s) >= pred)\n"
                "  Verify(bitmap XOR-popcount bound, positional bound)\n"
                "    CandidateProbe(left prefix slices x right prefix index)\n"
                "      EncodedPrefix(R: leading slice of sorted id arrays)\n"
                "      EncodedPrefix(S: leading slice of sorted id arrays)\n"
                "        Encode(TokenDictionary: joint-frequency int ids, cached)"
            ),
            "encoded-probe": (
                "Filter(overlap >= pred)\n"
                "  EncodedIndexProbe(per R group: prefix id slice discovers,\n"
                "                    Verify(bitmap + partial-overlap bound),\n"
                "                    suffix id slice completes survivors)\n"
                "    EncodedInvertedIndex(int id -> (group, weight) postings)\n"
                "      Encode(TokenDictionary: joint-frequency int ids, cached)"
            ),
        }
        if impl not in shapes:
            raise PlanError(f"unknown implementation {implementation!r}")
        header = f"SSJoin[{impl}] pred: {self.predicate!r}\n"
        return header + note + shapes[impl]


def ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    implementation: str = "auto",
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    verify: bool = False,
    workers: Optional[Union[int, str]] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> SSJoinResult:
    """Functional shorthand for ``SSJoin(left, right, pred).execute(...)``."""
    return SSJoin(left, right, predicate, ordering=ordering).execute(
        implementation, metrics=metrics, verify=verify, workers=workers,
        verify_config=verify_config,
    )
