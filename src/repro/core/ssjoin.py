"""The SSJoin operator facade.

:class:`SSJoin` bundles two prepared relations and an overlap predicate and
executes whichever physical implementation is requested — or lets the
cost-based optimizer pick (``implementation="auto"``), which is the paper's
concluding recommendation. :func:`ssjoin` is the one-call functional form.

Result rows are ``(a_r, a_s, overlap, norm_r, norm_s)``; see
:data:`repro.core.basic.RESULT_SCHEMA`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from repro.core.basic import basic_ssjoin
from repro.core.encoded import EncodedPreparedRelation
from repro.core.encoded_index import EncodedInvertedIndex, encoded_index_probe_ssjoin
from repro.core.encoded_prefix import encoded_prefix_ssjoin
from repro.core.index import index_probe_ssjoin
from repro.core.inline import inline_ssjoin
from repro.core.metrics import ExecutionMetrics
from repro.core.optimizer import CostEstimate, CostModel, choose_implementation
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prefix_filter import prefix_filtered_ssjoin
from repro.core.prepared import PreparedRelation
from repro.core.verify import VerifyConfig
from repro.errors import PlanError
from repro.relational.relation import Relation

__all__ = ["SSJoinResult", "SSJoin", "ssjoin"]


@dataclass(frozen=True)
class SSJoinResult:
    """Outcome of one SSJoin execution.

    ``parallel`` is the :class:`repro.parallel.ParallelReport` when the
    run went through the parallel executor (typed ``Any``: repro.parallel
    layers above this module), ``None`` for plain sequential runs.
    """

    pairs: Relation
    metrics: ExecutionMetrics
    implementation: str
    cost_estimate: Optional[CostEstimate] = None
    parallel: Optional[Any] = None

    def pair_tuples(self) -> List[Tuple[Any, Any]]:
        """The matched ⟨a_r, a_s⟩ pairs as plain tuples."""
        ar = self.pairs.schema.position("a_r")
        as_ = self.pairs.schema.position("a_s")
        return [(row[ar], row[as_]) for row in self.pairs.rows]

    def pair_set(self) -> set:
        return set(self.pair_tuples())

    def __len__(self) -> int:
        return len(self.pairs)


class SSJoin:
    """``R SSJoin_A S`` with a fixed overlap predicate.

    >>> from repro.tokenize.words import words
    >>> r = PreparedRelation.from_strings(["microsoft corp"], words)
    >>> s = PreparedRelation.from_strings(["microsoft corporation"], words)
    >>> op = SSJoin(r, s, OverlapPredicate.absolute(1.0))
    >>> op.execute("basic").pair_tuples()
    [('microsoft corp', 'microsoft corporation')]
    """

    def __init__(
        self,
        left: PreparedRelation,
        right: PreparedRelation,
        predicate: OverlapPredicate,
        ordering: Optional[ElementOrdering] = None,
        encoding: Optional[
            Tuple["EncodedPreparedRelation", "EncodedPreparedRelation"]
        ] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self._ordering = ordering
        # The ordering as the *user* supplied it (None when defaulted) —
        # the encoded plans key their encoding cache on this, so that the
        # lazily-built default frequency ordering never fragments the key.
        self._user_ordering = ordering
        # Optional prebuilt (left, right) encoding pair for the encoded
        # plans. Both sides must share one TokenDictionary and encode the
        # *current* contents of left/right — `verify=True` checks both.
        self._encoding = encoding

    @property
    def ordering(self) -> ElementOrdering:
        """The global element ordering (built lazily, frequency-based)."""
        if self._ordering is None:
            self._ordering = frequency_ordering(self.left, self.right)
        return self._ordering

    def execute(
        self,
        implementation: str = "auto",
        metrics: Optional[ExecutionMetrics] = None,
        cost_model: Optional[CostModel] = None,
        verify: bool = False,
        workers: Optional[Union[int, str]] = None,
        verify_config: Optional[VerifyConfig] = None,
    ) -> SSJoinResult:
        """Run the join with the named (or cost-chosen) implementation.

        Parameters
        ----------
        implementation:
            ``"basic"``, ``"prefix"``, ``"inline"``, ``"probe"``, the
            dictionary-encoded fast paths ``"encoded-prefix"`` /
            ``"encoded-probe"``, or ``"auto"`` to let the cost model
            decide (which routes encodable repeat workloads to the
            encoded plans automatically).
        metrics:
            Optional pre-existing metrics object to accumulate into
            (multi-stage joins pass their own).
        verify:
            Run the static invariant verifier
            (:func:`repro.analysis.check_ssjoin`) before executing:
            Lemma-1 bound soundness, ordering/dictionary coherence of any
            prebuilt encoding, float-equality and verify-step audits. An
            unsafe plan raises :class:`repro.errors.AnalysisError` with
            structured diagnostics instead of running.
        workers:
            ``None`` (default) runs sequentially.  An ``int >= 1`` or
            ``"auto"`` routes through :func:`repro.parallel.parallel_ssjoin`:
            work is sharded across that many processes (``"auto"`` sizes
            from the cost model and falls back to sequential below the
            crossover, so it never regresses small joins).  Parallel
            results are bit-identical to sequential and canonically
            sorted regardless of worker count.
        verify_config:
            Tuning for the bitmap-signature verification engine
            (:class:`repro.core.verify.VerifyConfig`) used by the
            ``inline`` and encoded plans (and their parallel shards):
            ``None`` resolves the signature width automatically,
            ``VerifyConfig.disabled()`` reproduces the unfiltered
            verify step exactly.  Results are identical either way —
            the engine only prunes candidates that cannot qualify.
        """
        if verify:
            # Imported here: repro.analysis depends on repro.core.
            from repro.analysis.invariants import check_ssjoin

            check_ssjoin(
                self.left,
                self.right,
                self.predicate,
                ordering=self._user_ordering,
                implementation=implementation,
                encoding=self._encoding,
            )
        if workers is not None:
            # Imported here: repro.parallel layers above repro.core.
            from repro.parallel.executor import parallel_ssjoin

            return parallel_ssjoin(
                self.left,
                self.right,
                self.predicate,
                workers=workers,
                implementation=implementation,
                ordering=self._user_ordering,
                metrics=metrics,
                cost_model=cost_model,
                verify_config=verify_config,
            )
        m = metrics if metrics is not None else ExecutionMetrics()
        estimate: Optional[CostEstimate] = None
        impl = implementation
        if impl == "auto":
            estimate = choose_implementation(
                self.left, self.right, self.predicate, self.ordering, model=cost_model
            )
            impl = estimate.implementation

        if impl == "basic":
            pairs = basic_ssjoin(self.left, self.right, self.predicate, metrics=m)
        elif impl == "prefix":
            pairs = prefix_filtered_ssjoin(
                self.left, self.right, self.predicate, ordering=self.ordering, metrics=m
            )
        elif impl == "inline":
            pairs = inline_ssjoin(
                self.left, self.right, self.predicate, ordering=self.ordering,
                metrics=m, verify_config=verify_config,
            )
        elif impl == "probe":
            pairs = index_probe_ssjoin(
                self.left, self.right, self.predicate, ordering=self.ordering, metrics=m
            )
        elif impl == "encoded-prefix":
            # The encoded plans take the *user's* ordering (None when it
            # defaulted): the dictionary's joint-frequency ids already
            # realize the default ordering, and None keys the encoding
            # cache consistently across executions.
            pairs = encoded_prefix_ssjoin(
                self.left, self.right, self.predicate,
                ordering=self._user_ordering, metrics=m,
                encoding=self._encoding,
                verify_config=verify_config,
            )
        elif impl == "encoded-probe":
            pairs = encoded_index_probe_ssjoin(
                self.left, self.right, self.predicate,
                ordering=self._user_ordering, metrics=m,
                index=(
                    None
                    if self._encoding is None
                    else EncodedInvertedIndex(self._encoding[1])
                ),
                verify_config=verify_config,
            )
        else:
            raise PlanError(
                f"unknown implementation {implementation!r}; expected "
                "basic/prefix/inline/probe/encoded-prefix/encoded-probe/auto"
            )
        return SSJoinResult(pairs=pairs, metrics=m, implementation=impl, cost_estimate=estimate)

    def explain(self, implementation: str = "auto") -> str:
        """Describe the plan that :meth:`execute` would run."""
        impl = implementation
        note = ""
        if impl == "auto":
            estimate = choose_implementation(
                self.left, self.right, self.predicate, self.ordering
            )
            impl = estimate.implementation
            note = f"  -- chosen by cost model: {estimate!r}\n"
        shapes = {
            "basic": (
                "GroupBy(a_r, a_s) HAVING overlap >= pred\n"
                "  HashJoin(R.b = S.b)\n"
                "    Scan(R normalized)\n"
                "    Scan(S normalized)"
            ),
            "prefix": (
                "GroupBy(a_r, a_s) HAVING overlap >= pred\n"
                "  HashJoin(candidates x R x S regroup)\n"
                "    Distinct(a_r, a_s)\n"
                "      HashJoin(prefix(R).b = prefix(S).b)\n"
                "        PrefixFilter(R, beta = wt - pred_lb)\n"
                "        PrefixFilter(S, beta = wt - pred_lb)"
            ),
            "inline": (
                "Filter(encoded_overlap(set_r, set_s) >= pred)\n"
                "  Distinct(a_r, set_r, a_s, set_s)\n"
                "    HashJoin(prefix(R).b = prefix(S).b)\n"
                "      InlinePrefixFilter(R, carries encoded set)\n"
                "      InlinePrefixFilter(S, carries encoded set)"
            ),
            "probe": (
                "Filter(overlap >= pred)\n"
                "  IndexProbe(per R group: prefix elements discover,\n"
                "             suffix elements complete)\n"
                "    InvertedIndex(S.b -> postings)"
            ),
            "encoded-prefix": (
                "Filter(early-exit merge_overlap(ids_r, ids_s) >= pred)\n"
                "  Verify(bitmap XOR-popcount bound, positional bound)\n"
                "    CandidateProbe(left prefix slices x right prefix index)\n"
                "      EncodedPrefix(R: leading slice of sorted id arrays)\n"
                "      EncodedPrefix(S: leading slice of sorted id arrays)\n"
                "        Encode(TokenDictionary: joint-frequency int ids, cached)"
            ),
            "encoded-probe": (
                "Filter(overlap >= pred)\n"
                "  EncodedIndexProbe(per R group: prefix id slice discovers,\n"
                "                    Verify(bitmap + partial-overlap bound),\n"
                "                    suffix id slice completes survivors)\n"
                "    EncodedInvertedIndex(int id -> (group, weight) postings)\n"
                "      Encode(TokenDictionary: joint-frequency int ids, cached)"
            ),
        }
        if impl not in shapes:
            raise PlanError(f"unknown implementation {implementation!r}")
        header = f"SSJoin[{impl}] pred: {self.predicate!r}\n"
        return header + note + shapes[impl]


def ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    implementation: str = "auto",
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    verify: bool = False,
    workers: Optional[Union[int, str]] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> SSJoinResult:
    """Functional shorthand for ``SSJoin(left, right, pred).execute(...)``."""
    return SSJoin(left, right, predicate, ordering=ordering).execute(
        implementation, metrics=metrics, verify=verify, workers=workers,
        verify_config=verify_config,
    )
