"""Incremental SSJoin: maintain a self-join under record arrivals.

Warehouses are not static; new customer rows arrive and must be checked
against everything already ingested — without recomputing the whole join.
:class:`IncrementalSSJoin` keeps prefix indexes over the groups seen so
far and, per arriving group, returns exactly the directed pairs the batch
self-join would gain — including both directions of asymmetric predicates
(a 1-sided containment bound gives ``(new, old)`` and ``(old, new)``
*different* thresholds, so each direction gets its own Lemma-1 probe).

Two indexes are maintained: stored groups' **right**-side prefixes (probed
by a new group's left prefix, covering ``(new, old)`` pairs) and stored
groups' **left**-side prefixes (probed by a new group's right prefix,
covering ``(old, new)`` pairs). Candidates are verified with the exact
set overlap, so the answer is exact whatever the ordering.

The global element ordering is fixed at construction (Lemma 1 holds under
*any* fixed order, so correctness never depends on it). For filtering
power, seed it from a representative sample via
:meth:`IncrementalSSJoin.from_sample`; as the live distribution drifts the
filter only gets *weaker*, never wrong.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.metrics import ExecutionMetrics
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prefixes import prefix_of_sorted
from repro.core.prepared import PreparedRelation
from repro.errors import ReproError
from repro.tokenize.sets import WeightedSet

if TYPE_CHECKING:  # deferred: tokenize.weights imports are cycle-prone
    from repro.tokenize.weights import WeightTable

__all__ = ["IncrementalSSJoin"]


class IncrementalSSJoin:
    """A self-join maintained under ``add()`` calls.

    >>> pred = OverlapPredicate.absolute(2.0)
    >>> inc = IncrementalSSJoin(pred)
    >>> inc.add("r1", WeightedSet({"a": 1.0, "b": 1.0, "c": 1.0}))
    []
    >>> inc.add("r2", WeightedSet({"a": 1.0, "b": 1.0, "z": 1.0}))
    [('r1', 'r2', 2.0), ('r2', 'r1', 2.0)]
    """

    def __init__(
        self,
        predicate: OverlapPredicate,
        ordering: Optional[ElementOrdering] = None,
        metrics: Optional[ExecutionMetrics] = None,
    ) -> None:
        self.predicate = predicate
        self.ordering = ordering if ordering is not None else ElementOrdering({}, "arrival")
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.metrics.implementation = "incremental"
        self._groups: Dict[Any, WeightedSet] = {}
        self._norms: Dict[Any, float] = {}
        #: element -> [keys]: stored groups' right-side prefix postings.
        self._right_index: Dict[Any, List[Any]] = {}
        #: element -> [keys]: stored groups' left-side prefix postings.
        self._left_index: Dict[Any, List[Any]] = {}

    @classmethod
    def from_sample(
        cls,
        predicate: OverlapPredicate,
        sample: PreparedRelation,
        metrics: Optional[ExecutionMetrics] = None,
    ) -> "IncrementalSSJoin":
        """Seed the element ordering from a representative sample."""
        return cls(predicate, ordering=frequency_ordering(sample), metrics=metrics)

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, key: object) -> bool:
        return key in self._groups

    def group(self, key: Any) -> WeightedSet:
        return self._groups[key]

    def keys(self) -> Tuple[Any, ...]:
        return tuple(self._groups)

    # -- internals ----------------------------------------------------------------

    def _prefix(
        self, wset: WeightedSet, ordered: List[Any], side: str, norm: float
    ) -> List[Any]:
        bound = (
            self.predicate.left_filter_threshold(norm)
            if side == "left"
            else self.predicate.right_filter_threshold(norm)
        )
        beta = wset.norm - bound + OVERLAP_EPSILON
        return prefix_of_sorted([(e, wset.weight(e)) for e in ordered], beta)

    # -- the operation ----------------------------------------------------------

    def add(
        self,
        key: Any,
        wset: WeightedSet,
        norm: Optional[float] = None,
    ) -> List[Tuple[Any, Any, float]]:
        """Ingest one group; return its matches against everything prior.

        Returns directed ``(left_key, right_key, overlap)`` triples —
        exactly the rows the batch self-join result would gain by adding
        this group (minus the self-pair). The new group is then indexed so
        later arrivals see it.
        """
        if key in self._groups:
            raise ReproError(f"group {key!r} already ingested")
        effective_norm = wset.norm if norm is None else float(norm)
        ordered = wset.sorted_elements(self.ordering.key)

        # Direction (new, old): new is the left operand.
        new_left_candidates: Set[Any] = set()
        for element in self._prefix(wset, ordered, "left", effective_norm):
            new_left_candidates.update(self._right_index.get(element, ()))
        # Direction (old, new): new is the right operand.
        new_right_candidates: Set[Any] = set()
        for element in self._prefix(wset, ordered, "right", effective_norm):
            new_right_candidates.update(self._left_index.get(element, ()))
        self.metrics.candidate_pairs += len(new_left_candidates) + len(
            new_right_candidates
        )

        results: List[Tuple[Any, Any, float]] = []
        overlap_cache: Dict[Any, float] = {}

        def exact_overlap(other_key: Any) -> float:
            if other_key not in overlap_cache:
                self.metrics.similarity_comparisons += 1
                overlap_cache[other_key] = wset.overlap(self._groups[other_key])
            return overlap_cache[other_key]

        for other_key in new_left_candidates:
            overlap = exact_overlap(other_key)
            if overlap > 0 and self.predicate.satisfied(
                overlap, effective_norm, self._norms[other_key]
            ):
                results.append((key, other_key, overlap))
        for other_key in new_right_candidates:
            overlap = exact_overlap(other_key)
            if overlap > 0 and self.predicate.satisfied(
                overlap, self._norms[other_key], effective_norm
            ):
                results.append((other_key, key, overlap))
        self.metrics.output_pairs += len(results)

        # Index the new group's prefixes for future probes.
        for element in self._prefix(wset, ordered, "right", effective_norm):
            self._right_index.setdefault(element, []).append(key)
        for element in self._prefix(wset, ordered, "left", effective_norm):
            self._left_index.setdefault(element, []).append(key)

        self._groups[key] = wset
        self._norms[key] = effective_norm
        results.sort(key=lambda r: (repr(r[0]), repr(r[1])))
        return results

    def add_tokens(
        self,
        key: Any,
        tokens: Sequence[Any],
        weights: Optional["WeightTable"] = None,
        norm: Optional[float] = None,
    ) -> List[Tuple[Any, Any, float]]:
        """Convenience: ordinal-encode *tokens* and :meth:`add` the set."""
        from repro.tokenize.weights import build_weighted_set

        return self.add(key, build_weighted_set(tokens, weights=weights), norm=norm)
