"""Prefix extraction under a global ordering (paper Lemma 1).

``prefix_β(r)`` is "the subset corresponding to the shortest prefix (in
sorted order), the weights of whose elements add up to more than β".
Lemma 1: if ``wt(s1 ∩ s2) ≥ α`` then with ``β_i = wt(s_i) − α`` the two
prefixes intersect — so an equi-join of prefixes loses no qualifying pair.

Degenerate cases, handled here and exercised by the property tests:

* ``β < 0`` (i.e. α > wt(s)): the group can never reach overlap α, so the
  empty prefix — pruning the whole group — is sound.
* ``β ≥ wt(s)``: no proper prefix exceeds β; the whole set is kept
  (no filtering), which is trivially sound.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.core.ordering import ElementOrdering
from repro.tokenize.sets import WeightedSet

__all__ = ["prefix_elements", "prefix_set", "prefix_of_sorted"]


def prefix_of_sorted(
    elements_with_weights: Sequence[Tuple[Any, float]], beta: float
) -> List[Any]:
    """Prefix of an *already sorted* (element, weight) sequence.

    Returns the shortest prefix whose cumulative weight strictly exceeds
    *beta*; the whole list if none does; the empty list if ``beta < 0``.
    """
    if beta < 0:
        return []
    out: List[Any] = []
    cumulative = 0.0
    for element, weight in elements_with_weights:
        out.append(element)
        cumulative += weight
        if cumulative > beta:
            return out
    return out  # cumulative never exceeded beta: keep everything


def prefix_elements(
    wset: WeightedSet, ordering: ElementOrdering, beta: float
) -> List[Any]:
    """``prefix_β`` of a weighted set under *ordering* (Lemma 1's filter)."""
    ordered = wset.sorted_elements(ordering.key)
    return prefix_of_sorted([(e, wset.weight(e)) for e in ordered], beta)


def prefix_set(
    wset: WeightedSet, ordering: ElementOrdering, beta: float
) -> WeightedSet:
    """Same as :func:`prefix_elements` but returned as a WeightedSet."""
    return wset.restrict(prefix_elements(wset, ordering, beta))
