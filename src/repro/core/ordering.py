"""Global element orderings ``O`` for the prefix-filter (Section 4.3.2).

Lemma 1 holds for *any* fixed total order, but the order decides how many
candidates survive: ordering elements by **increasing frequency** puts rare
elements in the kept prefix and pushes heavy hitters ("the", "inc") into the
dropped suffix, minimizing the filtered equi-join. The paper implements this
via IDF weights, "since high frequency elements have lower weights, we
filter them out first."

Alternative orderings (random, decreasing frequency) are provided for the
ablation benchmark that demonstrates the choice matters.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable

from repro.core.prepared import PreparedRelation
from repro.tokenize.weights import WeightTable

__all__ = [
    "ElementOrdering",
    "frequency_ordering",
    "weight_ordering",
    "random_ordering",
    "reverse_frequency_ordering",
]


class ElementOrdering:
    """A fixed total order over set elements.

    Internally a rank table (element -> position). The sort key is a plain
    ``int`` — the hot loops of every prefix plan call :meth:`key` once per
    element per sort, so it must not allocate. Unseen elements sort after
    all ranked ones: on first sight each is assigned the next
    sentinel-offset rank in a secondary overflow table, which keeps the
    order total, stable across repeat queries, and allocation-free (the
    pre-PR implementation returned a fresh ``(rank, repr)`` tuple per
    call; see the encoded layer in :mod:`repro.core.dictionary` for the
    fully integer-native form of the same idea).
    """

    #: Default cap on the memoized overflow table. Past it, unseen
    #: elements fall back to a computed (memory-free) rank, so a
    #: long-lived ordering probed with an endless stream of new elements
    #: cannot grow without bound.
    DEFAULT_MAX_OVERFLOW = 1 << 16

    def __init__(
        self,
        ranks: Dict[Any, int],
        description: str = "custom",
        max_overflow: int = DEFAULT_MAX_OVERFLOW,
    ) -> None:
        if max_overflow < 0:
            raise ValueError(f"max_overflow must be >= 0, got {max_overflow}")
        self._ranks = ranks
        self.description = description
        self._sentinel = len(ranks)
        self._overflow: Dict[Any, int] = {}
        self._max_overflow = max_overflow
        # Computed fallback ranks start after every possible memoized
        # rank, so the three tiers (ranked < memoized < computed) never
        # interleave even as the overflow table fills.
        self._fallback_base = self._sentinel + max_overflow

    def key(self, element: Any) -> int:
        """Sort key implementing the total order (an ``int`` rank).

        Ranked elements return their table rank; unseen elements get
        ``sentinel + k`` where ``k`` is their first-seen position in the
        overflow table — always after every ranked element, and the same
        rank every time the element is queried again. Once the overflow
        table holds ``max_overflow`` entries, further unseen elements get
        a *computed* rank derived from their repr: still deterministic
        (identical across processes, even), still after every memoized
        rank, but requiring no storage. It is injective because ``repr``
        starts with a printable character, so the big-endian integer of
        its UTF-8 bytes never collides across distinct reprs.
        """
        rank = self._ranks.get(element)
        if rank is not None:
            return rank
        overflow = self._overflow
        rank = overflow.get(element)
        if rank is None:
            if len(overflow) < self._max_overflow:
                rank = self._sentinel + len(overflow)
                overflow[element] = rank
            else:
                rank = self._fallback_base + int.from_bytes(
                    repr(element).encode("utf-8"), "big"
                )
        return rank

    @property
    def overflow_size(self) -> int:
        """Number of memoized unseen-element ranks (bounded by
        ``max_overflow``)."""
        return len(self._overflow)

    def __call__(self, element: Any) -> int:
        return self.key(element)

    def rank_table(self) -> Dict[Any, int]:
        """The materialized element -> rank mapping (the paper's
        "order table" one would join with in SQL)."""
        return dict(self._ranks)

    def __repr__(self) -> str:
        return f"ElementOrdering({self.description}, |ranked|={len(self._ranks)})"


def _combined_frequencies(
    relations: Iterable[PreparedRelation],
) -> Dict[Any, int]:
    freq: Dict[Any, int] = {}
    for rel in relations:
        for e, n in rel.element_frequencies().items():
            freq[e] = freq.get(e, 0) + n
    return freq


def frequency_ordering(*relations: PreparedRelation) -> ElementOrdering:
    """Increasing joint frequency — the paper's recommended order.

    Ties are broken by element repr so the order is stable across runs.
    """
    freq = _combined_frequencies(relations)
    ranked = sorted(freq, key=lambda e: (freq[e], repr(e)))
    return ElementOrdering(
        {e: i for i, e in enumerate(ranked)}, description="increasing-frequency"
    )


def reverse_frequency_ordering(*relations: PreparedRelation) -> ElementOrdering:
    """Decreasing frequency — the adversarial order, for the ablation.

    Keeps the most common elements in every prefix, maximizing candidate
    pairs; Lemma 1 still guarantees correctness.
    """
    freq = _combined_frequencies(relations)
    ranked = sorted(freq, key=lambda e: (-freq[e], repr(e)))
    return ElementOrdering(
        {e: i for i, e in enumerate(ranked)}, description="decreasing-frequency"
    )


def weight_ordering(
    weights: WeightTable, *relations: PreparedRelation
) -> ElementOrdering:
    """Decreasing IDF weight — the paper's actual implementation device.

    With IDF weights this coincides with increasing frequency over the
    fitted corpus; it differs only on tokens the weight table has not seen.
    """
    universe = set()
    for rel in relations:
        for wset in rel.groups.values():
            universe.update(wset.elements())
    ranked = sorted(universe, key=lambda e: (-weights.element_weight(e), repr(e)))
    return ElementOrdering(
        {e: i for i, e in enumerate(ranked)}, description="decreasing-weight"
    )


def random_ordering(
    seed: int, *relations: PreparedRelation
) -> ElementOrdering:
    """A random (but seeded, hence reproducible) total order — ablation."""
    universe = sorted(
        {e for rel in relations for wset in rel.groups.values() for e in wset.elements()},
        key=repr,
    )
    rng = random.Random(seed)
    rng.shuffle(universe)
    return ElementOrdering(
        {e: i for i, e in enumerate(universe)}, description=f"random(seed={seed})"
    )
