"""Encoded prefix-filter SSJoin: Figure 8 over integer id columns.

Same logical plan as :mod:`repro.core.prefix_filter` — β-prefix both
sides, equi-join prefixes for candidates, verify full overlaps — but run
over :class:`~repro.core.encoded.EncodedPreparedRelation` columns:

1. **Prefix extraction** is a cumulative-weight walk over each group's
   weight array; the kept prefix is a leading *slice* of the id array
   (ids are stored in the ordering ``O``), no per-element key calls.
2. **Candidate enumeration** probes an ``int id -> [right group]``
   inverted index built from the right prefixes.
3. **Verification** replaces Figure 8's two hash-joins-back-to-base (the
   regroup step) with a merge-intersection kernel over the two groups'
   full sorted id arrays, summing left-side weights of shared ids — the
   same ``SUM(R.w)`` every other implementation computes.  By default
   candidates first pass through the :mod:`repro.core.verify` engine,
   which kills most non-qualifying pairs with bitmap and positional
   bounds before any merge runs and early-exits the merges it does run;
   pass ``verify_config=VerifyConfig.disabled()`` for the plain path.

Output is a :data:`~repro.core.basic.RESULT_SCHEMA` relation with exactly
the rows of the tuple-based plans (row order may differ; overlap values
agree to float round-off, absorbed by the shared ``OVERLAP_EPSILON``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.basic import RESULT_SCHEMA
from repro.core.encoded import EncodedPreparedRelation, encode_pair
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREFIX,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.verify import VerifyConfig, engine_for_encoded
from repro.relational.batch import ColumnarRelation
from repro.relational.relation import Relation

__all__ = [
    "encoded_prefix_ssjoin",
    "group_prefix_lengths",
    "merge_overlap",
    "prefix_length",
]


def prefix_length(weights: Sequence[float], beta: float) -> int:
    """Length of the shortest prefix whose cumulative weight exceeds *beta*.

    Mirrors :func:`repro.core.prefixes.prefix_of_sorted` exactly: 0 when
    ``beta < 0`` (the group can never qualify), the whole array when no
    proper prefix exceeds β.
    """
    if beta < 0:
        return 0
    cumulative = 0.0
    for i, w in enumerate(weights):
        cumulative += w
        if cumulative > beta:
            return i + 1
    return len(weights)


def merge_overlap(
    left_ids: Sequence[int],
    left_weights: Sequence[float],
    right_ids: Sequence[int],
) -> float:
    """Merge-intersection kernel: ``SUM(left weight)`` over shared ids.

    Both id arrays are sorted ascending (the ordering ``O``), so one
    linear pass finds the intersection without hashing.
    """
    i = j = 0
    n_left = len(left_ids)
    n_right = len(right_ids)
    total = 0.0
    while i < n_left and j < n_right:
        li = left_ids[i]
        rj = right_ids[j]
        if li == rj:
            total += left_weights[i]
            i += 1
            j += 1
        elif li < rj:
            i += 1
        else:
            j += 1
    return total


def group_prefix_lengths(
    encoded: EncodedPreparedRelation, bound_fn: Callable[[float], float]
) -> List[int]:
    """β-prefix length per group (β widened by the shared epsilon, as in
    the tuple plans, so boundary pairs are never pruned).

    Public because the parallel executor computes prefixes once in the
    parent process and ships the lengths to token-range shard workers.

    Memoized on ``encoded.prefix_cache``: the lengths are a pure function
    of the encoding and the predicate bound, and a cached encoding (the
    normal case via :class:`~repro.core.encoded.EncodingCache`) is
    executed against many times — per sweep repeat, per worker count —
    so the per-group recomputation is pure waste after the first call.
    Predicates are frozen/hashable; an unhashable bound owner skips the
    cache rather than failing.
    """
    key = None
    try:
        owner = bound_fn.__self__
        hash(owner)  # unhashable owners (mutable predicates) skip the cache
        key = (getattr(bound_fn, "__name__", None), owner)
    except (AttributeError, TypeError):
        pass
    if key is not None:
        cached = encoded.prefix_cache.get(key)
        if cached is not None:
            return cached
    norms = encoded.norms
    set_norms = encoded.set_norms
    weights = encoded.weights
    lengths = [
        prefix_length(weights[g], set_norms[g] - bound_fn(norms[g]) + OVERLAP_EPSILON)
        for g in range(len(weights))
    ]
    if key is not None:
        encoded.prefix_cache[key] = lengths
    return lengths


def encoded_prefix_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    encoding: Optional[Tuple[EncodedPreparedRelation, EncodedPreparedRelation]] = None,
    verify_config: Optional[VerifyConfig] = None,
) -> Relation:
    """Execute the encoded Figure 8 plan; returns a RESULT_SCHEMA relation.

    *ordering* selects the dictionary order (default: joint frequency,
    identical to :func:`~repro.core.ordering.frequency_ordering`). Pass a
    prebuilt *encoding* pair to skip the cache lookup entirely.
    *verify_config* tunes the verification engine (None = auto).
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "encoded-prefix"

    with m.phase(PHASE_PREP):
        if encoding is None:
            enc_left, enc_right, _ = encode_pair(left, right, ordering, metrics=m)
        else:
            enc_left, enc_right = encoding
        m.prepared_rows += enc_left.num_elements + enc_right.num_elements

    with m.phase(PHASE_PREFIX):
        left_prefix = group_prefix_lengths(enc_left, predicate.left_filter_threshold)
        right_prefix = group_prefix_lengths(enc_right, predicate.right_filter_threshold)
        m.prefix_rows += sum(left_prefix) + sum(right_prefix)

    with m.phase(PHASE_SSJOIN):
        # Inverted index over the right prefixes: id -> [right group pos].
        index: Dict[int, List[int]] = {}
        right_ids = enc_right.ids
        for g, k in enumerate(right_prefix):
            ids = right_ids[g]
            for t in ids[:k]:
                index.setdefault(t, []).append(g)

        # Probe left prefixes; dedup to candidate pairs per left group.
        candidates: List[Tuple[int, List[int]]] = []
        left_ids = enc_left.ids
        probe_rows = 0
        for g, k in enumerate(left_prefix):
            if k == 0:
                continue
            matched: set = set()
            for t in left_ids[g][:k]:
                postings = index.get(t)
                if postings:
                    probe_rows += len(postings)
                    matched.update(postings)
            if matched:
                candidates.append((g, sorted(matched)))
                m.candidate_pairs += len(matched)
        m.equijoin_rows += probe_rows

    with m.phase(PHASE_FILTER):
        left_keys = enc_left.keys
        right_keys = enc_right.keys
        left_weights = enc_left.weights
        left_norms = enc_left.norms
        right_norms = enc_right.norms
        engine = engine_for_encoded(
            enc_left, enc_right, predicate, left_prefix, right_prefix,
            config=verify_config,
        )
        if engine is not None:
            columns = engine.verify_candidates_columns(
                candidates, left_keys, right_keys
            )
            engine.flush(m)
        else:
            # Fallback merge loop emits the same five parallel columns the
            # engine does, so both paths feed the batch protocol tuple-free.
            col_ar: List[object] = []
            col_as: List[object] = []
            col_ov: List[float] = []
            col_nr: List[float] = []
            col_ns: List[float] = []
            satisfied = predicate.satisfied
            for g, matches in candidates:
                lids = left_ids[g]
                lw = left_weights[g]
                norm_r = left_norms[g]
                a_r = left_keys[g]
                for h in matches:
                    overlap = merge_overlap(lids, lw, right_ids[h])
                    norm_s = right_norms[h]
                    if satisfied(overlap, norm_r, norm_s):
                        col_ar.append(a_r)
                        col_as.append(right_keys[h])
                        col_ov.append(overlap)
                        col_nr.append(norm_r)
                        col_ns.append(norm_s)
            columns = (col_ar, col_as, col_ov, col_nr, col_ns)
        result = ColumnarRelation(RESULT_SCHEMA, columns)
        m.output_pairs += len(result)
    return result
