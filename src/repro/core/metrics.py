"""Execution metrics: the phase timings and counters the paper reports.

Figures 10–13 split each run into **Prep / Prefix-filter / SSJoin / Filter**
phases; Table 1 counts similarity-function invocations; Table 2 reports
SSJoin input and output sizes. :class:`ExecutionMetrics` collects all of
these, and every SSJoin implementation and similarity join threads one
through its phases.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

__all__ = ["ExecutionMetrics", "PHASE_PREP", "PHASE_PREFIX", "PHASE_SSJOIN", "PHASE_FILTER"]

PHASE_PREP = "prep"
PHASE_PREFIX = "prefix_filter"
PHASE_SSJOIN = "ssjoin"
PHASE_FILTER = "filter"

#: Canonical phase order for reports.
PHASES = (PHASE_PREP, PHASE_PREFIX, PHASE_SSJOIN, PHASE_FILTER)


@dataclass  # repro: ignore[RL204] -- mutable by design: counters accumulate during execution
class ExecutionMetrics:
    """Counters and per-phase wall-clock timings for one join execution.

    Attributes
    ----------
    phase_seconds:
        Accumulated wall-clock time per phase name. Phases may be entered
        multiple times; durations add up.
    prepared_rows:
        Rows of the normalized input fed to the SSJoin (Table 2's
        "SSJoin Input").
    prefix_rows:
        Rows surviving the prefix filter (both sides combined).
    equijoin_rows:
        Element-level matches produced by the core equi-join.
    candidate_pairs:
        Distinct ⟨R.A, S.A⟩ group pairs compared against the predicate.
    output_pairs:
        Pairs satisfying the SSJoin predicate.
    similarity_comparisons:
        Invocations of the post-filter similarity UDF (Table 1's metric).
    result_pairs:
        Final pairs after the similarity post-filter.
    encode_cache_hits / encode_cache_misses:
        Encoding-cache outcomes for the dictionary-encoded fast path: a
        hit means the ``TokenDictionary`` + columnar arrays of a previous
        content-identical input pair were reused; a miss means they were
        built (and cached) for this execution.
    verify_candidates / verify_bitmap_pruned / verify_position_pruned /
    verify_merges_run / verify_merges_early_exited:
        Per-stage verification-engine counters (:mod:`repro.core.verify`):
        candidates entering the engine, candidates killed by the bitmap
        XOR-popcount bound, candidates killed by the positional /
        remaining-weight bound, merge-intersections actually run, and
        merges abandoned early once the threshold became unreachable.
        All zero when the engine is disabled or the plan has no engine.
    parallel_stats:
        When the run went through :mod:`repro.parallel`, the
        ``ParallelReport.to_dict()`` telemetry — strategy, worker count,
        per-shard timings — for the bench harness's ``parallel`` block.
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    prepared_rows: int = 0
    prefix_rows: int = 0
    equijoin_rows: int = 0
    candidate_pairs: int = 0
    output_pairs: int = 0
    similarity_comparisons: int = 0
    result_pairs: int = 0
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0
    verify_candidates: int = 0
    verify_bitmap_pruned: int = 0
    verify_position_pruned: int = 0
    verify_merges_run: int = 0
    verify_merges_early_exited: int = 0
    implementation: Optional[str] = None
    parallel_stats: Optional[Dict[str, Any]] = None
    #: Open-ended side-channel telemetry keyed by subsystem — e.g.
    #: ``extra["encoding_cache"]`` carries the tiered cache's
    #: hit/miss/eviction/disk-hit counters, ``extra["storage"]`` the
    #: buffer-pool stats when the run scanned attached tables.
    extra: Dict[str, Any] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall time into phase *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def seconds(self, name: str) -> float:
        return self.phase_seconds.get(name, 0.0)

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one (for multi-stage joins)."""
        for name, secs in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + secs
        self.prepared_rows += other.prepared_rows
        self.prefix_rows += other.prefix_rows
        self.equijoin_rows += other.equijoin_rows
        self.candidate_pairs += other.candidate_pairs
        self.output_pairs += other.output_pairs
        self.similarity_comparisons += other.similarity_comparisons
        self.result_pairs += other.result_pairs
        self.encode_cache_hits += other.encode_cache_hits
        self.encode_cache_misses += other.encode_cache_misses
        self.verify_candidates += other.verify_candidates
        self.verify_bitmap_pruned += other.verify_bitmap_pruned
        self.verify_position_pruned += other.verify_position_pruned
        self.verify_merges_run += other.verify_merges_run
        self.verify_merges_early_exited += other.verify_merges_early_exited
        if other.parallel_stats is not None:
            # Last writer wins: the executor folds shard metrics into the
            # parent, and the parent's report is attached afterwards.
            self.parallel_stats = other.parallel_stats
        # Subsystem snapshots: newer snapshot per key replaces the older.
        self.extra.update(other.extra)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        times = ", ".join(
            f"{p}={self.phase_seconds[p]:.3f}s" for p in PHASES if p in self.phase_seconds
        )
        text = (
            f"[{self.implementation or 'ssjoin'}] {times} | "
            f"prepared={self.prepared_rows} prefix={self.prefix_rows} "
            f"equijoin={self.equijoin_rows} candidates={self.candidate_pairs} "
            f"output={self.output_pairs} udf_calls={self.similarity_comparisons} "
            f"final={self.result_pairs}"
        )
        if self.encode_cache_hits or self.encode_cache_misses:
            text += f" encode_cache={self.encode_cache_hits}h/{self.encode_cache_misses}m"
        if self.verify_candidates:
            text += (
                f" verify={self.verify_candidates}c"
                f"/{self.verify_bitmap_pruned}b"
                f"/{self.verify_position_pruned}p"
                f"/{self.verify_merges_run}m"
                f"/{self.verify_merges_early_exited}x"
            )
        return text

    def verify_stats(self) -> Dict[str, int]:
        """The verification-engine counters as a dict (bench telemetry)."""
        return {
            "candidates": self.verify_candidates,
            "bitmap_pruned": self.verify_bitmap_pruned,
            "position_pruned": self.verify_position_pruned,
            "merges_run": self.verify_merges_run,
            "merges_early_exited": self.verify_merges_early_exited,
        }
