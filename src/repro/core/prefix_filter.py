"""Prefix-filtered SSJoin implementation (paper Figure 8).

Pipeline, exactly as in the figure:

1. **prefix-filter(R)**, **prefix-filter(S)** — each group keeps only its
   ``β``-prefix under the global ordering ``O`` where
   ``β = wt(Set(a)) − α̂(a)`` and ``α̂`` is the sound per-side lower bound of
   the predicate threshold (Lemma 1 + Section 4.2's normalized-predicate
   rules).
2. Equi-join the two small filtered relations on ``B`` and project the
   distinct ⟨R.A, S.A⟩ **candidate pairs** ``T``.
3. Join ``T`` back with the *base* relations ``R`` and ``S`` to regroup the
   full element sets of each candidate pair.
4. Group by pair and apply the HAVING overlap check — identical to the
   basic plan's finish, but over a far smaller input.

The prefix extraction is the groupwise-processing operator of Section 4.3.3
specialized to "mark the prefix of each group while scanning groups ordered
by (A, O)"; :func:`prefix_filter_relation` streams groups that way.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.basic import _having_expr
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREFIX,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prefixes import prefix_of_sorted
from repro.core.prepared import PreparedRelation
from repro.relational.aggregates import agg_sum, group_by
from repro.relational.expressions import col
from repro.relational.joins import hash_join
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = ["prefix_filter_relation", "prefix_filtered_ssjoin"]

_FILTERED_SCHEMA = Schema(["a", "b", "w", "norm"])


#: Entries kept per relation in the prefix memo — enough for both sides of
#: a costing probe plus the chosen plan's re-extraction, small enough that
#: long-lived relations don't accumulate stale filtered copies.
_PREFIX_CACHE_CAPACITY = 8


def prefix_filter_relation(
    prepared: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: ElementOrdering,
    side: str,
) -> Relation:
    """``prefix-filter(R, pred)``: one row per kept prefix element.

    *side* is ``"left"`` or ``"right"`` and selects which per-side threshold
    lower bound applies. Groups whose β is negative (they can never satisfy
    the predicate) vanish entirely; groups with a non-restrictive bound pass
    through whole.

    Results are memoized on the relation per (predicate bounds, ordering,
    side): the optimizer prices prefix plans by extracting the *actual*
    prefixes, and without the memo the chosen prefix plan would repeat the
    identical extraction moments later.
    """
    cache = prepared._prefix_cache
    key = (predicate.bounds, side)
    hit = cache.get(key)
    # The entry pins its ordering, so the `is` check cannot be fooled by
    # id reuse after garbage collection.
    if hit is not None and hit[0] is ordering:
        return hit[1]
    relation = _extract_prefix_relation(prepared, predicate, ordering, side)
    if key not in cache and len(cache) >= _PREFIX_CACHE_CAPACITY:
        cache.pop(next(iter(cache)))
    cache[key] = (ordering, relation)
    return relation


def _extract_prefix_relation(
    prepared: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: ElementOrdering,
    side: str,
) -> Relation:
    bound_fn = (
        predicate.left_filter_threshold if side == "left" else predicate.right_filter_threshold
    )
    rows: List[Tuple] = []
    for a, wset in prepared.groups.items():
        norm = prepared.norms[a]
        # Widen beta by the shared overlap epsilon so boundary pairs that
        # satisfied() admits are never pruned (Lemma 1 with alpha - eps).
        beta = wset.norm - bound_fn(norm) + OVERLAP_EPSILON
        ordered = wset.sorted_elements(ordering.key)
        kept = prefix_of_sorted([(e, wset.weight(e)) for e in ordered], beta)
        rows.extend((a, b, wset.weight(b), norm) for b in kept)
    return Relation(_FILTERED_SCHEMA, rows, name=f"prefix({prepared.name})")


def prefix_filtered_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
) -> Relation:
    """Execute the Figure 8 plan; returns a :data:`RESULT_SCHEMA` relation."""
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "prefix"

    with m.phase(PHASE_PREP):
        base_r = left.relation.rename({"a": "a_r", "b": "b_r", "w": "w_r", "norm": "norm_r"})
        base_s = right.relation.rename({"a": "a_s", "b": "b_s", "w": "w_s", "norm": "norm_s"})
        m.prepared_rows += len(base_r) + len(base_s)
        if ordering is None:
            ordering = frequency_ordering(left, right)

    with m.phase(PHASE_PREFIX):
        pr = prefix_filter_relation(left, predicate, ordering, side="left")
        ps = prefix_filter_relation(right, predicate, ordering, side="right")
        m.prefix_rows += len(pr) + len(ps)

    with m.phase(PHASE_SSJOIN):
        # Candidate enumeration: tiny equi-join of the two prefixes.
        matched = hash_join(
            pr.rename({"a": "a_r", "b": "b", "w": "w_r_p", "norm": "norm_r_p"}),
            ps.rename({"a": "a_s", "b": "b_s", "w": "w_s_p", "norm": "norm_s_p"}),
            keys=[("b", "b_s")],
        )
        candidates = matched.project(["a_r", "a_s"]).distinct()
        m.candidate_pairs += len(candidates)

        # Regroup: join candidates back with both base relations (the extra
        # joins the inline variant exists to avoid). The base sides are
        # renamed first so the join outputs have no column-name clashes.
        with_r = hash_join(
            candidates,
            base_r.rename({"a_r": "ra"}),
            keys=[("a_r", "ra")],
        ).project(["a_r", "a_s", "b_r", "w_r", "norm_r"])
        full = hash_join(
            with_r,
            base_s.rename({"a_s": "sa"}),
            keys=[("a_s", "sa"), ("b_r", "b_s")],
        )
        m.equijoin_rows += len(full)

    with m.phase(PHASE_FILTER):
        grouped = group_by(
            full,
            keys=["a_r", "norm_r", "a_s", "norm_s"],
            aggregates=[agg_sum("overlap", col("w_r"))],
            having=_having_expr(predicate, "overlap", "norm_r", "norm_s"),
        )
        result = grouped.project(["a_r", "a_s", "overlap", "norm_r", "norm_s"])
        m.output_pairs += len(result)
    return result
