"""The SSJoin primitive operator — the paper's core contribution.

Exports the operator facade, the predicate language of Definition 1, the
normalized set representation, the three physical implementations of
Section 4, the prefix machinery of Lemma 1, and the cost-based optimizer.
"""

from repro.core.basic import RESULT_SCHEMA, basic_ssjoin
from repro.core.dictionary import TokenDictionary
from repro.core.encoded import (
    EncodedPreparedRelation,
    EncodingCache,
    encode_pair,
    encoding_cached,
    global_encoding_cache,
)
from repro.core.encoded_index import EncodedInvertedIndex, encoded_index_probe_ssjoin
from repro.core.encoded_prefix import encoded_prefix_ssjoin, merge_overlap
from repro.core.incremental import IncrementalSSJoin
from repro.core.index import InvertedIndex, index_probe_ssjoin
from repro.core.inline import encode_set, encoded_overlap, inline_ssjoin
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREFIX,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.optimizer import (
    CostEstimate,
    CostModel,
    calibrate_cost_model,
    choose_implementation,
)
from repro.core.ordering import (
    ElementOrdering,
    frequency_ordering,
    random_ordering,
    reverse_frequency_ordering,
    weight_ordering,
)
from repro.core.predicate import (
    AbsoluteBound,
    Bound,
    LeftNormBound,
    MaxNormBound,
    OverlapPredicate,
    RightNormBound,
    SumNormBound,
)
from repro.core.prefix_filter import prefix_filter_relation, prefix_filtered_ssjoin
from repro.core.prefixes import prefix_elements, prefix_of_sorted, prefix_set
from repro.core.prepared import (
    NORM_CARDINALITY,
    NORM_LENGTH,
    NORM_WEIGHT,
    PreparedRelation,
)
from repro.core.partitioned import (
    PartitionedResult,
    partition_by_set_size,
    partitioned_ssjoin,
)
from repro.core.physical import execute_physical, execute_ssjoin_node
from repro.core.ssjoin import SSJoin, SSJoinResult, ssjoin
from repro.core.validation import VerificationReport, explain_pair, verify_result

__all__ = [
    "RESULT_SCHEMA",
    "basic_ssjoin",
    "TokenDictionary",
    "EncodedPreparedRelation",
    "EncodingCache",
    "encode_pair",
    "encoding_cached",
    "global_encoding_cache",
    "EncodedInvertedIndex",
    "encoded_index_probe_ssjoin",
    "encoded_prefix_ssjoin",
    "merge_overlap",
    "IncrementalSSJoin",
    "InvertedIndex",
    "index_probe_ssjoin",
    "encode_set",
    "encoded_overlap",
    "inline_ssjoin",
    "PHASE_FILTER",
    "PHASE_PREFIX",
    "PHASE_PREP",
    "PHASE_SSJOIN",
    "ExecutionMetrics",
    "CostEstimate",
    "CostModel",
    "calibrate_cost_model",
    "choose_implementation",
    "ElementOrdering",
    "frequency_ordering",
    "random_ordering",
    "reverse_frequency_ordering",
    "weight_ordering",
    "AbsoluteBound",
    "Bound",
    "LeftNormBound",
    "MaxNormBound",
    "OverlapPredicate",
    "RightNormBound",
    "SumNormBound",
    "prefix_filter_relation",
    "prefix_filtered_ssjoin",
    "prefix_elements",
    "prefix_of_sorted",
    "prefix_set",
    "NORM_CARDINALITY",
    "NORM_LENGTH",
    "NORM_WEIGHT",
    "PreparedRelation",
    "PartitionedResult",
    "partition_by_set_size",
    "partitioned_ssjoin",
    "SSJoin",
    "SSJoinResult",
    "ssjoin",
    "execute_physical",
    "execute_ssjoin_node",
    "VerificationReport",
    "explain_pair",
    "verify_result",
]
