"""Index-probe SSJoin: the inverted-index strategy of Sarawagi & Kirpal [13].

The paper's related-work section contrasts its operator-composition
approach with [13]'s "fixed implementation based on inverted indexes", and
its Section 5 observes the SQL optimizer never picked index plans — hence
the argument for cost-based choice. To make that argument testable, this
module implements the index plan as a fourth physical implementation:

1. build an inverted index ``element -> [(a_s, weight, norm_s)]`` over the
   right relation;
2. probe it once per left group, accumulating per-``a_s`` overlap — the
   OptMerge-style early termination applies the prefix idea on the *probe*
   side: only the left group's β-prefix elements consult the index to
   discover candidates, while the remaining (suffix) elements only update
   overlaps of candidates already discovered;
3. emit pairs satisfying the predicate.

Correct for the same reason the prefix-filtered plan is: a qualifying pair
must share a left-prefix element with the right set (Lemma 1 applied with
the right-side filter threshold at zero, i.e. the whole right set indexed).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.basic import RESULT_SCHEMA
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OVERLAP_EPSILON, OverlapPredicate
from repro.core.prefixes import prefix_of_sorted
from repro.core.prepared import PreparedRelation
from repro.relational.relation import Relation

__all__ = ["InvertedIndex", "index_probe_ssjoin"]


class InvertedIndex:
    """Element → postings over a prepared relation.

    Postings carry ``(group_key, weight, norm)`` so a probe can accumulate
    weighted overlaps and evaluate normalized predicates without touching
    the base relation again.
    """

    def __init__(self, prepared: PreparedRelation) -> None:
        self.prepared = prepared
        self._postings: Dict[Any, List[Tuple[Any, float, float]]] = {}
        for a, wset in prepared.groups.items():
            norm = prepared.norms[a]
            for element, weight in wset.items():
                self._postings.setdefault(element, []).append((a, weight, norm))

    def postings(self, element: Any) -> List[Tuple[Any, float, float]]:
        return self._postings.get(element, [])

    @property
    def num_elements(self) -> int:
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        return sum(len(p) for p in self._postings.values())

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(elements={self.num_elements}, "
            f"postings={self.num_postings})"
        )


def index_probe_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    index: Optional[InvertedIndex] = None,
) -> Relation:
    """Probe-side SSJoin; returns a :data:`RESULT_SCHEMA` relation.

    Pass a prebuilt *index* to amortize index construction across calls
    (the lookup-workload pattern [13] optimizes for).
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "probe"

    with m.phase(PHASE_PREP):
        if ordering is None:
            ordering = frequency_ordering(left, right)
        if index is None:
            index = InvertedIndex(right)
        m.prepared_rows += left.num_elements + index.num_postings

    out_rows: List[Tuple] = []
    with m.phase(PHASE_SSJOIN):
        for a_r, wset in left.groups.items():
            norm_r = left.norms[a_r]
            beta = wset.norm - predicate.left_filter_threshold(norm_r) + OVERLAP_EPSILON
            ordered = wset.sorted_elements(ordering.key)
            prefix = prefix_of_sorted([(e, wset.weight(e)) for e in ordered], beta)
            if not prefix:
                continue
            prefix_set = set(prefix)

            # Discovery pass: only prefix elements can introduce candidates.
            overlaps: Dict[Any, float] = {}
            norms_s: Dict[Any, float] = {}
            for element in prefix:
                weight = wset.weight(element)
                for a_s, _w_s, norm_s in index.postings(element):
                    overlaps[a_s] = overlaps.get(a_s, 0.0) + weight
                    norms_s[a_s] = norm_s
            if not overlaps:
                continue
            m.candidate_pairs += len(overlaps)

            # Completion pass: suffix elements only grow known candidates.
            candidates = overlaps.keys()
            for element in ordered:
                if element in prefix_set:
                    continue
                weight = wset.weight(element)
                for a_s, _w_s, _norm_s in index.postings(element):
                    if a_s in overlaps:
                        overlaps[a_s] += weight
            m.equijoin_rows += sum(1 for _ in candidates)

            for a_s, overlap in overlaps.items():
                if predicate.satisfied(overlap, norm_r, norms_s[a_s]):
                    out_rows.append((a_r, a_s, overlap, norm_r, norms_s[a_s]))

    with m.phase(PHASE_FILTER):
        result = Relation(RESULT_SCHEMA, out_rows)
        m.output_pairs += len(result)
    return result
