"""Bitmap-signature verification engine: prune candidates before the merge.

The prefix-filter plans (Figures 8–9) spend most of their verification
wall time on full merge-intersections even though, at realistic
thresholds, the large majority of candidate pairs fail the predicate.
This module sits between candidate generation and the final overlap
check in every prefix-filter path and kills most losers in O(words)
before any merge runs, with three stages ordered cheapest-first:

1. **Bitmap stage** — each encoded set is packed into a fixed-width bit
   signature (one Python int per group; bit ``id % nbits``).  For two
   sets ``A``, ``B`` every bit set in ``sig_A XOR sig_B`` witnesses at
   least one element of the symmetric difference, so
   ``popcount(XOR) <= |A| + |B| - 2·|A ∩ B|`` and therefore

       ``|A ∩ B| <= (|A| + |B| - popcount(sig_A ^ sig_B)) / 2``

   — a sound upper bound under *any* id→bit mapping, collisions
   included (the Bitmap Filter bound of Sandes et al.).  Note that the
   tempting ``popcount(AND)`` is **not** sound: two distinct shared ids
   colliding into one bit undercount the intersection.  A degenerate
   pre-test runs even before the popcount: the overlap can never exceed
   the left group's total weight, so ``total_weight < cutoff`` kills
   the pair with three float ops.
2. **Positional / remaining-weight stage** — the pair's smallest common
   token sits at position ``p`` of the left array and ``j`` of the
   right array (both inside the β-prefixes; see
   :meth:`VerificationEngine.verify_group`), so the overlap can reach at
   most ``min(wt(left[p:]), (|B| - j) · max_left_weight)``.
3. **Early-exit merge** — survivors run the ordinary merge-intersection,
   abandoned as soon as the accumulated overlap plus the remaining left
   suffix weight cannot reach the pair threshold.  A merge that runs to
   completion sums exactly the same weights in exactly the same order as
   :func:`repro.core.encoded_prefix.merge_overlap`, so emitted overlap
   values are bit-identical to the unfiltered plan's.

Weighted soundness (satellite fix): the popcount bound counts *elements*
while the predicates threshold *weights* (overlap sums left-side
weights).  Predicates carry no per-element weight function, so the
count bounds are made weight-aware by scaling with the group's maximum
element weight: ``overlap <= |A ∩ B| · max_w(A)``.  For unweighted sets
(``max_w = 1``) the count bound is used exactly.  The ``SSJ109``
invariant rule (:mod:`repro.analysis.invariants`) asserts behaviorally
that the engine never prunes a pair the basic implementation emits.

Signature caching (satellite fix): signatures are cached columnar on the
:class:`~repro.core.encoded.EncodedPreparedRelation`, keyed by signature
width *and* guarded by the dictionary size they were packed under.  An
encoding returned by an :class:`~repro.core.encoded.EncodingCache` hit
is shared across joins whose predicates may resolve different widths;
the per-width key keeps them apart, and the universe guard rebuilds
signatures whenever the backing :class:`TokenDictionary` has grown since
packing — a stale width mapping must never mis-prune.

Every stage is observable: per-stage counters (candidates in,
bitmap-pruned, position-pruned, merges run, merges early-exited) land in
:class:`~repro.core.metrics.ExecutionMetrics` and flow into bench
telemetry (``verify_engine`` block of ``BENCH_core.json``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.core.predicate import (
    OVERLAP_EPSILON,
    AbsoluteBound,
    LeftNormBound,
    MaxNormBound,
    OverlapPredicate,
    RightNormBound,
    SumNormBound,
)

if TYPE_CHECKING:  # circular-import guard: encoded.py does not need us at import time
    from repro.core.encoded import EncodedPreparedRelation

__all__ = [
    "BYPASS_STRICTNESS",
    "MAX_SIGNATURE_BITS",
    "MIN_SIGNATURE_BITS",
    "VerifyConfig",
    "VerificationEngine",
    "bounded_overlap_count",
    "choose_signature_bits",
    "cumulative_weights_for",
    "engine_for_encoded",
    "estimated_prune_fraction",
    "hashed_signature",
    "max_weights_for",
    "mean_set_norm",
    "predicate_strictness",
    "required_overlap_count",
    "signature_of",
    "signatures_for",
]

#: Bounds must only prune pairs the verify step would reject.  satisfied()
#: admits ``overlap + OVERLAP_EPSILON >= threshold`` and the upper bounds
#: themselves carry ~1-ulp float noise, so pruning keeps a margin of twice
#: the shared epsilon below the threshold.
PRUNE_MARGIN = 2.0 * OVERLAP_EPSILON

#: Signature width limits (bits).  Small widths still prune well because
#: the XOR bound degrades only with cross-set collisions (expected
#: ``|A ∪ B|^2 / 2·nbits``), which stay negligible for word-token sets;
#: beyond 256 bits the multi-limb XOR/popcount cost grows measurably
#: (each extra 64 bits is one more limb) with no prune-rate return —
#: on the Fig-12 sweep at 60k rows, 1024-bit signatures prune ~0.2%
#: more candidates than 256-bit ones.
MIN_SIGNATURE_BITS = 64
MAX_SIGNATURE_BITS = 256

#: Predicates whose effective threshold demands less than this fraction
#: of a typical set's weight cannot be filtered profitably — the bounds
#: almost never bind, so the engine bypasses the bitmap stage entirely.
BYPASS_STRICTNESS = 0.3


def signature_of(ids: Sequence[int], nbits: int) -> int:
    """Pack a sorted id array into an *nbits*-wide bit signature."""
    sig = 0
    for t in ids:
        sig |= 1 << (t % nbits)
    return sig


def hashed_signature(keys: Iterable[str], nbits: int) -> int:
    """Signature over string keys (inline plan): deterministic crc32 bits.

    Builtin ``hash`` is salted per process; crc32 keeps signatures — and
    with them the prune counters — identical across workers and runs.
    """
    sig = 0
    for k in keys:
        sig |= 1 << (crc32(k.encode("utf-8", "surrogatepass")) % nbits)
    return sig


def required_overlap_count(value: float) -> int:
    """Smallest integer overlap count that could still pass ``sim + 1e-9 >= t``.

    *value* is the exact real-valued overlap requirement (e.g.
    ``t/(1+t)·(|x|+|y|)`` for Jaccard).  The guard is deliberately
    generous — a relative 1e-9 plus an absolute 1e-6 — so float round-off
    in computing *value* can only make the filter admit a few extra
    candidates, never prune a qualifying pair.
    """
    return max(0, math.ceil(value * (1.0 - 1e-9) - 1e-6))


def bounded_overlap_count(
    x: Sequence[int], y: Sequence[int], required: int
) -> int:
    """Merge-count intersection, abandoned when *required* is unreachable.

    Returns the exact intersection size, or ``-1`` once
    ``count + min(remaining x, remaining y)`` drops below *required* —
    at which point the pair cannot qualify (unweighted extensions:
    ppjoin, allpairs).
    """
    i = j = count = 0
    nx, ny = len(x), len(y)
    while i < nx and j < ny:
        xi, yj = x[i], y[j]
        if xi == yj:
            count += 1
            i += 1
            j += 1
        elif xi < yj:
            i += 1
            if count + min(nx - i, ny - j) < required:
                return -1
        else:
            j += 1
            if count + min(nx - i, ny - j) < required:
                return -1
    return count


def predicate_strictness(predicate: OverlapPredicate, typical_norm: float) -> float:
    """How much of a typical set the predicate demands, in [0, ∞).

    Probes the pair threshold at ``(m, m)`` for a typical norm *m* and
    normalizes by *m* — e.g. ``two_sided(f)`` yields ``f``; the Jaccard
    reduction at resemblance *t* yields ``2t/(1+t)``.  Degenerate norms
    yield 0 (nothing to filter).
    """
    if typical_norm <= 0.0:
        return 0.0
    try:
        threshold = predicate.threshold(typical_norm, typical_norm)
    except Exception:
        return 0.0
    return max(0.0, threshold / typical_norm)


def estimated_prune_fraction(strictness: float) -> float:
    """Cost-model estimate of the candidate fraction the bounds kill.

    Linear ramp from the bypass point (no pruning) toward a 0.9 cap —
    deliberately coarse; the optimizer only needs the right ordering of
    plans, not calibrated rates.
    """
    if strictness <= BYPASS_STRICTNESS:
        return 0.0
    return min(0.9, (strictness - BYPASS_STRICTNESS) / (1.0 - BYPASS_STRICTNESS))


def choose_signature_bits(universe: int, strictness: float) -> int:
    """Signature width for a dictionary of *universe* ids, or 0 to bypass.

    Width is the next power of two covering the universe, clamped to
    [:data:`MIN_SIGNATURE_BITS`, :data:`MAX_SIGNATURE_BITS`] — wider
    cannot help (ids map injectively once ``nbits >= universe``), and
    beyond the cap XOR/popcount cost grows without prune-rate return.
    Predicates below :data:`BYPASS_STRICTNESS` get width 0: their
    thresholds are too low for the bounds to bind, so signature packing
    would be pure overhead.
    """
    if universe <= 0 or strictness < BYPASS_STRICTNESS:
        return 0
    bits = 1 << max(0, universe - 1).bit_length()
    return max(MIN_SIGNATURE_BITS, min(MAX_SIGNATURE_BITS, bits))


@dataclass(frozen=True)
class VerifyConfig:
    """Tuning knobs for the verification engine.

    ``signature_bits``: ``None`` resolves the width automatically from
    dictionary size and predicate strictness; ``0`` disables the bitmap
    stage.  ``positional`` / ``early_exit`` gate the other two stages.
    :meth:`disabled` reproduces the pre-engine plans exactly (full merge
    from position 0 for every candidate).
    """

    signature_bits: Optional[int] = None
    positional: bool = True
    early_exit: bool = True

    @classmethod
    def disabled(cls) -> "VerifyConfig":
        return cls(signature_bits=0, positional=False, early_exit=False)

    @property
    def inert(self) -> bool:
        """True when every stage is off (explicit width 0, no bounds)."""
        return (
            self.signature_bits == 0
            and not self.positional
            and not self.early_exit
        )


# ---------------------------------------------------------------------------
# Columnar caches on EncodedPreparedRelation (see encoded.verify_cache)
# ---------------------------------------------------------------------------


def signatures_for(
    encoded: "EncodedPreparedRelation", nbits: int
) -> List[int]:
    """Per-group signatures, cached columnar on the encoded relation.

    Cache entries are keyed by width and record the dictionary size they
    were packed under; if the backing dictionary has grown since (shared
    encodings via the :class:`EncodingCache`), the stale entry is
    discarded and signatures are re-packed — a signature narrower than
    its claimed width, or packed under a different id universe than the
    other side's, could mis-prune.
    """
    cache = encoded.verify_cache
    universe = len(encoded.dictionary)
    key = ("signatures", nbits)
    entry = cache.get(key)
    if entry is not None:
        built_universe, sigs = entry
        if built_universe == universe:
            return sigs
        del cache[key]  # dictionary grew: invalidate, then extend below
    sigs = [signature_of(ids, nbits) for ids in encoded.ids]
    cache[key] = (universe, sigs)
    return sigs


def max_weights_for(encoded: "EncodedPreparedRelation") -> List[float]:
    """Per-group maximum element weight (0.0 for empty groups), cached."""
    cache = encoded.verify_cache
    cached = cache.get("max_weights")
    if cached is not None:
        return cached
    maxw = [max(w) if len(w) else 0.0 for w in encoded.weights]
    cache["max_weights"] = maxw
    return maxw


def cumulative_weights_for(
    encoded: "EncodedPreparedRelation",
) -> List[List[float]]:
    """Per-group cumulative weight arrays (``cum[i] = sum(w[:i])``), cached.

    ``cum`` has ``len(group) + 1`` entries so ``cum[-1]`` is the group's
    total weight and ``total - cum[i]`` the remaining suffix weight —
    the quantities the positional bound and the early-exit merge read.
    """
    cache = encoded.verify_cache
    cached = cache.get("cum_weights")
    if cached is not None:
        return cached
    cums: List[List[float]] = []
    for weights in encoded.weights:
        cum = [0.0] * (len(weights) + 1)
        total = 0.0
        for i, w in enumerate(weights):
            total += w
            cum[i + 1] = total
        cums.append(cum)
    cache["cum_weights"] = cums
    return cums


def mean_set_norm(encoded: "EncodedPreparedRelation") -> float:
    """Mean group set-weight — the chooser's "typical norm", cached."""
    cache = encoded.verify_cache
    cached = cache.get("mean_set_norm")
    if cached is not None:
        return cached
    n = len(encoded.set_norms)
    mean = (sum(encoded.set_norms) / n) if n else 0.0
    cache["mean_set_norm"] = mean
    return mean


def _linear_terms(
    predicate: OverlapPredicate,
) -> Optional[List[Tuple[float, float, float]]]:
    """Decompose the predicate's pair threshold into linear conjunct terms.

    Every built-in bound value is (a max of) ``fl·norm_r + fr·norm_s + off``,
    so ``threshold(norm_r, norm_s)`` equals the max over the returned
    ``(fl, fr, off)`` terms — evaluated in the same order and association
    as :meth:`Bound.value`, hence *bit-identical* to the generic path
    (``MaxNormBound`` splits into its two monotone branches; ``max`` picks
    the identical float).  The engine's hot loop hoists ``fl·norm_r`` per
    left group, dropping the per-candidate threshold to a few FLOPs.
    Returns None for unknown Bound subclasses (generic fallback).
    """
    terms: List[Tuple[float, float, float]] = []
    for b in predicate.bounds:
        if isinstance(b, AbsoluteBound):
            terms.append((0.0, 0.0, b.alpha))
        elif isinstance(b, LeftNormBound):
            terms.append((b.fraction, 0.0, b.offset))
        elif isinstance(b, RightNormBound):
            terms.append((0.0, b.fraction, b.offset))
        elif isinstance(b, MaxNormBound):
            terms.append((b.fraction, 0.0, b.offset))
            terms.append((0.0, b.fraction, b.offset))
        elif isinstance(b, SumNormBound):
            terms.append((b.left_fraction, b.right_fraction, b.offset))
        else:
            return None
    return terms


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class VerificationEngine:
    """Per-execution verification state over columnar arrays.

    Operates on plain sequences so the sequential encoded plans and the
    parallel token-range workers drive the identical kernel: same bounds,
    same merge order, bit-identical overlaps, identical counters.  One
    instance per execution (or per shard); counters accumulate locally
    and are folded into :class:`ExecutionMetrics` by :meth:`flush`.
    """

    __slots__ = (
        "predicate",
        "left_ids",
        "left_weights",
        "left_norms",
        "left_prefix",
        "right_ids",
        "right_norms",
        "right_prefix",
        "left_signatures",
        "right_signatures",
        "left_max_weights",
        "nbits",
        "positional",
        "early_exit",
        "identity",
        "_terms",
        "_cums",
        "candidates",
        "bitmap_pruned",
        "position_pruned",
        "merges_run",
        "merges_early_exited",
    )

    def __init__(
        self,
        predicate: OverlapPredicate,
        left_ids: Sequence[Sequence[int]],
        left_weights: Sequence[Sequence[float]],
        left_norms: Sequence[float],
        left_prefix: Sequence[int],
        right_ids: Sequence[Sequence[int]],
        right_norms: Sequence[float],
        right_prefix: Sequence[int],
        nbits: int = 0,
        left_signatures: Optional[Sequence[int]] = None,
        right_signatures: Optional[Sequence[int]] = None,
        left_max_weights: Optional[Sequence[float]] = None,
        positional: bool = True,
        early_exit: bool = True,
        cums: Optional[Sequence[List[float]]] = None,
    ) -> None:
        self.predicate = predicate
        self.left_ids = left_ids
        self.left_weights = left_weights
        self.left_norms = left_norms
        self.left_prefix = left_prefix
        self.right_ids = right_ids
        self.right_norms = right_norms
        self.right_prefix = right_prefix
        self.nbits = nbits if (left_signatures and right_signatures) or nbits == 0 else 0
        self.left_signatures = left_signatures
        self.right_signatures = right_signatures
        self.left_max_weights = left_max_weights
        self.positional = positional
        self.early_exit = early_exit
        # Self-join detection: when both sides are the *same* columnar
        # arrays, candidate (g, g) is a group paired with itself and its
        # overlap is exactly the group's total weight — no merge needed.
        # (The total is accumulated left-to-right like merge_overlap's
        # sum, so the emitted float is bit-identical.)
        self.identity = left_ids is right_ids
        self._terms = _linear_terms(predicate)
        # Cumulative weights: prebuilt columnar (sequential plans) or a
        # lazily-filled per-group map (workers touch a range subset).
        self._cums: Dict[int, List[float]] = {}
        if cums is not None:
            self._cums = dict(enumerate(cums))
        self.candidates = 0
        self.bitmap_pruned = 0
        self.position_pruned = 0
        self.merges_run = 0
        self.merges_early_exited = 0

    def _cum_for(self, g: int) -> List[float]:
        cum = self._cums.get(g)
        if cum is None:
            weights = self.left_weights[g]
            cum = [0.0] * (len(weights) + 1)
            total = 0.0
            for i, w in enumerate(weights):
                total += w
                cum[i + 1] = total
            self._cums[g] = cum
        return cum

    def _max_weight(self, g: int) -> float:
        if self.left_max_weights is not None:
            return self.left_max_weights[g]
        weights = self.left_weights[g]
        return max(weights) if len(weights) else 0.0

    def verify_candidates(
        self,
        candidates: Sequence[Tuple[int, Sequence[int]]],
        left_keys: Optional[Sequence[object]] = None,
        right_keys: Optional[Sequence[object]] = None,
        own_lo: Optional[int] = None,
    ) -> List[Tuple[object, object, float, float, float]]:
        """Batched FILTER returning admitted RESULT_SCHEMA row tuples.

        Thin row-protocol wrapper over :meth:`verify_candidates_columns`
        (one C-level transpose); counters and values are identical.
        """
        columns = self.verify_candidates_columns(
            candidates, left_keys, right_keys, own_lo
        )
        return list(zip(*columns)) if columns[0] else []

    def verify_candidates_columns(
        self,
        candidates: Sequence[Tuple[int, Sequence[int]]],
        left_keys: Optional[Sequence[object]] = None,
        right_keys: Optional[Sequence[object]] = None,
        own_lo: Optional[int] = None,
    ) -> Tuple[List[object], List[object], List[float], List[float], List[float]]:
        """Batched FILTER: verify every ``(g, matches)`` candidate group.

        Returns the admitted pairs as five parallel RESULT_SCHEMA columns
        ``(left keys, right keys, overlaps, norm_rs, norm_ss)`` — group
        positions stand in for keys when a key list is ``None``. The
        columnar shape is the engine's native output since Layer 8: the
        encoded plans wrap it straight into a ColumnarRelation and the
        batch protocol slices it into morsels, so no row tuple is ever
        built on the hot path.  One batched call hoists every
        loop-invariant local exactly once, so a pruned candidate costs a
        handful of int/float ops.

        Contract: every ``h`` in *matches* (ascending right positions)
        was discovered through a shared β-prefix token, so the pair's
        smallest common token lies inside *both* prefixes (a common token
        ``t' < t`` would sit at smaller positions on both sides, i.e.
        inside both prefixes, contradicting minimality of the first
        prefix match).  That token's positions ``(p, j)`` anchor the
        positional bound *and* let the merge start at ``(p, j)`` — the
        skipped head contains no common token, so the sum is
        term-for-term identical to a full merge.  A hand-built candidate
        with no shared prefix token merges from position 0.

        *own_lo*: token-range shard ownership — a pair belongs to this
        shard iff its smallest common prefix token is ``>= own_lo``
        (tokens above the shard's range cannot be anchors: candidates are
        discovered through an in-range token, which upper-bounds the
        smallest one).  Unowned pairs are skipped without counting, so
        per-stage counters sum to the sequential run's exactly.
        """
        out_ar: List[object] = []
        out_as: List[object] = []
        out_ov: List[float] = []
        out_nr: List[float] = []
        out_ns: List[float] = []
        emit_ar = out_ar.append
        emit_as = out_as.append
        emit_ov = out_ov.append
        emit_nr = out_nr.append
        emit_ns = out_ns.append
        left_ids = self.left_ids
        left_weights = self.left_weights
        left_norms = self.left_norms
        left_prefix = self.left_prefix
        right_ids = self.right_ids
        right_norms = self.right_norms
        right_prefix = self.right_prefix
        threshold = self.predicate.threshold
        nbits = self.nbits
        left_sigs = self.left_signatures
        right_sigs = self.right_signatures
        maxw_arr = self.left_max_weights
        positional = self.positional
        early = self.early_exit
        identity = self.identity
        margin = PRUNE_MARGIN
        epsilon = OVERLAP_EPSILON
        n_cand = bitmap_pruned = position_pruned = merges = early_exited = 0
        # Specialized pair threshold: per group, hoist the norm_r part of
        # each linear conjunct; the candidate loop then pays a few FLOPs,
        # not a method call (bit-identical to predicate.threshold —
        # identical products, sums, and association; see _linear_terms).
        terms = self._terms
        mode = 0
        fl0 = fr0 = off0 = fl1 = fr1 = off1 = 0.0
        if terms is not None:
            if len(terms) == 1:
                fl0, fr0, off0 = terms[0]
                mode = 1
            elif len(terms) == 2:
                (fl0, fr0, off0), (fl1, fr1, off1) = terms
                mode = 2

        cums_map = self._cums
        for g, matches in candidates:
            lids = left_ids[g]
            lw = left_weights[g]
            nl = len(lids)
            kl = left_prefix[g]
            # The cumulative array is only needed by the positional
            # bound and the early-exit merge; most candidates die at
            # the bitmap stage first, so its build is deferred until a
            # candidate of this group survives.  The group total is a
            # left-to-right float sum from 0.0 either way (builtin sum
            # associates identically to the cum build and the merge).
            cum = cums_map.get(g)
            total_weight = cum[nl] if cum is not None else sum(lw)
            maxw = maxw_arr[g] if maxw_arr is not None else (max(lw) if nl else 0.0)
            norm_r = left_norms[g]
            a_r = left_keys[g] if left_keys is not None else g
            sig = left_sigs[g] if nbits else 0
            a0 = fl0 * norm_r
            a1 = fl1 * norm_r
            if own_lo is None:
                n_cand += len(matches)

            for h in matches:
                if identity and h == g:
                    # Group paired with itself: overlap is exactly the
                    # group's total weight — same left-to-right sum the
                    # merge would compute, no merge needed.
                    if own_lo is not None:
                        if nl == 0 or lids[0] < own_lo:
                            continue
                        n_cand += 1
                    norm_s = right_norms[h]
                    if mode == 2:
                        t0 = a0 + fr0 * norm_s + off0
                        t1 = a1 + fr1 * norm_s + off1
                        theta = t0 if t0 >= t1 else t1
                    elif mode == 1:
                        theta = a0 + fr0 * norm_s + off0
                    else:
                        theta = threshold(norm_r, norm_s)
                    if total_weight + epsilon >= theta:
                        emit_ar(a_r)
                        emit_as(right_keys[h] if right_keys is not None else h)
                        emit_ov(total_weight)
                        emit_nr(norm_r)
                        emit_ns(norm_s)
                    continue
                p = -1
                i = j = 0
                if own_lo is not None:
                    # Ownership only asks "is there a common prefix
                    # token below own_lo?" — a merge scan bounded at
                    # own_lo, far shorter than locating the anchor
                    # itself.  Discovery matched an in-range token, so
                    # an anchor >= own_lo exists whenever this scan
                    # finds nothing; the anchor search proper resumes
                    # from (i, j) only for bound survivors below.
                    rids = right_ids[h]
                    kr = right_prefix[h]
                    unowned = False
                    while i < kl and j < kr:
                        li = lids[i]
                        if li >= own_lo:
                            break
                        rj = rids[j]
                        if rj >= own_lo:
                            break
                        if li == rj:
                            unowned = True
                            break
                        if li < rj:
                            i += 1
                        else:
                            j += 1
                    if unowned:
                        continue
                    n_cand += 1
                norm_s = right_norms[h]
                if mode == 2:
                    t0 = a0 + fr0 * norm_s + off0
                    t1 = a1 + fr1 * norm_s + off1
                    theta = t0 if t0 >= t1 else t1
                elif mode == 1:
                    theta = a0 + fr0 * norm_s + off0
                else:
                    theta = threshold(norm_r, norm_s)
                cutoff = theta - margin
                if nbits:
                    # Degenerate-signature pre-test: the overlap can never
                    # exceed the left group's total weight, so a cutoff
                    # above it kills the pair with zero popcount work.
                    if total_weight < cutoff:
                        bitmap_pruned += 1
                        continue
                    bound = (nl + len(right_ids[h])
                             - (sig ^ right_sigs[h]).bit_count()) * 0.5 * maxw
                    if bound < cutoff:
                        bitmap_pruned += 1
                        continue
                if own_lo is None:
                    # Right-side columns are loaded only for bitmap
                    # survivors (the shard path loaded them for the
                    # ownership scan already).
                    rids = right_ids[h]
                    kr = right_prefix[h]
                # Locate the pair's smallest common token in-prefix.
                # The shard path resumes from (i, j): every position
                # the ownership scan stepped past was proven
                # non-common by the same merge rule.
                while i < kl and j < kr:
                    li = lids[i]
                    rj = rids[j]
                    if li == rj:
                        p = i
                        break
                    if li < rj:
                        i += 1
                    else:
                        j += 1
                nr = len(rids)
                if p >= 0:
                    if positional:
                        if cum is None:
                            cum = self._cum_for(g)
                        if total_weight - cum[p] < cutoff or (nr - j) * maxw < cutoff:
                            position_pruned += 1
                            continue
                else:
                    # No shared prefix token recorded (hand-built
                    # candidate): no positional anchor, full merge.
                    i = j = 0
                if early and cum is None:
                    cum = self._cum_for(g)
                merges += 1
                overlap = 0.0
                while i < nl and j < nr:
                    li = lids[i]
                    rj = rids[j]
                    if li == rj:
                        overlap += lw[i]
                        i += 1
                        j += 1
                    elif li < rj:
                        i += 1
                        if early and overlap + (total_weight - cum[i]) < cutoff:
                            early_exited += 1
                            break
                    else:
                        j += 1
                else:
                    if overlap + epsilon >= theta:
                        emit_ar(a_r)
                        emit_as(right_keys[h] if right_keys is not None else h)
                        emit_ov(overlap)
                        emit_nr(norm_r)
                        emit_ns(norm_s)

        self.candidates += n_cand
        self.bitmap_pruned += bitmap_pruned
        self.position_pruned += position_pruned
        self.merges_run += merges
        self.merges_early_exited += early_exited
        return (out_ar, out_as, out_ov, out_nr, out_ns)

    def verify_group(
        self, g: int, matches: Sequence[int]
    ) -> List[Tuple[int, float, float]]:
        """Single-group convenience over :meth:`verify_candidates`:
        returns admitted ``(h, overlap, norm_s)`` triples."""
        rows = self.verify_candidates([(g, matches)])
        return [(h, overlap, norm_s) for _, h, overlap, _, norm_s in rows]

    def prune_partial(
        self, g: int, prefix_len: int, overlaps: Dict[int, float]
    ) -> Dict[int, float]:
        """Probe-plan stage: prune discovered candidates before completion.

        After the discovery pass, ``overlaps[h]`` holds the weight of
        common tokens within the left β-prefix; the completion pass can
        add at most the left *suffix* weight.  Candidates whose bitmap
        bound or ``partial + suffix`` bound falls below the pair
        threshold are dropped, so the completion pass (the probe plan's
        "merge") only updates survivors.
        """
        lids = self.left_ids[g]
        nl = len(lids)
        cum = self._cum_for(g)
        total_weight = cum[nl]
        suffix_weight = total_weight - cum[prefix_len]
        maxw = self._max_weight(g)
        norm_r = self.left_norms[g]
        threshold = self.predicate.threshold
        right_norms = self.right_norms
        right_ids = self.right_ids
        nbits = self.nbits
        sig = self.left_signatures[g] if nbits else 0
        right_sigs = self.right_signatures
        positional = self.positional
        margin = PRUNE_MARGIN
        bitmap_pruned = position_pruned = 0
        terms = self._terms
        mode = 0
        a0 = fr0 = off0 = a1 = fr1 = off1 = 0.0
        if terms is not None:
            if len(terms) == 1:
                fl0, fr0, off0 = terms[0]
                a0 = fl0 * norm_r
                mode = 1
            elif len(terms) == 2:
                (fl0, fr0, off0), (fl1, fr1, off1) = terms
                a0 = fl0 * norm_r
                a1 = fl1 * norm_r
                mode = 2

        out: Dict[int, float] = {}
        for h, partial in overlaps.items():
            norm_s = right_norms[h]
            if mode == 2:
                t0 = a0 + fr0 * norm_s + off0
                t1 = a1 + fr1 * norm_s + off1
                theta = t0 if t0 >= t1 else t1
            elif mode == 1:
                theta = a0 + fr0 * norm_s + off0
            else:
                theta = threshold(norm_r, norm_s)
            cutoff = theta - margin
            if nbits:
                if total_weight < cutoff:
                    bitmap_pruned += 1
                    continue
                nr = len(right_ids[h])
                bound = (nl + nr - (sig ^ right_sigs[h]).bit_count()) * 0.5 * maxw
                if bound < cutoff:
                    bitmap_pruned += 1
                    continue
            if positional and partial + suffix_weight < cutoff:
                position_pruned += 1
                continue
            out[h] = partial
        self.candidates += len(overlaps)
        self.bitmap_pruned += bitmap_pruned
        self.position_pruned += position_pruned
        self.merges_run += len(out)
        return out

    def flush(self, metrics: object) -> None:
        """Fold the engine's counters into an :class:`ExecutionMetrics`."""
        metrics.verify_candidates += self.candidates  # type: ignore[attr-defined]
        metrics.verify_bitmap_pruned += self.bitmap_pruned  # type: ignore[attr-defined]
        metrics.verify_position_pruned += self.position_pruned  # type: ignore[attr-defined]
        metrics.verify_merges_run += self.merges_run  # type: ignore[attr-defined]
        metrics.verify_merges_early_exited += self.merges_early_exited  # type: ignore[attr-defined]


def resolve_signature_bits(
    enc_left: "EncodedPreparedRelation",
    enc_right: "EncodedPreparedRelation",
    predicate: OverlapPredicate,
    config: Optional[VerifyConfig],
) -> int:
    """The signature width a (possibly auto) config resolves to."""
    if config is not None and config.signature_bits is not None:
        return config.signature_bits
    typical = max(mean_set_norm(enc_left), mean_set_norm(enc_right))
    return choose_signature_bits(
        len(enc_left.dictionary), predicate_strictness(predicate, typical)
    )


def engine_for_encoded(
    enc_left: "EncodedPreparedRelation",
    enc_right: "EncodedPreparedRelation",
    predicate: OverlapPredicate,
    left_prefix: Sequence[int],
    right_prefix: Sequence[int],
    config: Optional[VerifyConfig] = None,
) -> Optional[VerificationEngine]:
    """Build the engine for an encoded plan execution, or ``None`` when
    every stage is disabled (callers then run the unfiltered path)."""
    cfg = config if config is not None else VerifyConfig()
    if cfg.inert:
        return None
    nbits = resolve_signature_bits(enc_left, enc_right, predicate, cfg)
    left_sigs = signatures_for(enc_left, nbits) if nbits else None
    right_sigs = (
        (left_sigs if enc_right is enc_left else signatures_for(enc_right, nbits))
        if nbits
        else None
    )
    return VerificationEngine(
        predicate,
        enc_left.ids,
        enc_left.weights,
        enc_left.norms,
        left_prefix,
        enc_right.ids,
        enc_right.norms,
        right_prefix,
        nbits=nbits,
        left_signatures=left_sigs,
        right_signatures=right_sigs,
        left_max_weights=max_weights_for(enc_left),
        positional=cfg.positional,
        early_exit=cfg.early_exit,
        cums=cumulative_weights_for(enc_left),
    )
