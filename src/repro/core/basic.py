"""Basic SSJoin implementation (paper Figure 7).

The plan is literally the SQL the paper describes::

    SELECT R.A, S.A, SUM(R.w) AS overlap
    FROM   R JOIN S ON R.B = S.B
    GROUP BY R.A, R.norm, S.A, S.norm
    HAVING SUM(R.w) >= <predicate threshold>

Any ⟨R.A, S.A⟩ pair with non-zero overlap appears in the equi-join; grouping
sums the weights of the joined elements (which *is* the overlap, thanks to
the ordinal multiset encoding); HAVING applies the overlap predicate. The
weakness the paper highlights — the equi-join explodes when frequent tokens
("the", "inc") appear on both sides — is visible in the
``equijoin_rows`` metric.
"""

from __future__ import annotations

from typing import Optional

from repro.core.metrics import (
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.relational.aggregates import agg_sum, group_by
from repro.relational.expressions import Expr, FunctionCall, col
from repro.relational.joins import hash_join
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = ["basic_ssjoin", "RESULT_SCHEMA"]

#: Output schema shared by every SSJoin implementation.
RESULT_SCHEMA = Schema(["a_r", "a_s", "overlap", "norm_r", "norm_s"])


def _having_expr(
    predicate: OverlapPredicate, overlap_col: str, lnorm_col: str, rnorm_col: str
) -> Expr:
    """HAVING: overlap (+ε for float round-off) >= predicate threshold."""
    threshold = FunctionCall(
        "THRESHOLD", predicate.threshold, (col(lnorm_col), col(rnorm_col))
    )
    return (col(overlap_col) + 1e-9) >= threshold


def basic_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    metrics: Optional[ExecutionMetrics] = None,
) -> Relation:
    """Execute the Figure 7 plan; returns a :data:`RESULT_SCHEMA` relation.

    Only pairs sharing at least one element can be produced (see the
    degenerate-threshold note on :class:`OverlapPredicate`).
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    m.implementation = "basic"

    with m.phase(PHASE_PREP):
        r = left.relation.rename({"a": "a_r", "b": "b", "w": "w_r", "norm": "norm_r"})
        s = right.relation.rename({"a": "a_s", "b": "b_s", "w": "w_s", "norm": "norm_s"})
        m.prepared_rows += len(r) + len(s)

    with m.phase(PHASE_SSJOIN):
        joined = hash_join(r, s, keys=[("b", "b_s")])
        m.equijoin_rows += len(joined)

        grouped = group_by(
            joined,
            keys=["a_r", "norm_r", "a_s", "norm_s"],
            aggregates=[agg_sum("overlap", col("w_r"))],
            having=_having_expr(predicate, "overlap", "norm_r", "norm_s"),
        )
        # Candidate pairs in the basic plan = all non-zero-overlap pairs,
        # i.e. the number of groups before HAVING. Recover it from the join
        # result cheaply via a distinct count.
        m.candidate_pairs += len(joined.project(["a_r", "a_s"]).distinct())
        result = grouped.project(["a_r", "a_s", "overlap", "norm_r", "norm_s"])
        m.output_pairs += len(result)
    return result
