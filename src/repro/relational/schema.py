"""Relation schemas: ordered, named, optionally typed columns.

The engine is deliberately duck-typed like SQLite: a :class:`Column` may
declare a Python type purely as documentation/validation affinity, and
validation is opt-in via :meth:`Schema.validate_row`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import DuplicateColumnError, SchemaError, UnknownColumnError

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single named column.

    Parameters
    ----------
    name:
        Column name. Must be a non-empty string without the ``.`` separator
        (dots are reserved for qualified names produced by joins).
    dtype:
        Optional Python type used by :meth:`Schema.validate_row`. ``None``
        (the default) accepts any value. ``NULL`` (``None`` values) are always
        accepted regardless of dtype, mirroring SQL semantics.
    """

    name: str
    dtype: Optional[type] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")

    def accepts(self, value: Any) -> bool:
        """Return True if *value* is admissible for this column."""
        if value is None or self.dtype is None:
            return True
        if self.dtype is float and isinstance(value, int) and not isinstance(value, bool):
            # Integer literals are admissible wherever floats are, as in SQL.
            return True
        return isinstance(value, self.dtype)

    def renamed(self, name: str) -> "Column":
        """Return a copy of this column under a new name."""
        return Column(name, self.dtype)


class Schema:
    """An ordered collection of uniquely named columns.

    Schemas are immutable; transformation methods return new schemas.
    Column positions are significant because rows are stored as plain tuples.
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable) -> None:
        cols = []
        for c in columns:
            if isinstance(c, Column):
                cols.append(c)
            elif isinstance(c, str):
                cols.append(Column(c))
            elif isinstance(c, tuple) and len(c) == 2:
                cols.append(Column(c[0], c[1]))
            else:
                raise SchemaError(f"cannot interpret {c!r} as a column")
        index = {}
        for pos, col in enumerate(cols):
            if col.name in index:
                raise DuplicateColumnError(col.name)
            index[col.name] = pos
        self._columns: Tuple[Column, ...] = tuple(cols)
        self._index = index

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        parts = ", ".join(
            c.name if c.dtype is None else f"{c.name}:{c.dtype.__name__}" for c in self._columns
        )
        return f"Schema({parts})"

    # -- accessors ----------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names, in schema order."""
        return tuple(c.name for c in self._columns)

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    def column(self, name: str) -> Column:
        """Return the column named *name*."""
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(name, self.names) from None

    def position(self, name: str) -> int:
        """Return the tuple position of column *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(name, self.names) from None

    def positions(self, names: Sequence[str]) -> Tuple[int, ...]:
        """Return tuple positions for several columns at once."""
        return tuple(self.position(n) for n in names)

    # -- transformations ----------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to *names*."""
        return Schema([self.column(n) for n in names])

    def rename(self, mapping: dict) -> "Schema":
        """Return a schema with columns renamed per *mapping* (old -> new)."""
        for old in mapping:
            if old not in self._index:
                raise UnknownColumnError(old, self.names)
        return Schema([c.renamed(mapping.get(c.name, c.name)) for c in self._columns])

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema with every column renamed to ``prefix.name``.

        Used by joins to disambiguate same-named columns from both sides.
        """
        return Schema([c.renamed(f"{prefix}.{c.name}") for c in self._columns])

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (join output schema)."""
        return Schema(list(self._columns) + list(other.columns))

    def extend(self, columns: Iterable) -> "Schema":
        """Return a schema with extra columns appended."""
        return Schema(list(self._columns) + list(Schema(columns).columns))

    # -- validation -----------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` unless *row* fits this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values but schema has {len(self._columns)} columns"
            )
        for col, value in zip(self._columns, row):
            if not col.accepts(value):
                raise SchemaError(
                    f"column {col.name!r} expects {col.dtype.__name__}, "
                    f"got {type(value).__name__} value {value!r}"
                )
