"""GROUP BY / HAVING: the aggregation machinery behind every SSJoin plan.

The basic SSJoin (paper Figure 7) is literally::

    SELECT R.A, S.A
    FROM R JOIN S ON R.B = S.B
    GROUP BY R.A, S.A
    HAVING SUM(weight) >= alpha

so this module implements grouping with named aggregate functions and a
HAVING filter expressed over ``group keys ++ aggregate outputs``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.batch import Batch, BatchStream
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "Aggregate",
    "agg_sum",
    "agg_count",
    "agg_min",
    "agg_max",
    "agg_avg",
    "agg_collect",
    "group_by",
    "group_by_stream",
]


class Aggregate:
    """A named aggregate: output column name + input expr + reducer.

    Parameters
    ----------
    name:
        Output column name for the aggregate value.
    fn:
        Reducer mapping a list of input values to the aggregate value.
    input_expr:
        Expression evaluated per row to produce the reducer's inputs.
        ``None`` means COUNT(*)-style aggregates that only need row counts.
    kind:
        Optional tag naming a built-in reducer (``"count"``, ``"sum"``,
        ``"min"``, ``"max"``, ``"avg"``, ``"collect"``) so the columnar
        grouped-aggregation kernel can run a per-group accumulator array
        instead of buffering value lists. ``None`` (custom reducer) falls
        back to buffered evaluation through *fn* — still correct, just
        not accumulator-based.
    """

    __slots__ = ("name", "fn", "input_expr", "kind")

    def __init__(
        self,
        name: str,
        fn: Callable[[List[Any]], Any],
        input_expr: Optional[Expr],
        kind: Optional[str] = None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.input_expr = input_expr
        self.kind = kind

    def __repr__(self) -> str:
        return f"Aggregate({self.name})"


def _non_null(values: List[Any]) -> List[Any]:
    return [v for v in values if v is not None]


def agg_sum(name: str, expr: Expr) -> Aggregate:
    """SUM(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return sum(kept) if kept else None

    return Aggregate(name, fn, expr, kind="sum")


def agg_count(name: str, expr: Optional[Expr] = None) -> Aggregate:
    """COUNT(*) AS name (or COUNT(expr), counting non-None values)."""
    if expr is None:
        return Aggregate(name, len, None, kind="count")
    return Aggregate(
        name,
        lambda values: sum(1 for v in values if v is not None),
        expr,
        kind="count",
    )


def agg_min(name: str, expr: Expr) -> Aggregate:
    """MIN(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return min(kept) if kept else None

    return Aggregate(name, fn, expr, kind="min")


def agg_max(name: str, expr: Expr) -> Aggregate:
    """MAX(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return max(kept) if kept else None

    return Aggregate(name, fn, expr, kind="max")


def agg_avg(name: str, expr: Expr) -> Aggregate:
    """AVG(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return sum(kept) / len(kept) if kept else None

    return Aggregate(name, fn, expr, kind="avg")


def agg_collect(name: str, expr: Expr) -> Aggregate:
    """Collect all input values into a tuple (ARRAY_AGG analogue).

    Used by the groupwise-processing operator and the inline-set SSJoin
    implementation to materialize per-group element lists.
    """
    return Aggregate(name, tuple, expr, kind="collect")


def group_by(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
    having: Optional[Expr] = None,
) -> Relation:
    """Group *relation* by *keys*, compute *aggregates*, filter by *having*.

    Output schema is ``keys ++ [a.name for a in aggregates]``. The HAVING
    expression is bound against that output schema, so it may reference both
    grouping columns and aggregate results (as in SQL).

    >>> r = Relation.from_rows(["a", "w"], [("x", 1), ("x", 2), ("y", 5)])
    >>> from repro.relational.expressions import col
    >>> out = group_by(r, ["a"], [agg_sum("total", col("w"))], having=col("total") >= 3)
    >>> sorted(out.rows)
    [('x', 3), ('y', 5)]
    """
    if not keys and not aggregates:
        raise PlanError("group_by needs at least one key or aggregate")
    key_pos = relation.schema.positions(list(keys))

    input_fns: List[Optional[Callable]] = []
    for agg in aggregates:
        input_fns.append(None if agg.input_expr is None else agg.input_expr.bind(relation.schema))

    # Bucket rows; keep insertion order for deterministic output.
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation.rows:
        key = tuple(row[p] for p in key_pos)
        groups.setdefault(key, []).append(row)
    if not keys and not groups:
        # SQL: a global aggregate over an empty input yields one row
        # (COUNT(*) = 0, SUM/MIN/MAX/AVG = NULL).
        groups[()] = []

    out_schema = Schema(
        [relation.schema.column(k) for k in keys] + [Column(a.name) for a in aggregates]
    )
    having_fn = having.bind(out_schema) if having is not None else None

    out_rows: List[Tuple[Any, ...]] = []
    for key, rows in groups.items():
        agg_values = []
        for agg, fn in zip(aggregates, input_fns):
            if fn is None:
                agg_values.append(agg.fn(rows))
            else:
                agg_values.append(agg.fn([fn(r) for r in rows]))
        out_row = key + tuple(agg_values)
        if having_fn is None or having_fn(out_row):
            out_rows.append(out_row)
    return Relation(out_schema, out_rows)


# -- vectorized (batch-stream) grouped aggregation -----------------------------
#
# Hash aggregation over columns: each morsel is mapped to per-row group
# ids once (shared by every aggregate), then each aggregate updates flat
# per-group accumulator arrays in one tight zip loop over its input
# column. Finalize is a single pass emitting flat output columns — no row
# tuples and no per-group row buffering for the built-in kinds.
#
# Bit-identity with :func:`group_by` is load-bearing: groups are numbered
# in first-occurrence order (same as the row path's insertion-ordered
# dict), sums accumulate left-to-right from int 0 (identical to
# ``sum(kept)``), min/max keep the first extremal value on ties, and the
# streaming mean carries the exact (Σ, n) pair and divides once at
# finalize — numerically stable in the sense that no per-row running-mean
# division ever happens, while still reproducing ``sum(kept)/len(kept)``
# to the bit.

#: Sentinel distinguishing "no value seen yet" from a NULL input.
_MISSING = object()


class _CountState:
    """COUNT(*) (no input expr) or COUNT(expr) (non-NULL count)."""

    __slots__ = ("counts", "fn")

    def __init__(self, fn: Optional[Callable[[Batch], Sequence[Any]]]) -> None:
        self.counts: List[int] = []
        self.fn = fn

    def update(self, gids: Sequence[int], ngroups: int, batch: Batch) -> None:
        counts = self.counts
        counts.extend([0] * (ngroups - len(counts)))
        if self.fn is None:
            for g in gids:
                counts[g] += 1
        else:
            for g, v in zip(gids, self.fn(batch)):
                if v is not None:
                    counts[g] += 1

    def finalize(self) -> List[Any]:
        return self.counts


class _SumState:
    """SUM / AVG share the (Σ, non-NULL count) accumulator pair."""

    __slots__ = ("sums", "counts", "fn", "mean")

    def __init__(self, fn: Callable[[Batch], Sequence[Any]], mean: bool) -> None:
        self.sums: List[Any] = []
        self.counts: List[int] = []
        self.fn = fn
        self.mean = mean

    def update(self, gids: Sequence[int], ngroups: int, batch: Batch) -> None:
        sums, counts = self.sums, self.counts
        grow = ngroups - len(sums)
        if grow:
            sums.extend([0] * grow)
            counts.extend([0] * grow)
        for g, v in zip(gids, self.fn(batch)):
            if v is not None:
                sums[g] = sums[g] + v
                counts[g] += 1

    def finalize(self) -> List[Any]:
        if self.mean:
            return [
                (s / n if n else None) for s, n in zip(self.sums, self.counts)
            ]
        return [(s if n else None) for s, n in zip(self.sums, self.counts)]


class _MinMaxState:
    """MIN / MAX keep the first extremal value (ties resolve to first)."""

    __slots__ = ("best", "fn", "is_max")

    def __init__(self, fn: Callable[[Batch], Sequence[Any]], is_max: bool) -> None:
        self.best: List[Any] = []
        self.fn = fn
        self.is_max = is_max

    def update(self, gids: Sequence[int], ngroups: int, batch: Batch) -> None:
        best = self.best
        best.extend([_MISSING] * (ngroups - len(best)))
        if self.is_max:
            for g, v in zip(gids, self.fn(batch)):
                if v is not None:
                    cur = best[g]
                    if cur is _MISSING or v > cur:
                        best[g] = v
        else:
            for g, v in zip(gids, self.fn(batch)):
                if v is not None:
                    cur = best[g]
                    if cur is _MISSING or v < cur:
                        best[g] = v

    def finalize(self) -> List[Any]:
        return [(None if v is _MISSING else v) for v in self.best]


class _BufferedState:
    """Fallback for collect and custom reducers: buffer per-group inputs.

    With an input expression the buffers hold its values; without one
    (custom whole-row reducers) they hold row tuples — the only place the
    batch path ever builds rows, and only for non-built-in aggregates.
    """

    __slots__ = ("buffers", "fn", "reduce")

    def __init__(
        self,
        fn: Optional[Callable[[Batch], Sequence[Any]]],
        reduce: Callable[[List[Any]], Any],
    ) -> None:
        self.buffers: List[List[Any]] = []
        self.fn = fn
        self.reduce = reduce

    def update(self, gids: Sequence[int], ngroups: int, batch: Batch) -> None:
        buffers = self.buffers
        while len(buffers) < ngroups:
            buffers.append([])
        values = batch.to_rows() if self.fn is None else self.fn(batch)
        for g, v in zip(gids, values):
            buffers[g].append(v)

    def finalize(self) -> List[Any]:
        return [self.reduce(b) for b in self.buffers]


def _make_state(agg: Aggregate, schema: Schema) -> Any:
    fn = None if agg.input_expr is None else agg.input_expr.bind_batch(schema)
    if agg.kind == "count":
        return _CountState(fn)
    if fn is not None:
        if agg.kind == "sum":
            return _SumState(fn, mean=False)
        if agg.kind == "avg":
            return _SumState(fn, mean=True)
        if agg.kind == "min":
            return _MinMaxState(fn, is_max=False)
        if agg.kind == "max":
            return _MinMaxState(fn, is_max=True)
    return _BufferedState(fn, agg.fn)


def group_by_stream(
    stream: BatchStream,
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
    having: Optional[Expr] = None,
    batch_size: int = 4096,
) -> BatchStream:
    """Vectorized :func:`group_by` over a morsel stream.

    A pipeline breaker: the generator consumes the whole child stream
    into the accumulator arrays, finalizes once, applies HAVING as a
    selection vector over the flat output columns, and emits the result
    in *batch_size* morsels. Output rows, order and types are
    bit-identical to the row path.
    """
    if not keys and not aggregates:
        raise PlanError("group_by needs at least one key or aggregate")
    schema = stream.schema
    key_pos = schema.positions(list(keys))
    out_schema = Schema(
        [schema.column(k) for k in keys] + [Column(a.name) for a in aggregates]
    )
    states = [_make_state(agg, schema) for agg in aggregates]
    having_sel = having.bind_select(out_schema) if having is not None else None

    def gen() -> Iterator[Batch]:
        index: Dict[Any, int] = {}
        key_store: List[Any] = []
        if not keys:
            # A global aggregate always has exactly one group — even over
            # an empty input (SQL: one row, COUNT(*)=0, others NULL).
            index[()] = 0
            key_store.append(())
        single_key = len(key_pos) == 1
        for batch in stream:
            n = batch.num_rows
            if n == 0:
                continue
            if key_pos:
                gids: List[int] = []
                append = gids.append
                get = index.get
                if single_key:
                    keys_iter: Any = batch.columns[key_pos[0]]
                else:
                    keys_iter = zip(*(batch.columns[p] for p in key_pos))
                for key in keys_iter:
                    gid = get(key)
                    if gid is None:
                        gid = index[key] = len(key_store)
                        key_store.append(key)
                    append(gid)
            else:
                gids = [0] * n
            ngroups = len(key_store)
            for state in states:
                state.update(gids, ngroups, batch)

        ngroups = len(key_store)
        if ngroups and states:
            # The pre-seeded global group may never have seen a batch
            # (empty input); one empty update grows every accumulator
            # array to ngroups with its seed values.
            pad = Batch(schema, tuple([] for _ in schema), num_rows=0)
            for state in states:
                state.update((), ngroups, pad)
        if key_pos:
            if single_key:
                key_cols: List[List[Any]] = [key_store]
            elif key_store:
                key_cols = [list(c) for c in zip(*key_store)]
            else:
                key_cols = [[] for _ in key_pos]
        else:
            key_cols = []
        out_cols = key_cols + [state.finalize() for state in states]
        if having_sel is not None and ngroups:
            sel = having_sel(Batch(out_schema, out_cols, num_rows=ngroups))
            if len(sel) < ngroups:
                out_cols = [[c[i] for i in sel] for c in out_cols]
                ngroups = len(sel)
        for lo in range(0, ngroups, batch_size):
            yield Batch(
                out_schema, tuple(c[lo : lo + batch_size] for c in out_cols)
            )

    return BatchStream(out_schema, gen(), stream.name)
