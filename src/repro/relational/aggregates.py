"""GROUP BY / HAVING: the aggregation machinery behind every SSJoin plan.

The basic SSJoin (paper Figure 7) is literally::

    SELECT R.A, S.A
    FROM R JOIN S ON R.B = S.B
    GROUP BY R.A, S.A
    HAVING SUM(weight) >= alpha

so this module implements grouping with named aggregate functions and a
HAVING filter expressed over ``group keys ++ aggregate outputs``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = ["Aggregate", "agg_sum", "agg_count", "agg_min", "agg_max", "agg_avg", "agg_collect", "group_by"]


class Aggregate:
    """A named aggregate: output column name + input expr + reducer.

    Parameters
    ----------
    name:
        Output column name for the aggregate value.
    fn:
        Reducer mapping a list of input values to the aggregate value.
    input_expr:
        Expression evaluated per row to produce the reducer's inputs.
        ``None`` means COUNT(*)-style aggregates that only need row counts.
    """

    __slots__ = ("name", "fn", "input_expr")

    def __init__(
        self, name: str, fn: Callable[[List[Any]], Any], input_expr: Optional[Expr]
    ) -> None:
        self.name = name
        self.fn = fn
        self.input_expr = input_expr

    def __repr__(self) -> str:
        return f"Aggregate({self.name})"


def _non_null(values: List[Any]) -> List[Any]:
    return [v for v in values if v is not None]


def agg_sum(name: str, expr: Expr) -> Aggregate:
    """SUM(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return sum(kept) if kept else None

    return Aggregate(name, fn, expr)


def agg_count(name: str, expr: Optional[Expr] = None) -> Aggregate:
    """COUNT(*) AS name (or COUNT(expr), counting non-None values)."""
    if expr is None:
        return Aggregate(name, len, None)
    return Aggregate(name, lambda values: sum(1 for v in values if v is not None), expr)


def agg_min(name: str, expr: Expr) -> Aggregate:
    """MIN(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return min(kept) if kept else None

    return Aggregate(name, fn, expr)


def agg_max(name: str, expr: Expr) -> Aggregate:
    """MAX(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return max(kept) if kept else None

    return Aggregate(name, fn, expr)


def agg_avg(name: str, expr: Expr) -> Aggregate:
    """AVG(expr) AS name — NULL inputs are skipped; all-NULL gives NULL."""

    def fn(values: List[Any]) -> Any:
        kept = _non_null(values)
        return sum(kept) / len(kept) if kept else None

    return Aggregate(name, fn, expr)


def agg_collect(name: str, expr: Expr) -> Aggregate:
    """Collect all input values into a tuple (ARRAY_AGG analogue).

    Used by the groupwise-processing operator and the inline-set SSJoin
    implementation to materialize per-group element lists.
    """
    return Aggregate(name, tuple, expr)


def group_by(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
    having: Optional[Expr] = None,
) -> Relation:
    """Group *relation* by *keys*, compute *aggregates*, filter by *having*.

    Output schema is ``keys ++ [a.name for a in aggregates]``. The HAVING
    expression is bound against that output schema, so it may reference both
    grouping columns and aggregate results (as in SQL).

    >>> r = Relation.from_rows(["a", "w"], [("x", 1), ("x", 2), ("y", 5)])
    >>> from repro.relational.expressions import col
    >>> out = group_by(r, ["a"], [agg_sum("total", col("w"))], having=col("total") >= 3)
    >>> sorted(out.rows)
    [('x', 3), ('y', 5)]
    """
    if not keys and not aggregates:
        raise PlanError("group_by needs at least one key or aggregate")
    key_pos = relation.schema.positions(list(keys))

    input_fns: List[Optional[Callable]] = []
    for agg in aggregates:
        input_fns.append(None if agg.input_expr is None else agg.input_expr.bind(relation.schema))

    # Bucket rows; keep insertion order for deterministic output.
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation.rows:
        key = tuple(row[p] for p in key_pos)
        groups.setdefault(key, []).append(row)
    if not keys and not groups:
        # SQL: a global aggregate over an empty input yields one row
        # (COUNT(*) = 0, SUM/MIN/MAX/AVG = NULL).
        groups[()] = []

    out_schema = Schema(
        [relation.schema.column(k) for k in keys] + [Column(a.name) for a in aggregates]
    )
    having_fn = having.bind(out_schema) if having is not None else None

    out_rows: List[Tuple[Any, ...]] = []
    for key, rows in groups.items():
        agg_values = []
        for agg, fn in zip(aggregates, input_fns):
            if fn is None:
                agg_values.append(agg.fn(rows))
            else:
                agg_values.append(agg.fn([fn(r) for r in rows]))
        out_row = key + tuple(agg_values)
        if having_fn is None or having_fn(out_row):
            out_rows.append(out_row)
    return Relation(out_schema, out_rows)
