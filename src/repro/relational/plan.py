"""Logical operator trees with an executor and EXPLAIN rendering.

The paper communicates every SSJoin implementation as an operator tree
(Figures 3–9). This module lets the library build the same trees as data,
execute them against an :class:`~repro.relational.context.ExecutionContext`
(or a bare :class:`~repro.relational.catalog.Catalog`), and pretty-print
them — which is how ``repro explain`` shows users exactly which plan
(basic / prefix-filter / inline / encoded) was chosen.

Since the Layer-7 refactor, SSJoin itself is a first-class node here:
:class:`SSJoinNode` is the *logical* similarity-join operator of the
paper's Figures 7–9, with a real output schema (``a_r, a_s, overlap,
norm_r, norm_s``) so the plan verifier's PV1xx rules propagate through it,
and a physical layer (:mod:`repro.core.physical`) that rewrites it to one
of the basic / prefix / inline / probe / encoded implementations at
execution time, chosen by the cost model over
:mod:`repro.relational.stats` histograms.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import PlanError
from repro.relational import operators
from repro.relational.aggregates import Aggregate, group_by, group_by_stream
from repro.relational.batch import (
    Batch,
    BatchStream,
    columnar_relation_from_batches,
    stream_relation,
)
from repro.relational.catalog import Catalog
from repro.relational.context import ExecutionContext
from repro.relational.expressions import Expr
from repro.relational.groupwise import groupwise_apply
from repro.relational.joins import (
    hash_join,
    hash_join_stream,
    left_outer_join,
    left_outer_join_stream,
    merge_join,
    merge_join_stream,
    nested_loop_join,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "PlanNode",
    "TableScan",
    "MaterializedInput",
    "PreparedInput",
    "SSJoinNode",
    "Select",
    "Project",
    "Extend",
    "Rename",
    "Distinct",
    "OrderBy",
    "Limit",
    "HashJoin",
    "MergeJoin",
    "LeftOuterJoin",
    "NestedLoopJoin",
    "GroupBy",
    "Groupwise",
    "Custom",
    "explain",
]

#: Output schema of every SSJoin node, fixed so downstream operators and
#: the static verifier can rely on it (mirrors repro.core.basic.RESULT_SCHEMA).
SSJOIN_RESULT_SCHEMA = Schema(["a_r", "a_s", "overlap", "norm_r", "norm_s"])


def _tolerant_schema(columns: Sequence[Column]) -> Schema:
    """Build a schema for *static propagation*, dropping duplicate names.

    The runtime operators raise on duplicates; the static checker reports
    that as a diagnostic instead and still wants a usable schema for the
    rest of the tree, so propagation keeps the first occurrence.
    """
    seen = set()
    kept: List[Column] = []
    for c in columns:
        if c.name not in seen:
            seen.add(c.name)
            kept.append(c)
    return Schema(kept)


def _disambiguated_join_schema(
    left: Schema, right: Schema, prefixes: Optional[Tuple[str, str]]
) -> Schema:
    """Static mirror of the equi-join output schema.

    Replicates :func:`repro.relational.joins._prefixed_pair`: with
    *prefixes* both sides are qualified; without, clashing right-side
    names get ``_2``/``_3``... suffixes.
    """
    if prefixes is not None:
        lp, rp = prefixes
        return _tolerant_schema(
            list(left.prefixed(lp).columns) + list(right.prefixed(rp).columns)
        )
    taken = set(left.names)
    cols: List[Column] = list(left.columns)
    for col in right.columns:
        name = col.name
        if name in taken:
            n = 2
            while f"{name}_{n}" in taken:
                n += 1
            name = f"{name}_{n}"
        taken.add(name)
        cols.append(col.renamed(name))
    return Schema(cols)


def _probed_schema(
    fn: Callable[[Relation], Relation], child: Optional[Schema]
) -> Optional[Schema]:
    """Infer an opaque transformer's output schema by probing it.

    Applies *fn* to an **empty** relation carrying the child schema and
    reads the schema of what comes back. For the common schema-preserving
    subqueries (filter, truncate, sort) this returns the child schema
    exactly; for projecting transformers it returns the projected schema.
    Any exception (the transformer needs rows to make sense) degrades to
    ``None`` — unknown, never wrong.
    """
    if child is None:
        return None
    try:
        probed = fn(Relation(child, ()))
    except Exception:
        return None
    if isinstance(probed, Relation):
        return probed.schema
    return None


class PlanNode:
    """Base class of all logical plan nodes.

    Execution is context-threaded: :meth:`execute` accepts an
    :class:`~repro.relational.context.ExecutionContext`, a bare
    :class:`Catalog` (wrapped on the fly — the historical call shape), or
    ``None``, normalizes it, and dispatches to the node's :meth:`_run`.
    One context flows through the whole tree, so an SSJoin node deep in a
    plan shares the same metrics, cost model, caches and worker pool as
    its siblings.

    Besides execution, every node participates in **static schema
    propagation**: :meth:`output_schema` computes the schema this node
    would produce from its children's schemas *without executing
    anything*. Nodes wrapping opaque callables (:class:`Custom`,
    :class:`Groupwise`) probe the callable against an empty input to
    recover the schema (see :func:`_probed_schema`); a declared schema
    always wins, and probing failures degrade to ``None`` — the plan
    verifier (:mod:`repro.analysis.plan_verifier`) degrades gracefully on
    unknown subtrees and checks everything else.

    **Execution protocols.** Since the Layer-8 refactor every node speaks
    one of two protocols, declared by :attr:`batch_protocol`. ``"batch"``
    nodes have a vectorized kernel: :meth:`batches` streams columnar
    :class:`~repro.relational.batch.Batch` morsels and never builds row
    tuples. ``"row"`` nodes keep their tuple-at-a-time :meth:`_run` and
    are bridged automatically — the base :meth:`batches` is the boundary
    adapter (run the row kernel, chop the result into morsels), and a row
    node executing a ``"batch"`` child re-enters the batch path through
    ``child.execute``. The morsel capacity comes from
    :meth:`ExecutionContext.resolved_batch_size`; ``batch_size=0``
    disables the batch path entirely. Results are bit-identical between
    the two protocols (the SSJ113 analysis rule audits that every
    ``"batch"`` declaration is backed by a real kernel).
    """

    #: Child nodes, in order. Populated by subclasses.
    children: Tuple["PlanNode", ...] = ()

    #: Which protocol this node's kernels speak natively: ``"batch"``
    #: nodes override :meth:`batches`; ``"row"`` nodes are bridged by the
    #: base boundary adapter.
    batch_protocol: str = "row"

    def execute(
        self, context: Union[ExecutionContext, Catalog, None] = None
    ) -> Relation:
        """Evaluate this subtree against *context* and return its result."""
        ctx = ExecutionContext.of(context)
        size = ctx.resolved_batch_size()
        if size > 0:
            return self._run_batched(ctx, size)
        return self._run(ctx)

    def _run(self, ctx: ExecutionContext) -> Relation:
        """Node-specific evaluation against a normalized context."""
        raise NotImplementedError

    def _run_batched(self, ctx: ExecutionContext, size: int) -> Relation:
        """Evaluate under the batch protocol.

        The default runs the row kernel — vectorized children still
        engage, because row kernels execute children via
        ``child.execute(ctx)`` which re-enters the batch path. Nodes with
        a vectorized kernel override this to fold their morsel stream
        into a lazily-rowed ColumnarRelation.
        """
        return self._run(ctx)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        """Stream this subtree's result as columnar morsels.

        This base implementation is the **boundary adapter**: it runs the
        node's row kernel and chops the materialized relation into
        batches, which is what keeps row-protocol operators (sorts,
        groupings, joins) composable inside a batched plan.
        """
        return stream_relation(self._run(ctx), size)

    def label(self) -> str:
        """One-line description used by :func:`explain`."""
        return type(self).__name__

    def annotations(self, context: ExecutionContext) -> Tuple[str, ...]:
        """Extra EXPLAIN lines (cost estimates etc.), context-aware."""
        return self._batch_annotation(context)

    def _batch_annotation(self, context: ExecutionContext) -> Tuple[str, ...]:
        """The per-node EXPLAIN line describing its execution protocol."""
        size = context.resolved_batch_size()
        if size <= 0:
            return ()
        return (f"batch: {self._batch_note()}, morsel={size}",)

    def _batch_note(self) -> str:
        return "row (boundary adapter)"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        """The statically-known output schema, or ``None`` if unknowable.

        Never raises: unknown column references propagate as best-effort
        placeholder columns so one bad reference doesn't hide findings in
        the rest of the tree (the verifier reports the reference itself).
        """
        return None

    def _child_schema(
        self, catalog: Optional[Catalog], index: int = 0
    ) -> Optional[Schema]:
        return self.children[index].output_schema(catalog)


class _VectorizedNode(PlanNode):
    """Base of nodes with a native columnar kernel.

    Subclasses override :meth:`PlanNode.batches` with a real vectorized
    kernel; executing one standalone folds the morsel stream into a
    :class:`~repro.relational.batch.ColumnarRelation` (row tuples built
    lazily, only if a consumer asks for them).
    """

    batch_protocol = "batch"

    def _run_batched(self, ctx: ExecutionContext, size: int) -> Relation:
        return columnar_relation_from_batches(self.batches(ctx, size))

    def _batch_note(self) -> str:
        return "vectorized"


class TableScan(PlanNode):
    """Leaf: read a named table from the catalog."""

    def __init__(self, table: str) -> None:
        self.table = table

    def _run(self, ctx: ExecutionContext) -> Relation:
        return ctx.catalog.get(self.table)

    def label(self) -> str:
        return f"Scan({self.table})"

    def _batch_note(self) -> str:
        return "morsel source"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        if catalog is not None and self.table in catalog:
            return catalog.get(self.table).schema
        return None


class MaterializedInput(PlanNode):
    """Leaf: an already-materialized relation embedded in the plan."""

    def __init__(self, relation: Relation, label_text: str = "input") -> None:
        self.relation = relation
        self._label = label_text

    def _run(self, ctx: ExecutionContext) -> Relation:
        return self.relation

    def label(self) -> str:
        return f"Materialized({self._label}, rows={len(self.relation)})"

    def _batch_note(self) -> str:
        return "morsel source"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self.relation.schema


class PreparedInput(PlanNode):
    """Leaf: a prepared (normalized) set relation embedded in the plan.

    This is the paper's Figure-1 ``R(A, B, norm)`` input as a plan leaf.
    Executed standalone it yields the First-Normal-Form view; an
    :class:`SSJoinNode` parent recognizes it and hands the wrapped
    :class:`~repro.core.prepared.PreparedRelation` (group dicts, caches
    and all) straight to the physical layer, so the plan path costs
    nothing over the historical facade.
    """

    def __init__(self, prepared: Any, label_text: Optional[str] = None) -> None:
        self.prepared = prepared
        self._label = label_text if label_text is not None else prepared.name

    def _run(self, ctx: ExecutionContext) -> Relation:
        return self.prepared.relation

    def label(self) -> str:
        return (
            f"Prepared({self._label}, groups={self.prepared.num_groups}, "
            f"elements={self.prepared.num_elements})"
        )

    def _batch_note(self) -> str:
        return "morsel source"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self.prepared.relation.schema


class SSJoinNode(PlanNode):
    """The logical SSJoin operator: ``R SSJoin_A S`` over normalized sets.

    Children produce normalized set relations — either
    :class:`PreparedInput` leaves (the fast path: no conversion) or any
    subtree yielding rows with columns ``a, b[, w][, norm]`` (a
    :class:`TableScan` over a First-Normal-Form table, as the SQL
    ``SSJOIN`` clause compiles to).

    The node itself is purely logical: which physical implementation runs
    (basic / prefix / inline / probe / encoded-prefix / encoded-probe) is
    decided at execution time by :mod:`repro.core.physical` using the
    context's cost model — or forced via *implementation*. After
    execution, :attr:`last_result` holds the full
    :class:`~repro.core.physical.SSJoinResult` (pairs, metrics, chosen
    implementation, cost estimate, parallel report).
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Any,
        implementation: str = "auto",
        ordering: Any = None,
        encoding: Any = None,
    ) -> None:
        self.children = (left, right)
        self.predicate = predicate
        self.implementation = implementation
        self.ordering = ordering
        self.encoding = encoding
        #: SSJoinResult of the most recent execution (None before any).
        self.last_result: Any = None

    batch_protocol = "batch"

    def _run(self, ctx: ExecutionContext) -> Relation:
        # Imported here: repro.core layers above repro.relational.
        from repro.core.physical import execute_ssjoin_node

        result = execute_ssjoin_node(self, ctx)
        self.last_result = result
        return result.pairs

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        # The physical layer emits its pairs as a ColumnarRelation (five
        # parallel lists straight from the encoded merge), so feeding a
        # vectorized parent is pure column slicing — no tuple round-trip.
        return stream_relation(self._run(ctx), size)

    def resolve_sides(self, ctx: ExecutionContext) -> Tuple[Any, Any]:
        """Materialize both children as PreparedRelations.

        :class:`PreparedInput` children pass their prepared relation
        through untouched (identity preserved, so self-joins stay
        self-joins); a :class:`TableScan` of an *attached* table reuses
        the stored table's persisted prepared relation (no re-grouping,
        and its page-backed ``.relation`` stays lazy); any other child
        executes and its relation is normalized via
        ``PreparedRelation.from_relation``.
        """
        from repro.core.prepared import PreparedRelation

        sides: List[Any] = []
        for i, child in enumerate(self.children):
            if isinstance(child, PreparedInput):
                sides.append(child.prepared)
            elif i == 1 and self.children[1] is self.children[0]:
                sides.append(sides[0])
            else:
                stored = None
                if isinstance(child, TableScan):
                    table = ctx.catalog.attached(child.table)
                    if table is not None:
                        stored = table.prepared()
                sides.append(
                    stored
                    if stored is not None
                    else PreparedRelation.from_relation(child.execute(ctx))
                )
        return sides[0], sides[1]

    def label(self) -> str:
        return f"SSJoin[{self.implementation}]({self.predicate!r})"

    def annotations(self, context: ExecutionContext) -> Tuple[str, ...]:
        """Per-implementation cost estimates plus the chosen rewrite."""
        from repro.core.optimizer import CostModel

        try:
            left, right = self.resolve_sides(context)
        except Exception:
            return (
                "cost: (inputs not resolvable statically)",
            ) + self._batch_annotation(context)
        model = context.cost_model or CostModel()
        estimates = model.estimate_all(left, right, self.predicate, self.ordering)
        chosen = (
            estimates[0].implementation
            if self.implementation == "auto"
            else self.implementation
        )
        lines = [f"physical: {chosen}" + (
            " (chosen by cost model)" if self.implementation == "auto" else " (forced)"
        )]
        for e in estimates:
            marker = "*" if e.implementation == chosen else " "
            lines.append(f"{marker} cost[{e.implementation}] = {e.cost:.0f}")
        return tuple(lines) + self._batch_annotation(context)

    def _batch_note(self) -> str:
        return "columnar source"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return SSJOIN_RESULT_SCHEMA


class Select(_VectorizedNode):
    """σ over a boolean expression."""

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.children = (child,)
        self.predicate = predicate

    def _run(self, ctx: ExecutionContext) -> Relation:
        return operators.select(self.children[0].execute(ctx), self.predicate)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        return operators.select_stream(
            self.children[0].batches(ctx, size), self.predicate
        )

    def label(self) -> str:
        return f"Select({self.predicate!r})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class Project(_VectorizedNode):
    """π over plain names or ``(name, Expr)`` derived columns."""

    def __init__(self, child: PlanNode, columns: Sequence) -> None:
        self.children = (child,)
        self.columns = list(columns)

    def _run(self, ctx: ExecutionContext) -> Relation:
        return operators.project(self.children[0].execute(ctx), self.columns)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        # Zero-column projections stay columnar too: empty-schema batches
        # carry an explicit row count (see Batch.num_rows), so
        # COUNT(*)-shaped plans never drop to the row protocol.
        pushed = self._pushdown_stream(ctx, size)
        if pushed is not None:
            return pushed
        return operators.project_stream(
            self.children[0].batches(ctx, size), self.columns
        )

    def _pushdown_stream(
        self, ctx: ExecutionContext, size: int
    ) -> Optional[BatchStream]:
        """Projection pushdown into page-backed scans.

        A π of plain column names directly over a :class:`TableScan` of
        an attached table asks the stored relation to stream only those
        columns — the unprojected column segments are never read off
        disk. Derived columns, duplicates, and in-memory tables fall
        through to the generic kernel.
        """
        child = self.children[0]
        if not isinstance(child, TableScan):
            return None
        names = [c for c in self.columns if isinstance(c, str)]
        if len(names) != len(self.columns) or len(set(names)) != len(names):
            return None
        if child.table not in ctx.catalog:
            return None
        relation = ctx.catalog.get(child.table)
        stored = getattr(relation, "iter_stored_batches", None)
        if stored is None or any(n not in relation.schema for n in names):
            return None
        return BatchStream(Schema(names), stored(size, names=names), relation.name)

    def label(self) -> str:
        names = [c if isinstance(c, str) else c[0] for c in self.columns]
        return f"Project({', '.join(names)})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        cols: List[Column] = []
        for c in self.columns:
            if isinstance(c, str):
                cols.append(child.column(c) if c in child else Column(c))
            else:
                cols.append(Column(c[0]))
        return _tolerant_schema(cols)


class Extend(_VectorizedNode):
    """Append one derived column."""

    def __init__(self, child: PlanNode, column: str, expr: Expr) -> None:
        self.children = (child,)
        self.column = column
        self.expr = expr

    def _run(self, ctx: ExecutionContext) -> Relation:
        return operators.extend(self.children[0].execute(ctx), self.column, self.expr)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        return operators.extend_stream(
            self.children[0].batches(ctx, size), self.column, self.expr
        )

    def label(self) -> str:
        return f"Extend({self.column} := {self.expr!r})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        return _tolerant_schema(list(child.columns) + [Column(self.column)])


class Rename(_VectorizedNode):
    """Qualify every column with a table alias (``x`` → ``alias.x``).

    A schema-only rewrite: the batch kernel re-tags each morsel with the
    prefixed schema and passes every column through by reference — zero
    copies, zero row tuples. The SQL compiler inserts one above each scan
    of a joined table, mirroring SQL's alias qualification.
    """

    def __init__(self, child: PlanNode, prefix: str) -> None:
        self.children = (child,)
        self.prefix = prefix

    def _run(self, ctx: ExecutionContext) -> Relation:
        return self.children[0].execute(ctx).prefixed(self.prefix)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        stream = self.children[0].batches(ctx, size)
        out_schema = stream.schema.prefixed(self.prefix)

        def gen() -> Iterator[Batch]:
            for batch in stream:
                yield Batch(out_schema, batch.columns, num_rows=batch.num_rows)

        return BatchStream(out_schema, gen(), stream.name)

    def label(self) -> str:
        return f"Rename({self.prefix}.*)"

    def _batch_note(self) -> str:
        return "vectorized (zero-copy)"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        return child.prefixed(self.prefix)


class Distinct(_VectorizedNode):
    """δ duplicate elimination."""

    def __init__(self, child: PlanNode) -> None:
        self.children = (child,)

    def _run(self, ctx: ExecutionContext) -> Relation:
        return self.children[0].execute(ctx).distinct()

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        return operators.distinct_stream(self.children[0].batches(ctx, size))

    def label(self) -> str:
        return "Distinct()"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class OrderBy(_VectorizedNode):
    """Sort by keys (see :func:`repro.relational.operators.order_by`)."""

    def __init__(self, child: PlanNode, keys: Sequence) -> None:
        self.children = (child,)
        self.keys = list(keys)

    def _run(self, ctx: ExecutionContext) -> Relation:
        return operators.order_by(self.children[0].execute(ctx), self.keys)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        return operators.order_by_stream(
            self.children[0].batches(ctx, size), self.keys, batch_size=size
        )

    def label(self) -> str:
        parts = []
        for key in self.keys:
            target, descending = operators.split_order_key(key)
            text = target if isinstance(target, str) else repr(target)
            parts.append(f"{text} DESC" if descending else text)
        return f"OrderBy({', '.join(parts)})"

    def _batch_note(self) -> str:
        return "vectorized sort (blocking)"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class Limit(_VectorizedNode):
    """Keep the first *n* rows."""

    def __init__(self, child: PlanNode, n: int) -> None:
        self.children = (child,)
        self.n = n

    def _run(self, ctx: ExecutionContext) -> Relation:
        return operators.limit(self.children[0].execute(ctx), self.n)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        return operators.limit_stream(self.children[0].batches(ctx, size), self.n)

    def label(self) -> str:
        return f"Limit({self.n})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class _JoinBase(_VectorizedNode):
    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        keys: Any,
        prefixes: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.children = (left, right)
        self.keys = keys
        self.prefixes = prefixes

    def label(self) -> str:
        return f"{type(self).__name__}(keys={self.keys})"

    def _child_streams(
        self, ctx: ExecutionContext, size: int
    ) -> Tuple[BatchStream, BatchStream]:
        return (
            self.children[0].batches(ctx, size),
            self.children[1].batches(ctx, size),
        )

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        left = self._child_schema(catalog, 0)
        right = self._child_schema(catalog, 1)
        if left is None or right is None:
            return None
        return _disambiguated_join_schema(left, right, self.prefixes)


class HashJoin(_JoinBase):
    """Equi-join executed by build/probe hashing."""

    def _run(self, ctx: ExecutionContext) -> Relation:
        left = self.children[0].execute(ctx)
        right = self.children[1].execute(ctx)
        return hash_join(left, right, self.keys, prefixes=self.prefixes)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        left, right = self._child_streams(ctx, size)
        return hash_join_stream(
            left, right, self.keys, prefixes=self.prefixes, batch_size=size
        )

    def _batch_note(self) -> str:
        return "vectorized build/probe"


class MergeJoin(_JoinBase):
    """Equi-join executed by sort-merge."""

    def _run(self, ctx: ExecutionContext) -> Relation:
        left = self.children[0].execute(ctx)
        right = self.children[1].execute(ctx)
        return merge_join(left, right, self.keys, prefixes=self.prefixes)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        left, right = self._child_streams(ctx, size)
        return merge_join_stream(
            left, right, self.keys, prefixes=self.prefixes, batch_size=size
        )

    def _batch_note(self) -> str:
        return "vectorized sort-merge"


class LeftOuterJoin(_JoinBase):
    """LEFT OUTER equi-join (unmatched left rows survive, NULL-padded)."""

    def _run(self, ctx: ExecutionContext) -> Relation:
        left = self.children[0].execute(ctx)
        right = self.children[1].execute(ctx)
        return left_outer_join(left, right, self.keys, prefixes=self.prefixes)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        left, right = self._child_streams(ctx, size)
        return left_outer_join_stream(
            left, right, self.keys, prefixes=self.prefixes, batch_size=size
        )

    def _batch_note(self) -> str:
        return "vectorized build/probe (outer)"


class NestedLoopJoin(PlanNode):
    """θ-join over an arbitrary row-pair predicate (the UDF plan)."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Callable[[Tuple[Any, ...], Tuple[Any, ...]], bool],
        prefixes: Optional[Tuple[str, str]] = None,
        description: str = "udf",
    ) -> None:
        self.children = (left, right)
        self.predicate = predicate
        self.prefixes = prefixes
        self.description = description

    def _run(self, ctx: ExecutionContext) -> Relation:
        left = self.children[0].execute(ctx)
        right = self.children[1].execute(ctx)
        return nested_loop_join(left, right, self.predicate, prefixes=self.prefixes)

    def label(self) -> str:
        return f"NestedLoopJoin({self.description})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        left = self._child_schema(catalog, 0)
        right = self._child_schema(catalog, 1)
        if left is None or right is None:
            return None
        return _disambiguated_join_schema(left, right, self.prefixes)


class GroupBy(_VectorizedNode):
    """γ with aggregates and optional HAVING."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        aggregates: Sequence[Aggregate],
        having: Optional[Expr] = None,
    ) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.having = having

    def _run(self, ctx: ExecutionContext) -> Relation:
        child = self.children[0].execute(ctx)
        return group_by(child, self.keys, self.aggregates, having=self.having)

    def batches(self, ctx: ExecutionContext, size: int) -> BatchStream:
        return group_by_stream(
            self.children[0].batches(ctx, size),
            self.keys,
            self.aggregates,
            having=self.having,
            batch_size=size,
        )

    def _batch_note(self) -> str:
        return "vectorized hash aggregate"

    def label(self) -> str:
        aggs = ", ".join(a.name for a in self.aggregates)
        text = f"GroupBy(keys={self.keys}, aggs=[{aggs}]"
        if self.having is not None:
            text += f", having={self.having!r}"
        return text + ")"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        cols = [
            child.column(k) if k in child else Column(k) for k in self.keys
        ] + [Column(a.name) for a in self.aggregates]
        return _tolerant_schema(cols)


class Groupwise(PlanNode):
    """Groupwise-processing operator: per-group subquery application."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        subquery: Callable[[Relation], Relation],
        description: str = "subquery",
        declares: Optional[Schema] = None,
    ) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.subquery = subquery
        self.description = description
        self.declares = declares

    def _run(self, ctx: ExecutionContext) -> Relation:
        child = self.children[0].execute(ctx)
        return groupwise_apply(child, self.keys, self.subquery)

    def label(self) -> str:
        return f"Groupwise(keys={self.keys}, subquery={self.description})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        if self.declares is not None:
            return self.declares
        # Undeclared subqueries are probed against an empty group: the
        # schema-preserving common case (filter/truncate/sort) and plain
        # projections both resolve, so PV1xx propagation no longer goes
        # blind below this node; exotic subqueries degrade to None.
        return _probed_schema(self.subquery, self._child_schema(catalog))


class Custom(PlanNode):
    """Escape hatch: wrap an arbitrary relation transformer as a node.

    SSJoin implementations use this for steps (like prefix extraction with
    carried state) that compose several primitive operators.
    """

    def __init__(
        self,
        child: PlanNode,
        fn: Callable[[Relation], Relation],
        description: str,
        declares: Optional[Schema] = None,
    ) -> None:
        self.children = (child,)
        self.fn = fn
        self.description = description
        self.declares = declares

    def _run(self, ctx: ExecutionContext) -> Relation:
        return self.fn(self.children[0].execute(ctx))

    def label(self) -> str:
        return f"Custom({self.description})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        if self.declares is not None:
            return self.declares
        return _probed_schema(self.fn, self._child_schema(catalog))


def explain(
    node: PlanNode,
    indent: str = "",
    context: Optional[ExecutionContext] = None,
) -> str:
    """Render a plan tree as an indented multi-line string.

    With a *context*, nodes contribute :meth:`PlanNode.annotations` —
    cost estimates and the chosen physical implementation for SSJoin
    nodes — rendered as ``-- ...`` lines under the node's label.
    """
    if not isinstance(node, PlanNode):
        raise PlanError(f"cannot explain {node!r}")
    lines = [indent + node.label()]
    if context is not None:
        for note in node.annotations(context):
            lines.append(indent + "  -- " + note)
    for child in node.children:
        lines.append(explain(child, indent + "  ", context=context))
    return "\n".join(lines)
