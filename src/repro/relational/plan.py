"""Logical operator trees with an executor and EXPLAIN rendering.

The paper communicates every SSJoin implementation as an operator tree
(Figures 3–9). This module lets the library build the same trees as data,
execute them against a :class:`~repro.relational.catalog.Catalog`, and
pretty-print them — which is how ``SSJoin.explain()`` shows users exactly
which plan (basic / prefix-filter / inline) was chosen.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational import operators
from repro.relational.aggregates import Aggregate, group_by
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expr
from repro.relational.groupwise import groupwise_apply
from repro.relational.joins import hash_join, merge_join, nested_loop_join
from repro.relational.relation import Relation

__all__ = [
    "PlanNode",
    "TableScan",
    "MaterializedInput",
    "Select",
    "Project",
    "Extend",
    "Distinct",
    "OrderBy",
    "Limit",
    "HashJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "GroupBy",
    "Groupwise",
    "Custom",
    "explain",
]


class PlanNode:
    """Base class of all logical plan nodes."""

    #: Child nodes, in order. Populated by subclasses.
    children: Tuple["PlanNode", ...] = ()

    def execute(self, catalog: Catalog) -> Relation:
        """Evaluate this subtree against *catalog* and return its result."""
        raise NotImplementedError

    def label(self) -> str:
        """One-line description used by :func:`explain`."""
        return type(self).__name__


class TableScan(PlanNode):
    """Leaf: read a named table from the catalog."""

    def __init__(self, table: str) -> None:
        self.table = table

    def execute(self, catalog: Catalog) -> Relation:
        return catalog.get(self.table)

    def label(self) -> str:
        return f"Scan({self.table})"


class MaterializedInput(PlanNode):
    """Leaf: an already-materialized relation embedded in the plan."""

    def __init__(self, relation: Relation, label_text: str = "input") -> None:
        self.relation = relation
        self._label = label_text

    def execute(self, catalog: Catalog) -> Relation:
        return self.relation

    def label(self) -> str:
        return f"Materialized({self._label}, rows={len(self.relation)})"


class Select(PlanNode):
    """σ over a boolean expression."""

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.children = (child,)
        self.predicate = predicate

    def execute(self, catalog: Catalog) -> Relation:
        return operators.select(self.children[0].execute(catalog), self.predicate)

    def label(self) -> str:
        return f"Select({self.predicate!r})"


class Project(PlanNode):
    """π over plain names or ``(name, Expr)`` derived columns."""

    def __init__(self, child: PlanNode, columns: Sequence) -> None:
        self.children = (child,)
        self.columns = list(columns)

    def execute(self, catalog: Catalog) -> Relation:
        return operators.project(self.children[0].execute(catalog), self.columns)

    def label(self) -> str:
        names = [c if isinstance(c, str) else c[0] for c in self.columns]
        return f"Project({', '.join(names)})"


class Extend(PlanNode):
    """Append one derived column."""

    def __init__(self, child: PlanNode, column: str, expr: Expr) -> None:
        self.children = (child,)
        self.column = column
        self.expr = expr

    def execute(self, catalog: Catalog) -> Relation:
        return operators.extend(self.children[0].execute(catalog), self.column, self.expr)

    def label(self) -> str:
        return f"Extend({self.column} := {self.expr!r})"


class Distinct(PlanNode):
    """δ duplicate elimination."""

    def __init__(self, child: PlanNode) -> None:
        self.children = (child,)

    def execute(self, catalog: Catalog) -> Relation:
        return self.children[0].execute(catalog).distinct()


class OrderBy(PlanNode):
    """Sort by keys (see :func:`repro.relational.operators.order_by`)."""

    def __init__(self, child: PlanNode, keys: Sequence) -> None:
        self.children = (child,)
        self.keys = list(keys)

    def execute(self, catalog: Catalog) -> Relation:
        return operators.order_by(self.children[0].execute(catalog), self.keys)

    def label(self) -> str:
        return f"OrderBy({self.keys})"


class Limit(PlanNode):
    """Keep the first *n* rows."""

    def __init__(self, child: PlanNode, n: int) -> None:
        self.children = (child,)
        self.n = n

    def execute(self, catalog: Catalog) -> Relation:
        return operators.limit(self.children[0].execute(catalog), self.n)

    def label(self) -> str:
        return f"Limit({self.n})"


class _JoinBase(PlanNode):
    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        keys,
        prefixes: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.children = (left, right)
        self.keys = keys
        self.prefixes = prefixes

    def label(self) -> str:
        return f"{type(self).__name__}(keys={self.keys})"


class HashJoin(_JoinBase):
    """Equi-join executed by build/probe hashing."""

    def execute(self, catalog: Catalog) -> Relation:
        left = self.children[0].execute(catalog)
        right = self.children[1].execute(catalog)
        return hash_join(left, right, self.keys, prefixes=self.prefixes)


class MergeJoin(_JoinBase):
    """Equi-join executed by sort-merge."""

    def execute(self, catalog: Catalog) -> Relation:
        left = self.children[0].execute(catalog)
        right = self.children[1].execute(catalog)
        return merge_join(left, right, self.keys, prefixes=self.prefixes)


class NestedLoopJoin(PlanNode):
    """θ-join over an arbitrary row-pair predicate (the UDF plan)."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Callable[[Tuple[Any, ...], Tuple[Any, ...]], bool],
        prefixes: Optional[Tuple[str, str]] = None,
        description: str = "udf",
    ) -> None:
        self.children = (left, right)
        self.predicate = predicate
        self.prefixes = prefixes
        self.description = description

    def execute(self, catalog: Catalog) -> Relation:
        left = self.children[0].execute(catalog)
        right = self.children[1].execute(catalog)
        return nested_loop_join(left, right, self.predicate, prefixes=self.prefixes)

    def label(self) -> str:
        return f"NestedLoopJoin({self.description})"


class GroupBy(PlanNode):
    """γ with aggregates and optional HAVING."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        aggregates: Sequence[Aggregate],
        having: Optional[Expr] = None,
    ) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.having = having

    def execute(self, catalog: Catalog) -> Relation:
        child = self.children[0].execute(catalog)
        return group_by(child, self.keys, self.aggregates, having=self.having)

    def label(self) -> str:
        aggs = ", ".join(a.name for a in self.aggregates)
        text = f"GroupBy(keys={self.keys}, aggs=[{aggs}]"
        if self.having is not None:
            text += f", having={self.having!r}"
        return text + ")"


class Groupwise(PlanNode):
    """Groupwise-processing operator: per-group subquery application."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        subquery: Callable[[Relation], Relation],
        description: str = "subquery",
    ) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.subquery = subquery
        self.description = description

    def execute(self, catalog: Catalog) -> Relation:
        child = self.children[0].execute(catalog)
        return groupwise_apply(child, self.keys, self.subquery)

    def label(self) -> str:
        return f"Groupwise(keys={self.keys}, subquery={self.description})"


class Custom(PlanNode):
    """Escape hatch: wrap an arbitrary relation transformer as a node.

    SSJoin implementations use this for steps (like prefix extraction with
    carried state) that compose several primitive operators.
    """

    def __init__(
        self,
        child: PlanNode,
        fn: Callable[[Relation], Relation],
        description: str,
    ) -> None:
        self.children = (child,)
        self.fn = fn
        self.description = description

    def execute(self, catalog: Catalog) -> Relation:
        return self.fn(self.children[0].execute(catalog))

    def label(self) -> str:
        return f"Custom({self.description})"


def explain(node: PlanNode, indent: str = "") -> str:
    """Render a plan tree as an indented multi-line string."""
    if not isinstance(node, PlanNode):
        raise PlanError(f"cannot explain {node!r}")
    lines = [indent + node.label()]
    for child in node.children:
        lines.append(explain(child, indent + "  "))
    return "\n".join(lines)
