"""Logical operator trees with an executor and EXPLAIN rendering.

The paper communicates every SSJoin implementation as an operator tree
(Figures 3–9). This module lets the library build the same trees as data,
execute them against a :class:`~repro.relational.catalog.Catalog`, and
pretty-print them — which is how ``SSJoin.explain()`` shows users exactly
which plan (basic / prefix-filter / inline) was chosen.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational import operators
from repro.relational.aggregates import Aggregate, group_by
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expr
from repro.relational.groupwise import groupwise_apply
from repro.relational.joins import hash_join, merge_join, nested_loop_join
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "PlanNode",
    "TableScan",
    "MaterializedInput",
    "Select",
    "Project",
    "Extend",
    "Distinct",
    "OrderBy",
    "Limit",
    "HashJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "GroupBy",
    "Groupwise",
    "Custom",
    "explain",
]


def _tolerant_schema(columns: Sequence[Column]) -> Schema:
    """Build a schema for *static propagation*, dropping duplicate names.

    The runtime operators raise on duplicates; the static checker reports
    that as a diagnostic instead and still wants a usable schema for the
    rest of the tree, so propagation keeps the first occurrence.
    """
    seen = set()
    kept: List[Column] = []
    for c in columns:
        if c.name not in seen:
            seen.add(c.name)
            kept.append(c)
    return Schema(kept)


def _disambiguated_join_schema(
    left: Schema, right: Schema, prefixes: Optional[Tuple[str, str]]
) -> Schema:
    """Static mirror of the equi-join output schema.

    Replicates :func:`repro.relational.joins._prefixed_pair`: with
    *prefixes* both sides are qualified; without, clashing right-side
    names get ``_2``/``_3``... suffixes.
    """
    if prefixes is not None:
        lp, rp = prefixes
        return _tolerant_schema(
            list(left.prefixed(lp).columns) + list(right.prefixed(rp).columns)
        )
    taken = set(left.names)
    cols: List[Column] = list(left.columns)
    for col in right.columns:
        name = col.name
        if name in taken:
            n = 2
            while f"{name}_{n}" in taken:
                n += 1
            name = f"{name}_{n}"
        taken.add(name)
        cols.append(col.renamed(name))
    return Schema(cols)


class PlanNode:
    """Base class of all logical plan nodes.

    Besides execution, every node participates in **static schema
    propagation**: :meth:`output_schema` computes the schema this node
    would produce from its children's schemas *without executing
    anything*. Nodes wrapping opaque callables (:class:`Custom`,
    :class:`Groupwise`) return ``None`` (unknown) unless constructed with
    a declared output schema — the plan verifier
    (:mod:`repro.analysis.plan_verifier`) degrades gracefully on unknown
    subtrees and checks everything else.
    """

    #: Child nodes, in order. Populated by subclasses.
    children: Tuple["PlanNode", ...] = ()

    def execute(self, catalog: Catalog) -> Relation:
        """Evaluate this subtree against *catalog* and return its result."""
        raise NotImplementedError

    def label(self) -> str:
        """One-line description used by :func:`explain`."""
        return type(self).__name__

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        """The statically-known output schema, or ``None`` if unknowable.

        Never raises: unknown column references propagate as best-effort
        placeholder columns so one bad reference doesn't hide findings in
        the rest of the tree (the verifier reports the reference itself).
        """
        return None

    def _child_schema(
        self, catalog: Optional[Catalog], index: int = 0
    ) -> Optional[Schema]:
        return self.children[index].output_schema(catalog)


class TableScan(PlanNode):
    """Leaf: read a named table from the catalog."""

    def __init__(self, table: str) -> None:
        self.table = table

    def execute(self, catalog: Catalog) -> Relation:
        return catalog.get(self.table)

    def label(self) -> str:
        return f"Scan({self.table})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        if catalog is not None and self.table in catalog:
            return catalog.get(self.table).schema
        return None


class MaterializedInput(PlanNode):
    """Leaf: an already-materialized relation embedded in the plan."""

    def __init__(self, relation: Relation, label_text: str = "input") -> None:
        self.relation = relation
        self._label = label_text

    def execute(self, catalog: Catalog) -> Relation:
        return self.relation

    def label(self) -> str:
        return f"Materialized({self._label}, rows={len(self.relation)})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self.relation.schema


class Select(PlanNode):
    """σ over a boolean expression."""

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.children = (child,)
        self.predicate = predicate

    def execute(self, catalog: Catalog) -> Relation:
        return operators.select(self.children[0].execute(catalog), self.predicate)

    def label(self) -> str:
        return f"Select({self.predicate!r})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class Project(PlanNode):
    """π over plain names or ``(name, Expr)`` derived columns."""

    def __init__(self, child: PlanNode, columns: Sequence) -> None:
        self.children = (child,)
        self.columns = list(columns)

    def execute(self, catalog: Catalog) -> Relation:
        return operators.project(self.children[0].execute(catalog), self.columns)

    def label(self) -> str:
        names = [c if isinstance(c, str) else c[0] for c in self.columns]
        return f"Project({', '.join(names)})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        cols: List[Column] = []
        for c in self.columns:
            if isinstance(c, str):
                cols.append(child.column(c) if c in child else Column(c))
            else:
                cols.append(Column(c[0]))
        return _tolerant_schema(cols)


class Extend(PlanNode):
    """Append one derived column."""

    def __init__(self, child: PlanNode, column: str, expr: Expr) -> None:
        self.children = (child,)
        self.column = column
        self.expr = expr

    def execute(self, catalog: Catalog) -> Relation:
        return operators.extend(self.children[0].execute(catalog), self.column, self.expr)

    def label(self) -> str:
        return f"Extend({self.column} := {self.expr!r})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        return _tolerant_schema(list(child.columns) + [Column(self.column)])


class Distinct(PlanNode):
    """δ duplicate elimination."""

    def __init__(self, child: PlanNode) -> None:
        self.children = (child,)

    def execute(self, catalog: Catalog) -> Relation:
        return self.children[0].execute(catalog).distinct()

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class OrderBy(PlanNode):
    """Sort by keys (see :func:`repro.relational.operators.order_by`)."""

    def __init__(self, child: PlanNode, keys: Sequence) -> None:
        self.children = (child,)
        self.keys = list(keys)

    def execute(self, catalog: Catalog) -> Relation:
        return operators.order_by(self.children[0].execute(catalog), self.keys)

    def label(self) -> str:
        return f"OrderBy({self.keys})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class Limit(PlanNode):
    """Keep the first *n* rows."""

    def __init__(self, child: PlanNode, n: int) -> None:
        self.children = (child,)
        self.n = n

    def execute(self, catalog: Catalog) -> Relation:
        return operators.limit(self.children[0].execute(catalog), self.n)

    def label(self) -> str:
        return f"Limit({self.n})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self._child_schema(catalog)


class _JoinBase(PlanNode):
    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        keys: Any,
        prefixes: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.children = (left, right)
        self.keys = keys
        self.prefixes = prefixes

    def label(self) -> str:
        return f"{type(self).__name__}(keys={self.keys})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        left = self._child_schema(catalog, 0)
        right = self._child_schema(catalog, 1)
        if left is None or right is None:
            return None
        return _disambiguated_join_schema(left, right, self.prefixes)


class HashJoin(_JoinBase):
    """Equi-join executed by build/probe hashing."""

    def execute(self, catalog: Catalog) -> Relation:
        left = self.children[0].execute(catalog)
        right = self.children[1].execute(catalog)
        return hash_join(left, right, self.keys, prefixes=self.prefixes)


class MergeJoin(_JoinBase):
    """Equi-join executed by sort-merge."""

    def execute(self, catalog: Catalog) -> Relation:
        left = self.children[0].execute(catalog)
        right = self.children[1].execute(catalog)
        return merge_join(left, right, self.keys, prefixes=self.prefixes)


class NestedLoopJoin(PlanNode):
    """θ-join over an arbitrary row-pair predicate (the UDF plan)."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Callable[[Tuple[Any, ...], Tuple[Any, ...]], bool],
        prefixes: Optional[Tuple[str, str]] = None,
        description: str = "udf",
    ) -> None:
        self.children = (left, right)
        self.predicate = predicate
        self.prefixes = prefixes
        self.description = description

    def execute(self, catalog: Catalog) -> Relation:
        left = self.children[0].execute(catalog)
        right = self.children[1].execute(catalog)
        return nested_loop_join(left, right, self.predicate, prefixes=self.prefixes)

    def label(self) -> str:
        return f"NestedLoopJoin({self.description})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        left = self._child_schema(catalog, 0)
        right = self._child_schema(catalog, 1)
        if left is None or right is None:
            return None
        return _disambiguated_join_schema(left, right, self.prefixes)


class GroupBy(PlanNode):
    """γ with aggregates and optional HAVING."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        aggregates: Sequence[Aggregate],
        having: Optional[Expr] = None,
    ) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.having = having

    def execute(self, catalog: Catalog) -> Relation:
        child = self.children[0].execute(catalog)
        return group_by(child, self.keys, self.aggregates, having=self.having)

    def label(self) -> str:
        aggs = ", ".join(a.name for a in self.aggregates)
        text = f"GroupBy(keys={self.keys}, aggs=[{aggs}]"
        if self.having is not None:
            text += f", having={self.having!r}"
        return text + ")"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        child = self._child_schema(catalog)
        if child is None:
            return None
        cols = [
            child.column(k) if k in child else Column(k) for k in self.keys
        ] + [Column(a.name) for a in self.aggregates]
        return _tolerant_schema(cols)


class Groupwise(PlanNode):
    """Groupwise-processing operator: per-group subquery application."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        subquery: Callable[[Relation], Relation],
        description: str = "subquery",
        declares: Optional[Schema] = None,
    ) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.subquery = subquery
        self.description = description
        self.declares = declares

    def execute(self, catalog: Catalog) -> Relation:
        child = self.children[0].execute(catalog)
        return groupwise_apply(child, self.keys, self.subquery)

    def label(self) -> str:
        return f"Groupwise(keys={self.keys}, subquery={self.description})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        if self.declares is not None:
            return self.declares
        # A subquery that preserves the group schema (filter/truncate) is
        # the common case, but it may also project — unknowable statically
        # without a declaration.
        return None


class Custom(PlanNode):
    """Escape hatch: wrap an arbitrary relation transformer as a node.

    SSJoin implementations use this for steps (like prefix extraction with
    carried state) that compose several primitive operators.
    """

    def __init__(
        self,
        child: PlanNode,
        fn: Callable[[Relation], Relation],
        description: str,
        declares: Optional[Schema] = None,
    ) -> None:
        self.children = (child,)
        self.fn = fn
        self.description = description
        self.declares = declares

    def execute(self, catalog: Catalog) -> Relation:
        return self.fn(self.children[0].execute(catalog))

    def label(self) -> str:
        return f"Custom({self.description})"

    def output_schema(self, catalog: Optional[Catalog] = None) -> Optional[Schema]:
        return self.declares


def explain(node: PlanNode, indent: str = "") -> str:
    """Render a plan tree as an indented multi-line string."""
    if not isinstance(node, PlanNode):
        raise PlanError(f"cannot explain {node!r}")
    lines = [indent + node.label()]
    for child in node.children:
        lines.append(explain(child, indent + "  "))
    return "\n".join(lines)
