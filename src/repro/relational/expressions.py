"""A small scalar-expression language over relation rows.

SSJoin predicates in the paper are expressions like
``Overlap_B(a_r, a_s) >= 0.8 * R.norm`` — i.e. comparisons between an
aggregate and an arithmetic expression over grouping columns. This module
provides exactly that much expression power, compiled to fast row functions:

>>> from repro.relational.schema import Schema
>>> e = col("norm") * const(0.8) + const(1)
>>> f = e.bind(Schema(["a", "norm"]))
>>> f(("x", 10))
9.0

Expressions are immutable trees; :meth:`Expr.bind` resolves column names to
tuple positions once so evaluation does no dict lookups per row.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, List, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.batch import Batch

__all__ = [
    "Expr",
    "ColumnRef",
    "Constant",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "col",
    "const",
    "maximum",
    "minimum",
]

RowFn = Callable[[Tuple[Any, ...]], Any]

#: Vectorized evaluator: one whole column of values per batch.
BatchFn = Callable[["Batch"], Sequence[Any]]

#: Vectorized predicate: the (ascending) selection vector of surviving rows.
SelectFn = Callable[["Batch"], List[int]]

#: Comparison symbols whose batch predicates compile to direct selection
#: vectors (no intermediate boolean column).
_COMPARISON_SYMBOLS = frozenset((">=", ">", "<=", "<", "=", "<>"))


class Expr:
    """Base class for scalar expressions.

    Supports Python operator overloading to build trees:
    ``col("x") * 0.8 + 1`` etc. Comparisons produce boolean-valued
    expressions usable as selection predicates.
    """

    def bind(self, schema: Schema) -> RowFn:
        """Compile this expression against *schema* into ``row -> value``."""
        raise NotImplementedError

    def bind_batch(self, schema: Schema) -> BatchFn:
        """Compile into ``batch -> column`` for the vectorized path.

        Subclasses override with kernels that evaluate whole columns at
        once; this fallback keeps arbitrary :class:`Expr` subclasses
        working by applying the row function along transposed rows.
        """
        fn = self.bind(schema)
        return lambda batch: [fn(row) for row in batch.to_rows()]

    def bind_select(self, schema: Schema) -> SelectFn:
        """Compile into ``batch -> selection vector`` (surviving indices).

        The fallback evaluates the whole expression as a column and
        enumerates the truthy positions — the same truthiness rule the
        row path's ``if fn(row)`` applies. Comparisons and fused
        conjunctions override this with single-pass kernels.
        """
        vf = self.bind_batch(schema)
        return lambda batch: [i for i, v in enumerate(vf(batch)) if v]

    def columns(self) -> Tuple[str, ...]:
        """All column names referenced by this expression."""
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------------

    def _binary(self, other: Any, op: Callable, symbol: str) -> "BinaryOp":
        return BinaryOp(self, _wrap(other), op, symbol)

    def __add__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.add, "+")

    def __radd__(self, other: Any) -> "BinaryOp":
        return _wrap(other)._binary(self, operator.add, "+")

    def __sub__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.sub, "-")

    def __rsub__(self, other: Any) -> "BinaryOp":
        return _wrap(other)._binary(self, operator.sub, "-")

    def __mul__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.mul, "*")

    def __rmul__(self, other: Any) -> "BinaryOp":
        return _wrap(other)._binary(self, operator.mul, "*")

    def __truediv__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.truediv, "/")

    def __ge__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.ge, ">=")

    def __gt__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.gt, ">")

    def __le__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.le, "<=")

    def __lt__(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.lt, "<")

    def eq(self, other: Any) -> "BinaryOp":
        """Equality comparison (named method; ``==`` is reserved)."""
        return self._binary(other, operator.eq, "=")

    def ne(self, other: Any) -> "BinaryOp":
        return self._binary(other, operator.ne, "<>")

    def and_(self, other: Any) -> "BinaryOp":
        return self._binary(other, lambda a, b: bool(a and b), "AND")

    def or_(self, other: Any) -> "BinaryOp":
        return self._binary(other, lambda a, b: bool(a or b), "OR")


class ColumnRef(Expr):
    """Reference to a named column of the bound schema."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(self, schema: Schema) -> RowFn:
        return operator.itemgetter(schema.position(self.name))

    def bind_batch(self, schema: Schema) -> BatchFn:
        # Zero copy: a column reference *is* the stored column.
        pos = schema.position(self.name)
        return lambda batch: batch.columns[pos]

    def columns(self) -> Tuple[str, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


class Constant(Expr):
    """A literal value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def bind_batch(self, schema: Schema) -> BatchFn:
        value = self.value
        return lambda batch: [value] * batch.num_rows

    def columns(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return repr(self.value)


class BinaryOp(Expr):
    """Application of a binary operator to two subexpressions."""

    __slots__ = ("left", "right", "op", "symbol")

    def __init__(self, left: Expr, right: Expr, op: Callable, symbol: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Schema) -> RowFn:
        op = self.op
        # Constant operands are folded into the closure: plan predicates
        # like ``overlap >= 0.8 * norm`` run once per candidate row, so
        # a saved indirection per row is measurable at join scale.
        if isinstance(self.right, Constant):
            lf = self.left.bind(schema)
            rv = self.right.value
            return lambda row: op(lf(row), rv)
        if isinstance(self.left, Constant):
            lv = self.left.value
            rf = self.right.bind(schema)
            return lambda row: op(lv, rf(row))
        lf = self.left.bind(schema)
        rf = self.right.bind(schema)
        return lambda row: op(lf(row), rf(row))

    def bind_batch(self, schema: Schema) -> BatchFn:
        op = self.op
        # Same constant folding as bind(), lifted to columns: the folded
        # comparison runs one C-driven comprehension over the column
        # instead of a closure call per row.
        if isinstance(self.right, Constant):
            lf = self.left.bind_batch(schema)
            rv = self.right.value
            return lambda batch: [op(v, rv) for v in lf(batch)]
        if isinstance(self.left, Constant):
            lv = self.left.value
            rf = self.right.bind_batch(schema)
            return lambda batch: [op(lv, v) for v in rf(batch)]
        lf = self.left.bind_batch(schema)
        rf = self.right.bind_batch(schema)
        return lambda batch: list(map(op, lf(batch), rf(batch)))

    def bind_select(self, schema: Schema) -> SelectFn:
        op = self.op
        # Comparisons against a folded constant emit the selection vector
        # in one pass — no intermediate boolean column is ever built.
        if self.symbol in _COMPARISON_SYMBOLS:
            if isinstance(self.right, Constant):
                lf = self.left.bind_batch(schema)
                rv = self.right.value
                return lambda batch: [
                    i for i, v in enumerate(lf(batch)) if op(v, rv)
                ]
            if isinstance(self.left, Constant):
                lv = self.left.value
                rf = self.right.bind_batch(schema)
                return lambda batch: [
                    i for i, v in enumerate(rf(batch)) if op(lv, v)
                ]
            lf = self.left.bind_batch(schema)
            rf = self.right.bind_batch(schema)
            return lambda batch: [
                i
                for i, (a, b) in enumerate(zip(lf(batch), rf(batch)))
                if op(a, b)
            ]
        # Fused conjunction/disjunction: combine the children's selection
        # vectors instead of materializing boolean columns and AND-ing
        # them row-wise. Both children's vectors are ascending, so the
        # set intersection/union preserves row order.
        if self.symbol == "AND":
            ls = self.left.bind_select(schema)
            rs = self.right.bind_select(schema)

            def fused_and(batch: "Batch") -> List[int]:
                keep = set(rs(batch))
                return [i for i in ls(batch) if i in keep]

            return fused_and
        if self.symbol == "OR":
            ls = self.left.bind_select(schema)
            rs = self.right.bind_select(schema)

            def fused_or(batch: "Batch") -> List[int]:
                return sorted(set(ls(batch)) | set(rs(batch)))

            return fused_or
        return super().bind_select(schema)

    def columns(self) -> Tuple[str, ...]:
        return self.left.columns() + self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryOp(Expr):
    """Application of a unary function to a subexpression."""

    __slots__ = ("child", "op", "symbol")

    def __init__(self, child: Expr, op: Callable, symbol: str) -> None:
        self.child = child
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Schema) -> RowFn:
        cf = self.child.bind(schema)
        op = self.op
        return lambda row: op(cf(row))

    def bind_batch(self, schema: Schema) -> BatchFn:
        cf = self.child.bind_batch(schema)
        op = self.op
        return lambda batch: list(map(op, cf(batch)))

    def columns(self) -> Tuple[str, ...]:
        return self.child.columns()

    def __repr__(self) -> str:
        return f"{self.symbol}({self.child!r})"


class FunctionCall(Expr):
    """An n-ary scalar function over subexpressions (e.g. MAX of two norms)."""

    __slots__ = ("args", "fn", "fname")

    def __init__(self, fname: str, fn: Callable, args: Tuple[Expr, ...]) -> None:
        if not args:
            raise PlanError(f"function {fname} requires at least one argument")
        self.fname = fname
        self.fn = fn
        self.args = args

    def bind(self, schema: Schema) -> RowFn:
        fn = self.fn
        # The joins layer runs similarity UDFs over plain column refs for
        # every candidate pair; resolving those through one C-level
        # itemgetter beats a per-argument closure chain.
        if all(isinstance(a, ColumnRef) for a in self.args):
            positions = [schema.position(a.name) for a in self.args]
            if len(positions) == 1:
                getter = operator.itemgetter(positions[0])
                return lambda row: fn(getter(row))
            getter = operator.itemgetter(*positions)
            return lambda row: fn(*getter(row))
        bound = [a.bind(schema) for a in self.args]
        return lambda row: fn(*[b(row) for b in bound])

    def bind_batch(self, schema: Schema) -> BatchFn:
        fn = self.fn
        # The batched UDF call: map() drives the whole column through the
        # function in C, reading argument columns in place when every
        # argument is a plain column reference.
        if all(isinstance(a, ColumnRef) for a in self.args):
            positions = [schema.position(a.name) for a in self.args]
            return lambda batch: list(
                map(fn, *[batch.columns[p] for p in positions])
            )
        bound = [a.bind_batch(schema) for a in self.args]
        return lambda batch: list(map(fn, *[b(batch) for b in bound]))

    def columns(self) -> Tuple[str, ...]:
        out: Tuple[str, ...] = ()
        for a in self.args:
            out += a.columns()
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.fname}({inner})"


def _wrap(value: Any) -> Expr:
    """Coerce a Python literal into an :class:`Expr`."""
    return value if isinstance(value, Expr) else Constant(value)


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def const(value: Any) -> Constant:
    """Shorthand constructor for a literal."""
    return Constant(value)


def maximum(*args: Any) -> FunctionCall:
    """SQL ``GREATEST``: row-wise maximum of the arguments."""
    return FunctionCall("MAX", max, tuple(_wrap(a) for a in args))


def minimum(*args: Any) -> FunctionCall:
    """SQL ``LEAST``: row-wise minimum of the arguments."""
    return FunctionCall("MIN", min, tuple(_wrap(a) for a in args))
