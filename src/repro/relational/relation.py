"""The :class:`Relation`: an immutable, in-memory table of row tuples.

This is the engine's sole data container. Rows are plain Python tuples in
schema order, which keeps hashing (for hash joins / grouping) and sorting
(for merge joins / order-by) cheap. Relations are *bags* — duplicate rows are
preserved, matching SQL multiset semantics; use :meth:`Relation.distinct`
for set semantics.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SchemaError
from repro.relational.schema import Column, Schema

__all__ = ["Relation"]


class Relation:
    """An immutable bag of tuples under a :class:`Schema`.

    Construction
    ------------
    >>> r = Relation.from_rows(["name", "age"], [("ann", 31), ("bob", 27)])
    >>> r.num_rows
    2
    >>> r.column_values("name")
    ('ann', 'bob')

    The constructor does not validate row shapes for speed; use
    :meth:`from_rows` with ``validate=True`` or call :meth:`validated`
    when ingesting untrusted data.
    """

    __slots__ = ("schema", "rows", "name")

    def __init__(
        self,
        schema: Schema,
        rows: Sequence[Tuple[Any, ...]],
        name: Optional[str] = None,
    ) -> None:
        self.schema = schema
        self.rows: Tuple[Tuple[Any, ...], ...] = tuple(rows)
        self.name = name

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        columns: Iterable,
        rows: Iterable[Sequence[Any]],
        name: Optional[str] = None,
        validate: bool = False,
    ) -> "Relation":
        """Build a relation from column specs and an iterable of rows."""
        schema = columns if isinstance(columns, Schema) else Schema(columns)
        tuples = [tuple(r) for r in rows]
        if validate:
            for row in tuples:
                schema.validate_row(row)
        return cls(schema, tuples, name=name)

    @classmethod
    def from_dicts(
        cls,
        columns: Iterable,
        records: Iterable[Mapping[str, Any]],
        name: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from mappings; missing keys become ``None``."""
        schema = columns if isinstance(columns, Schema) else Schema(columns)
        names = schema.names
        rows = [tuple(rec.get(n) for n in names) for rec in records]
        return cls(schema, rows, name=name)

    @classmethod
    def empty(cls, columns: Iterable, name: Optional[str] = None) -> "Relation":
        """An empty relation with the given schema."""
        schema = columns if isinstance(columns, Schema) else Schema(columns)
        return cls(schema, (), name=name)

    @classmethod
    def from_tsv(cls, path: "Union[str, os.PathLike]", name: Optional[str] = None) -> "Relation":
        """Load a TSV file: first line is the header; empty cells are NULL.

        Values parse as int, then float, then string — the affinity rule
        the CLI's ``sql`` command uses.
        """
        def parse(cell: str) -> Any:
            if cell == "":
                return None
            try:
                return int(cell)
            except ValueError:
                pass
            try:
                return float(cell)
            except ValueError:
                return cell

        with open(path, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f]
        if not lines:
            raise SchemaError(f"{path} is empty (expected a header line)")
        headers = lines[0].split("\t")
        rows = [
            tuple(parse(cell) for cell in line.split("\t"))
            for line in lines[1:]
            if line
        ]
        return cls.from_rows(headers, rows, name=name)

    def to_tsv(self, path: "Union[str, os.PathLike]") -> None:
        """Write this relation as TSV (NULLs become empty cells)."""
        with open(path, "w", encoding="utf-8") as f:
            f.write("\t".join(self.schema.names) + "\n")
            for row in self.rows:
                f.write("\t".join("" if v is None else str(v) for v in row) + "\n")

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema names and same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False
        return sorted(map(repr, self.rows)) == sorted(map(repr, other.rows))

    def __repr__(self) -> str:
        label = self.name or "Relation"
        return f"<{label} {list(self.schema.names)} rows={len(self.rows)}>"

    # -- accessors ----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return self.schema.names

    def column_values(self, name: str) -> Tuple[Any, ...]:
        """All values (with duplicates) of one column, in row order."""
        pos = self.schema.position(name)
        return tuple(row[pos] for row in self.rows)

    def row_dicts(self) -> List[dict]:
        """Rows as dictionaries (column name -> value)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    def head(self, n: int = 10) -> "Relation":
        """First *n* rows (for inspection)."""
        return Relation(self.schema, self.rows[:n], name=self.name)

    # -- simple algebra (fuller operator set lives in operators/joins) ------------

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename columns; data is shared, not copied."""
        return Relation(self.schema.rename(dict(mapping)), self.rows, name=self.name)

    def renamed(self, name: str) -> "Relation":
        """Return the same relation under a new *table* name."""
        return Relation(self.schema, self.rows, name=name)

    def prefixed(self, prefix: str) -> "Relation":
        """Qualify every column name with ``prefix.``."""
        return Relation(self.schema.prefixed(prefix), self.rows, name=self.name)

    def project(self, names: Sequence[str]) -> "Relation":
        """Bag projection onto *names* (keeps duplicates, like SQL SELECT)."""
        positions = self.schema.positions(names)
        rows = [tuple(row[p] for p in positions) for row in self.rows]
        return Relation(self.schema.project(names), rows, name=self.name)

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> "Relation":
        """Filter rows by a row-tuple predicate."""
        return Relation(self.schema, [r for r in self.rows if predicate(r)], name=self.name)

    def select_dict(self, predicate: Callable[[Mapping[str, Any]], bool]) -> "Relation":
        """Filter rows by a predicate over a column-name mapping (slower)."""
        names = self.schema.names
        kept = [r for r in self.rows if predicate(dict(zip(names, r)))]
        return Relation(self.schema, kept, name=self.name)

    def distinct(self) -> "Relation":
        """Duplicate elimination, preserving first-seen order."""
        seen = set()
        out = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.schema, out, name=self.name)

    def extend(
        self,
        column: str,
        fn: Callable[[Tuple[Any, ...]], Any],
        dtype: Optional[type] = None,
    ) -> "Relation":
        """Append a computed column ``column = fn(row)``."""
        schema = self.schema.extend([Column(column, dtype)])
        rows = [row + (fn(row),) for row in self.rows]
        return Relation(schema, rows, name=self.name)

    def order_by(self, names: Sequence[str], reverse: bool = False) -> "Relation":
        """Sort rows by the given columns."""
        positions = self.schema.positions(names)
        key = lambda row: tuple(row[p] for p in positions)  # noqa: E731
        return Relation(self.schema, sorted(self.rows, key=key, reverse=reverse), name=self.name)

    def union_all(self, other: "Relation") -> "Relation":
        """Bag union. Schemas must have identical column names."""
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"UNION ALL schema mismatch: {self.schema.names} vs {other.schema.names}"
            )
        return Relation(self.schema, self.rows + other.rows, name=self.name)

    def validated(self) -> "Relation":
        """Type-check every row against the schema; returns self on success."""
        for row in self.rows:
            self.schema.validate_row(row)
        return self
