"""Table and column statistics used by the cost-based optimizer.

The paper's closing argument is that the choice among basic, prefix-filtered
and inline SSJoin implementations "must be cost-based" and "sensitive to the
data characteristics". The characteristic that matters is the token (join
key) frequency distribution: the basic plan's equi-join output is
``sum_t freq_R(t) * freq_S(t)``, which explodes under skew. This module
computes exactly those statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.relational.relation import Relation

__all__ = ["ColumnStats", "TableStats", "estimate_equijoin_size", "estimate_self_equijoin_size"]


@dataclass(frozen=True)
class ColumnStats:
    """Distribution summary for one column.

    Attributes
    ----------
    num_rows:
        Total (non-null) values observed.
    num_distinct:
        Number of distinct values.
    frequencies:
        Exact value -> count histogram. Kept exact because token universes
        in similarity joins are modest (tens of thousands) and the skewed
        tail is precisely what the cost model must see.
    """

    num_rows: int
    num_distinct: int
    frequencies: Dict[Any, int]

    @classmethod
    def from_relation(cls, relation: Relation, column: str) -> "ColumnStats":
        pos = relation.schema.position(column)
        freq: Dict[Any, int] = {}
        n = 0
        for row in relation.rows:
            v = row[pos]
            if v is None:
                continue
            n += 1
            freq[v] = freq.get(v, 0) + 1
        return cls(num_rows=n, num_distinct=len(freq), frequencies=freq)

    @property
    def max_frequency(self) -> int:
        """Count of the most frequent value (0 for an empty column)."""
        return max(self.frequencies.values()) if self.frequencies else 0

    @property
    def mean_frequency(self) -> float:
        return self.num_rows / self.num_distinct if self.num_distinct else 0.0

    def skew(self) -> float:
        """Max/mean frequency ratio: 1.0 is uniform, large means heavy skew."""
        mean = self.mean_frequency
        return self.max_frequency / mean if mean else 0.0

    def top_k(self, k: int = 10) -> Tuple[Tuple[Any, int], ...]:
        """The *k* most frequent values with counts, most frequent first."""
        ranked = sorted(self.frequencies.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return tuple(ranked[:k])

    def entropy(self) -> float:
        """Shannon entropy (bits) of the value distribution."""
        if not self.num_rows:
            return 0.0
        h = 0.0
        n = self.num_rows
        for count in self.frequencies.values():
            p = count / n
            h -= p * math.log2(p)
        return h


@dataclass  # repro: ignore[RL204] -- mutable by design: column stats are computed lazily
class TableStats:
    """Per-table statistics container with lazily computed column stats."""

    relation: Relation
    _columns: Dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    def column(self, name: str) -> ColumnStats:
        if name not in self._columns:
            self._columns[name] = ColumnStats.from_relation(self.relation, name)
        return self._columns[name]


def estimate_equijoin_size(left: ColumnStats, right: ColumnStats) -> int:
    """Exact output size of an equi-join between two profiled columns.

    With exact histograms this is not an estimate at all:
    ``sum over shared values v of freq_L(v) * freq_R(v)``. Iterates the
    smaller histogram for speed.
    """
    small, large = (
        (left.frequencies, right.frequencies)
        if left.num_distinct <= right.num_distinct
        else (right.frequencies, left.frequencies)
    )
    total = 0
    for value, count in small.items():
        other = large.get(value)
        if other:
            total += count * other
    return total


def estimate_self_equijoin_size(stats: ColumnStats) -> int:
    """Output size of a self equi-join: ``sum freq(v)^2``."""
    return sum(c * c for c in stats.frequencies.values())
