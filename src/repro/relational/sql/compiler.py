"""Compile parsed SQL into engine plans and execute them.

The compiler lowers a :class:`~repro.relational.sql.ast.SelectStatement`
onto the engine's plan nodes: FROM/JOIN become TableScan (+ Rename when
the query joins, so columns carry their alias qualifier as in SQL) under
HashJoin / LeftOuterJoin, WHERE becomes a Select over a compiled
expression, GROUP BY/HAVING become a GroupBy node, and the select list
becomes a projection. Every statement — SSJOIN or plain — compiles to a
plan tree and executes through the plan protocol, so SQL results flow
end-to-end as columnar morsels whenever the batch protocol is on. Name
resolution is schema-aware: a bare column name matches either an exact
column or a unique ``alias.name`` suffix, as in SQL.

Supported aggregates: COUNT(*) / COUNT(expr) / SUM / MIN / MAX / AVG.
Scalar functions: ABS, LENGTH, LOWER, UPPER. Predicates additionally
support ``[NOT] IN (…)``, ``[NOT] BETWEEN a AND b`` and ``IS [NOT] NULL``.

NULL handling is *flattened* three-valued logic: comparisons against NULL
are false, arithmetic propagates NULL, and NOT of an unknown behaves as
NOT false — so ``w NOT BETWEEN 2 AND 9`` admits NULL ``w`` (full SQL would
exclude it). A deliberate simplification, exercised by the tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.errors import PlanError, UnknownColumnError
from repro.relational.aggregates import (
    Aggregate,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    BatchFn,
    BinaryOp,
    Constant,
    Expr,
    RowFn,
    UnaryOp,
)
from repro.relational.joins import joined_schema
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema
from repro.relational.context import ExecutionContext
from repro.relational.plan import (
    SSJOIN_RESULT_SCHEMA,
    Distinct,
    GroupBy,
    HashJoin,
    LeftOuterJoin,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Rename,
    Select,
    SSJoinNode,
    TableScan,
)
from repro.relational.sql.ast import (
    Binary,
    Call,
    ColumnName,
    Literal,
    SelectItem,
    SelectStatement,
    SqlExpr,
    SSJoinClause,
    Star,
    Unary,
)
from repro.relational.sql.parser import parse

__all__ = [
    "execute_sql",
    "compile_statement",
    "compile_plan",
    "compile_plain_plan",
    "compile_ssjoin_plan",
]

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}
_SCALARS: Dict[str, Callable] = {
    "ABS": abs,
    "LENGTH": len,
    "LOWER": lambda s: s.lower(),
    "UPPER": lambda s: s.upper(),
}


def _resolve(schema: Schema, column: ColumnName) -> str:
    """SQL-style name resolution against a concrete schema."""
    if column.qualifier:
        qualified = f"{column.qualifier}.{column.name}"
        if qualified in schema:
            return qualified
        # Single-table queries keep unprefixed columns; let `t.x` find `x`.
        if column.name in schema:
            return column.name
        raise UnknownColumnError(qualified, schema.names)
    if column.name in schema:
        return column.name
    suffix = "." + column.name
    matches = [n for n in schema.names if n.endswith(suffix)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise UnknownColumnError(column.name, schema.names)
    raise PlanError(
        f"ambiguous column {column.name!r}: matches {', '.join(sorted(matches))}"
    )


class _ResolvingRef(Expr):
    """An engine expression that resolves a SQL column name at bind time."""

    __slots__ = ("column",)

    def __init__(self, column: ColumnName) -> None:
        self.column = column

    def bind(self, schema: Schema) -> RowFn:
        pos = schema.position(_resolve(schema, self.column))
        return lambda row: row[pos]

    def bind_batch(self, schema: Schema) -> BatchFn:
        # Resolution happens once at bind time, so the batch kernel is the
        # same zero-copy column fetch ColumnRef compiles to.
        pos = schema.position(_resolve(schema, self.column))
        return lambda batch: batch.columns[pos]

    def columns(self) -> Tuple[str, ...]:
        return (self.column.display(),)

    def __repr__(self) -> str:
        return self.column.display()


def _null_compare(fn: Callable) -> Callable:
    """SQL semantics: any comparison against NULL is not-true."""

    def compare(a: Any, b: Any) -> bool:
        if a is None or b is None:
            return False
        return fn(a, b)

    return compare


def _null_arith(fn: Callable) -> Callable:
    """SQL semantics: arithmetic with NULL yields NULL."""

    def arith(a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        return fn(a, b)

    return arith


_COMPARE: Dict[str, Callable] = {
    "=": _null_compare(lambda a, b: a == b),
    "<>": _null_compare(lambda a, b: a != b),
    "!=": _null_compare(lambda a, b: a != b),
    "<": _null_compare(lambda a, b: a < b),
    "<=": _null_compare(lambda a, b: a <= b),
    ">": _null_compare(lambda a, b: a > b),
    ">=": _null_compare(lambda a, b: a >= b),
    "+": _null_arith(lambda a, b: a + b),
    "-": _null_arith(lambda a, b: a - b),
    "*": _null_arith(lambda a, b: a * b),
    "/": _null_arith(lambda a, b: a / b),
    # NULL collapses to false for filtering (flattened three-valued logic).
    "AND": lambda a, b: bool(a and b),
    "OR": lambda a, b: bool(a or b),
}


def _compile_expr(node: SqlExpr) -> Expr:
    """Lower a (non-aggregate) SQL expression to an engine expression."""
    if isinstance(node, Literal):
        return Constant(node.value)
    if isinstance(node, ColumnName):
        return _ResolvingRef(node)
    if isinstance(node, Unary):
        child = _compile_expr(node.operand)
        ops = {
            "NOT": (lambda v: not v, "NOT"),
            "NEG": (lambda v: -v, "-"),
            "ISNULL": (lambda v: v is None, "IS NULL"),
            "ISNOTNULL": (lambda v: v is not None, "IS NOT NULL"),
        }
        fn, symbol = ops[node.op]
        return UnaryOp(child, fn, symbol)
    if isinstance(node, Binary):
        return BinaryOp(
            _compile_expr(node.left),
            _compile_expr(node.right),
            _COMPARE[node.op],
            node.op,
        )
    if isinstance(node, Call):
        if node.name == "__IN__":
            target = _compile_expr(node.args[0])
            members = [_compile_expr(a) for a in node.args[1:]]

            class _InExpr(Expr):
                def bind(self, schema: Schema) -> RowFn:
                    tf = target.bind(schema)
                    mfs = [m.bind(schema) for m in members]
                    return lambda row: (
                        tf(row) is not None
                        and tf(row) in {f(row) for f in mfs}
                    )

                def columns(self) -> Tuple[str, ...]:
                    out = target.columns()
                    for m in members:
                        out += m.columns()
                    return out

                def __repr__(self) -> str:
                    return f"({target!r} IN ...)"

            return _InExpr()
        if node.name in _AGGREGATES:
            raise PlanError(
                f"aggregate {node.name} is only allowed in the select list, "
                "HAVING, or with GROUP BY"
            )
        if node.name in _SCALARS:
            if len(node.args) != 1:
                raise PlanError(f"{node.name} takes exactly one argument")
            return UnaryOp(_compile_expr(node.args[0]), _SCALARS[node.name], node.name)
        raise PlanError(f"unknown function {node.name}")
    raise PlanError(f"cannot compile expression {node!r}")


def _make_aggregate(name: str, call: Call) -> Aggregate:
    if call.name == "COUNT":
        if call.star or not call.args:
            return agg_count(name)
        return agg_count(name, _compile_expr(call.args[0]))
    if len(call.args) != 1:
        raise PlanError(f"{call.name} takes exactly one argument")
    arg = _compile_expr(call.args[0])
    factories = {"SUM": agg_sum, "MIN": agg_min, "MAX": agg_max, "AVG": agg_avg}
    return factories[call.name](name, arg)


def _is_aggregate_call(node: SqlExpr) -> bool:
    return isinstance(node, Call) and node.name in _AGGREGATES


def _contains_aggregate(node: SqlExpr) -> bool:
    if _is_aggregate_call(node):
        return True
    if isinstance(node, Binary):
        return _contains_aggregate(node.left) or _contains_aggregate(node.right)
    if isinstance(node, Unary):
        return _contains_aggregate(node.operand)
    return False


def _extract_having(
    node: SqlExpr, hidden: List[Tuple[str, Call]]
) -> SqlExpr:
    """Replace aggregate calls inside HAVING by hidden-column references."""
    if isinstance(node, Call) and node.name in _AGGREGATES:
        name = f"__agg{len(hidden)}"
        hidden.append((name, node))
        return ColumnName(name)
    if isinstance(node, Binary):
        return Binary(
            node.op,
            _extract_having(node.left, hidden),
            _extract_having(node.right, hidden),
        )
    if isinstance(node, Unary):
        return Unary(node.op, _extract_having(node.operand, hidden))
    return node


def _item_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ColumnName):
        return item.expr.name
    if isinstance(item.expr, Call):
        return item.expr.name.lower()
    return f"expr_{index}"


#: The two norm columns an SSJOIN bound expression may reference, tagged
#: by side, plus MAXNORM — max(norm_r, norm_s) — for the edit-join form.
_SIDE_LEFT = "left"
_SIDE_RIGHT = "right"
_SIDE_MAX = "max"


class _LinearBound:
    """A bound expression normalized to linear form.

    ``coefficients[side] * norm(side) + constant`` summed over the sides
    referenced; the paper's Example 2 shapes are exactly the linear forms
    over the two norms, which is all the grammar admits.
    """

    def __init__(self) -> None:
        self.constant = 0.0
        self.coefficients: Dict[str, float] = {}

    def add(self, other: "_LinearBound", sign: float = 1.0) -> None:
        self.constant += sign * other.constant
        for side, coef in other.coefficients.items():
            self.coefficients[side] = self.coefficients.get(side, 0.0) + sign * coef


def _norm_side(column: ColumnName, left_label: str, right_label: str) -> str:
    """Which side a ``norm`` reference inside an SSJOIN bound names."""
    if column.name != "norm":
        raise PlanError(
            f"SSJOIN bounds may reference only 'norm' columns, got "
            f"{column.display()!r}"
        )
    if column.qualifier is None:
        raise PlanError(
            "ambiguous 'norm' in SSJOIN bound; qualify it with a table "
            f"alias ({left_label!r} or {right_label!r})"
        )
    if column.qualifier == left_label:
        return _SIDE_LEFT
    if column.qualifier == right_label:
        return _SIDE_RIGHT
    raise PlanError(
        f"unknown qualifier {column.qualifier!r} in SSJOIN bound; "
        f"expected {left_label!r} or {right_label!r}"
    )


def _linearize_bound(
    node: SqlExpr, left_label: str, right_label: str
) -> _LinearBound:
    """Fold a bound expression into `Σ coef·norm + const` or fail."""
    out = _LinearBound()
    if isinstance(node, Literal):
        if not isinstance(node.value, (int, float)) or isinstance(node.value, bool):
            raise PlanError(f"SSJOIN bound constants must be numeric, got {node.value!r}")
        out.constant = float(node.value)
        return out
    if isinstance(node, ColumnName):
        out.coefficients[_norm_side(node, left_label, right_label)] = 1.0
        return out
    if isinstance(node, Call) and node.name == "MAXNORM":
        if node.args:
            raise PlanError("MAXNORM() takes no arguments")
        out.coefficients[_SIDE_MAX] = 1.0
        return out
    if isinstance(node, Unary) and node.op == "NEG":
        out.add(_linearize_bound(node.operand, left_label, right_label), sign=-1.0)
        return out
    if isinstance(node, Binary) and node.op in ("+", "-"):
        out.add(_linearize_bound(node.left, left_label, right_label))
        out.add(
            _linearize_bound(node.right, left_label, right_label),
            sign=-1.0 if node.op == "-" else 1.0,
        )
        return out
    if isinstance(node, Binary) and node.op == "*":
        left = _linearize_bound(node.left, left_label, right_label)
        right = _linearize_bound(node.right, left_label, right_label)
        if left.coefficients and right.coefficients:
            raise PlanError(
                "SSJOIN bounds must be linear in the norms; cannot multiply "
                "two norm-dependent terms"
            )
        scale, linear = (
            (left.constant, right) if not left.coefficients else (right.constant, left)
        )
        out.constant = scale * linear.constant
        out.coefficients = {s: scale * c for s, c in linear.coefficients.items()}
        return out
    raise PlanError(
        f"unsupported SSJOIN bound expression {node!r}; bounds are linear "
        "forms over constants, alias.norm, and MAXNORM()"
    )


def _lower_bound(node: SqlExpr, left_label: str, right_label: str) -> Any:
    """Lower one OVERLAP(...) >= bound conjunct to a core ``Bound``.

    Typed ``Any`` because the Bound classes live in :mod:`repro.core`,
    which this module may only import lazily (layering).
    """
    # Imported lazily: repro.core layers above repro.relational.
    from repro.core.predicate import (
        AbsoluteBound,
        LeftNormBound,
        MaxNormBound,
        RightNormBound,
        SumNormBound,
    )

    linear = _linearize_bound(node, left_label, right_label)
    coefs = {s: c for s, c in linear.coefficients.items() if abs(c) > 1e-12}
    sides = set(coefs)
    if _SIDE_MAX in sides and sides != {_SIDE_MAX}:
        raise PlanError(
            "an SSJOIN bound may use MAXNORM() or per-side norms, not both"
        )
    if not sides:
        return AbsoluteBound(linear.constant)
    if sides == {_SIDE_MAX}:
        return MaxNormBound(coefs[_SIDE_MAX], linear.constant)
    if sides == {_SIDE_LEFT}:
        return LeftNormBound(coefs[_SIDE_LEFT], linear.constant)
    if sides == {_SIDE_RIGHT}:
        return RightNormBound(coefs[_SIDE_RIGHT], linear.constant)
    return SumNormBound(coefs[_SIDE_LEFT], coefs[_SIDE_RIGHT], linear.constant)


def _ssjoin_predicate(clause: SSJoinClause, left_label: str, right_label: str) -> Any:
    from repro.core.predicate import OverlapPredicate

    if left_label == right_label:
        raise PlanError(
            f"SSJOIN sides share the label {left_label!r}; alias one of "
            "the tables so norm references are unambiguous"
        )
    return OverlapPredicate(
        [_lower_bound(b, left_label, right_label) for b in clause.bounds]
    )


def compile_ssjoin_plan(statement: SelectStatement, catalog: Catalog) -> PlanNode:
    """Lower an SSJOIN statement to a logical plan tree.

    The tree is the paper's Figure 7–9 shape: an :class:`SSJoinNode` over
    two table scans (one scan, shared, for a self-join), a ``Select`` for
    the WHERE post-filter, ``GroupBy``/``OrderBy``/``Project``/
    ``Distinct``/``Limit`` above it. The catalog is only consulted at
    execution time; this function is purely structural, so the plan
    verifier can inspect the tree without side effects.
    """
    if len(statement.ssjoins) != 1:
        raise PlanError("exactly one SSJOIN clause is supported per statement")
    if statement.joins:
        raise PlanError("SSJOIN cannot be combined with ordinary JOIN clauses")
    clause = statement.ssjoins[0]
    if clause.element_column != "b":
        raise PlanError(
            f"SSJOIN joins normalized set relations on their 'b' element "
            f"column; got OVERLAP({clause.element_column})"
        )
    predicate = _ssjoin_predicate(
        clause, statement.table.label, clause.table.label
    )

    left: PlanNode = TableScan(statement.table.table)
    # A self-join shares one scan node so the physical layer sees the
    # identical prepared relation on both sides.
    right: PlanNode = (
        left
        if clause.table.table == statement.table.table
        else TableScan(clause.table.table)
    )
    node: PlanNode = SSJoinNode(left, right, predicate)

    if statement.where is not None:
        node = Select(node, _compile_expr(statement.where))
    has_aggregates = any(
        not isinstance(i.expr, Star) and _contains_aggregate(i.expr)
        for i in statement.items
    )
    if statement.group_by or has_aggregates:
        # Aggregation over the pair output — e.g. per-record match counts
        # or a global COUNT(*) of the join size. The SSJoin result schema
        # is statically known, so this stays purely structural.
        node = _aggregate_tail(statement, node, SSJOIN_RESULT_SCHEMA)
        if statement.distinct:
            node = Distinct(node)
        if statement.order_by:
            node = OrderBy(node, _output_order_keys(statement))
    else:
        if statement.order_by:
            keys = []
            for item in statement.order_by:
                name = item.column.name
                keys.append((name, "desc") if item.descending else name)
            node = OrderBy(node, keys)
        node = _plain_projection_node(statement, node)
        if statement.distinct:
            node = Distinct(node)
    if statement.limit is not None:
        node = Limit(node, statement.limit)
    return node


def compile_plain_plan(statement: SelectStatement, catalog: Catalog) -> PlanNode:
    """Lower a plain (non-SSJOIN) SELECT to a logical plan tree.

    Join and group keys resolve against catalog schemas, so the catalog
    must already hold every referenced table. Joined tables are wrapped
    in :class:`Rename` nodes (alias qualification), so the whole FROM/
    JOIN/WHERE/GROUP BY/ORDER BY chain executes through the plan
    protocol — columnar end-to-end when the batch protocol is on.
    """
    # -- FROM / JOIN --------------------------------------------------
    prefix_tables = bool(statement.joins)
    schema = catalog.get(statement.table.table).schema
    node: PlanNode = TableScan(statement.table.table)
    if prefix_tables:
        node = Rename(node, statement.table.label)
        schema = schema.prefixed(statement.table.label)
    for join in statement.joins:
        right_schema = catalog.get(join.table.table).schema.prefixed(
            join.table.label
        )
        right_node: PlanNode = Rename(
            TableScan(join.table.table), join.table.label
        )
        right_names = set(right_schema.names)
        keys = []
        for c1, c2 in join.on:
            n1 = f"{c1.qualifier}.{c1.name}" if c1.qualifier else c1.name
            n2 = f"{c2.qualifier}.{c2.name}" if c2.qualifier else c2.name
            first_is_right = n1 in right_names or (
                c1.qualifier == join.table.label
            )
            left_name, right_name = (n2, n1) if first_is_right else (n1, n2)
            keys.append(
                (
                    _resolve(schema, _as_column(left_name)),
                    _resolve(right_schema, _as_column(right_name)),
                )
            )
        join_cls = LeftOuterJoin if join.outer else HashJoin
        node = join_cls(node, right_node, keys=keys)
        schema = joined_schema(schema, right_schema, None)

    # -- WHERE --------------------------------------------------------
    if statement.where is not None:
        node = Select(node, _compile_expr(statement.where))

    # -- GROUP BY / aggregate select ----------------------------------
    has_aggregates = any(_contains_aggregate(i.expr) for i in statement.items)
    if statement.group_by or has_aggregates:
        node = _aggregate_tail(statement, node, schema)
        if statement.distinct:
            node = Distinct(node)
        if statement.order_by:
            node = OrderBy(node, _output_order_keys(statement))
    else:
        # Plain query: ORDER BY may reference columns the projection
        # drops (SQL sorts before projecting), so sort first using
        # select-alias expressions where they match, schema columns
        # otherwise, then project.
        if statement.order_by:
            node = OrderBy(node, _pre_projection_order_keys(statement))
        node = _plain_projection_node(statement, node)
        if statement.distinct:
            node = Distinct(node)

    if statement.limit is not None:
        node = Limit(node, statement.limit)
    return node


def compile_plan(statement: SelectStatement, catalog: Catalog) -> PlanNode:
    """Lower any supported SELECT to a logical plan tree."""
    if statement.ssjoins:
        return compile_ssjoin_plan(statement, catalog)
    return compile_plain_plan(statement, catalog)


def compile_statement(
    statement: SelectStatement,
    catalog: Catalog,
    batch_size: "int | None" = None,
) -> Callable[[], Relation]:
    """Compile *statement* into an executable closure ``() -> Relation``.

    *batch_size* configures the morsel size for the plan's batch
    protocol (``None`` = cost model default, ``0`` = legacy
    row-at-a-time); it applies to SSJOIN and plain statements alike.
    """
    if statement.ssjoins:
        plan = compile_ssjoin_plan(statement, catalog)

        def run_plan() -> Relation:
            return plan.execute(
                ExecutionContext(catalog=catalog, batch_size=batch_size)
            )

        return run_plan

    def run() -> Relation:
        # The plan is built here, not at compile time, so table lookup
        # and name resolution see the catalog as of execution — matching
        # the SSJOIN path, where the catalog is consulted only when the
        # plan runs.
        plan = compile_plain_plan(statement, catalog)
        return plan.execute(
            ExecutionContext(catalog=catalog, batch_size=batch_size)
        )

    return run


def _as_column(name: str) -> ColumnName:
    if "." in name:
        qualifier, _, bare = name.partition(".")
        return ColumnName(bare, qualifier=qualifier)
    return ColumnName(name)


def _output_order_keys(statement: SelectStatement) -> List[Any]:
    """ORDER BY keys for an aggregate query, resolved against the
    projected (select-list) schema — SQL sorts grouped output by its
    output columns."""
    out_schema = Schema(
        [Column(_item_name(item, i)) for i, item in enumerate(statement.items)]
    )
    keys: List[Any] = []
    for item in statement.order_by:
        name = _resolve(out_schema, item.column)
        keys.append((name, "desc") if item.descending else name)
    return keys


def _pre_projection_order_keys(statement: SelectStatement) -> List[Any]:
    """ORDER BY keys for a plain query, honoring select-list aliases.

    Each key is an engine expression bound against the pre-projection
    schema: an alias re-evaluates its select expression, anything else
    resolves as a column reference at bind time.
    """
    alias_exprs: Dict[str, SqlExpr] = {}
    for i, item in enumerate(statement.items):
        if not isinstance(item.expr, Star):
            alias_exprs[_item_name(item, i)] = item.expr

    keys: List[Any] = []
    for item in statement.order_by:
        display = item.column.display()
        if item.column.qualifier is None and display in alias_exprs:
            expr: Expr = _compile_expr(alias_exprs[display])
        else:
            expr = _ResolvingRef(item.column)
        keys.append((expr, "desc") if item.descending else expr)
    return keys


def _plain_projection_node(statement: SelectStatement, node: PlanNode) -> PlanNode:
    if len(statement.items) == 1 and isinstance(statement.items[0].expr, Star):
        return node
    columns = []
    for i, item in enumerate(statement.items):
        if isinstance(item.expr, Star):
            raise PlanError("'*' cannot be mixed with other select items")
        columns.append((_item_name(item, i), _compile_expr(item.expr)))
    return Project(node, columns)


def _aggregate_tail(
    statement: SelectStatement, node: PlanNode, schema: Schema
) -> PlanNode:
    """GroupBy + projection for an aggregate query over *schema* input."""
    # Resolve group keys against the input schema.
    key_names = [_resolve(schema, c) for c in statement.group_by]

    aggregates: List[Aggregate] = []
    item_resolved: Dict[int, str] = {}  # select-item index -> resolved key column
    for i, item in enumerate(statement.items):
        name = _item_name(item, i)
        if isinstance(item.expr, Call) and item.expr.name in _AGGREGATES:
            aggregates.append(_make_aggregate(name, item.expr))
        elif isinstance(item.expr, ColumnName):
            resolved = _resolve(schema, item.expr)
            if resolved not in key_names:
                raise PlanError(
                    f"column {item.expr.display()!r} must appear in GROUP BY "
                    "or inside an aggregate"
                )
            item_resolved[i] = resolved
        elif isinstance(item.expr, Star):
            raise PlanError("'*' is not allowed in an aggregate select list")
        else:
            raise PlanError(
                "select items in an aggregate query must be group columns "
                "or aggregate calls"
            )

    # HAVING: aggregate calls become hidden aggregate columns.
    having_expr = None
    hidden: List[Tuple[str, Call]] = []
    if statement.having is not None:
        rewritten = _extract_having(statement.having, hidden)
        for name, call in hidden:
            aggregates.append(_make_aggregate(name, call))
        having_expr = _compile_expr(rewritten)

    grouped = GroupBy(node, key_names, aggregates, having=having_expr)

    # Project to the SELECT order (drops hidden HAVING columns, renames
    # keys to their bare select-list names).
    columns = []
    for i, item in enumerate(statement.items):
        name = _item_name(item, i)
        if _is_aggregate_call(item.expr):
            columns.append((name, _ResolvingRef(ColumnName(name))))
        else:
            columns.append((name, _ResolvingRef(_as_column(item_resolved[i]))))
    return Project(grouped, columns)


def execute_sql(
    catalog: Catalog,
    sql: str,
    verify: bool = False,
    batch_size: "int | None" = None,
) -> Relation:
    """Parse, compile and execute one SELECT against *catalog*.

    With ``verify=True`` the statement is first checked statically
    (:func:`repro.analysis.check_sql`) and rejected with structured
    diagnostics — :class:`repro.errors.AnalysisError` — before anything
    executes.  *batch_size* is forwarded to the plan path's
    :class:`~repro.relational.context.ExecutionContext` (``None`` = cost
    model default, ``0`` = row-at-a-time); results are identical for
    every setting.

    >>> from repro.relational import Catalog, Relation
    >>> c = Catalog()
    >>> _ = c.register("t", Relation.from_rows(["a", "w"],
    ...     [("x", 2), ("x", 3), ("y", 10)]))
    >>> execute_sql(c, "SELECT a, SUM(w) AS total FROM t "
    ...                "GROUP BY a HAVING SUM(w) >= 5 ORDER BY a").rows
    (('x', 5), ('y', 10))
    """
    if verify:
        # Imported here: repro.analysis depends on repro.relational.
        from repro.analysis.sql_check import check_sql

        check_sql(catalog, sql)
    return compile_statement(parse(sql), catalog, batch_size=batch_size)()
