"""SQL unparser: render an AST back to SQL text.

Used for debugging (show the normalized form of a query), for logging, and
— most importantly — for the parser's round-trip property tests:
``parse(to_sql(ast)) == ast`` over randomly generated ASTs pins the parser
and the grammar to each other.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import PlanError
from repro.relational.sql.ast import (
    Binary,
    Call,
    ColumnName,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    SSJoinClause,
    Star,
    SqlExpr,
    TableRef,
    Unary,
)

__all__ = ["to_sql", "expr_to_sql"]

#: Binding strengths for parenthesization (higher binds tighter).
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 3, "<>": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5,
}


def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def expr_to_sql(node: SqlExpr, parent_precedence: int = 0) -> str:
    """Render one expression, parenthesizing only where needed."""
    if isinstance(node, Literal):
        return _literal(node.value)
    if isinstance(node, ColumnName):
        return node.display()
    if isinstance(node, Star):
        return "*"
    if isinstance(node, Unary):
        if node.op == "NOT":
            # NOT binds tighter than AND/OR, so those operands need parens.
            inner = expr_to_sql(node.operand, 3)
            text = f"NOT {inner}"
            return f"({text})" if parent_precedence > 2 else text
        if node.op == "NEG":
            return f"-{expr_to_sql(node.operand, 6)}"
        if node.op == "ISNULL":
            text = f"{expr_to_sql(node.operand, 4)} IS NULL"
            return f"({text})" if parent_precedence > 2 else text
        if node.op == "ISNOTNULL":
            text = f"{expr_to_sql(node.operand, 4)} IS NOT NULL"
            return f"({text})" if parent_precedence > 2 else text
        raise PlanError(f"cannot unparse unary op {node.op!r}")
    if isinstance(node, Binary):
        precedence = _PRECEDENCE[node.op]
        # Comparisons are non-associative in the grammar (at most one per
        # parse_comparison), so a nested comparison needs parens on either
        # side; arithmetic/boolean operators are left-associative, needing
        # parens only on the right at equal precedence.
        non_associative = precedence == 3
        left = expr_to_sql(node.left, precedence + (1 if non_associative else 0))
        right = expr_to_sql(node.right, precedence + 1)
        text = f"{left} {node.op} {right}"
        return f"({text})" if precedence < parent_precedence else text
    if isinstance(node, Call):
        if node.name == "__IN__":
            target = expr_to_sql(node.args[0], 3)
            members = ", ".join(expr_to_sql(a) for a in node.args[1:])
            text = f"{target} IN ({members})"
            return f"({text})" if parent_precedence > 2 else text
        if node.star:
            return f"{node.name}(*)"
        args = ", ".join(expr_to_sql(a) for a in node.args)
        return f"{node.name}({args})"
    raise PlanError(f"cannot unparse {node!r}")


def _table_ref(ref: TableRef) -> str:
    return f"{ref.table} {ref.alias}" if ref.alias else ref.table


def _join(clause: JoinClause) -> str:
    kind = "LEFT JOIN" if clause.outer else "JOIN"
    conditions = " AND ".join(
        f"{l.display()} = {r.display()}" for l, r in clause.on
    )
    return f"{kind} {_table_ref(clause.table)} ON {conditions}"


def _ssjoin(clause: SSJoinClause) -> str:
    conjuncts = " AND ".join(
        f"OVERLAP({clause.element_column}) >= {expr_to_sql(bound)}"
        for bound in clause.bounds
    )
    return f"SSJOIN {_table_ref(clause.table)} ON {conjuncts}"


def _item(item: SelectItem) -> str:
    text = expr_to_sql(item.expr)
    return f"{text} AS {item.alias}" if item.alias else text


def _order(item: OrderItem) -> str:
    return f"{item.column.display()} DESC" if item.descending else item.column.display()


def to_sql(statement: SelectStatement) -> str:
    """Render a full SELECT statement.

    >>> from repro.relational.sql.parser import parse
    >>> to_sql(parse("select a , SUM(w) as total from t group by a"))
    'SELECT a, SUM(w) AS total FROM t GROUP BY a'
    """
    parts: List[str] = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item(i) for i in statement.items))
    parts.append(f"FROM {_table_ref(statement.table)}")
    for join in statement.joins:
        parts.append(_join(join))
    for clause in statement.ssjoins:
        parts.append(_ssjoin(clause))
    if statement.where is not None:
        parts.append(f"WHERE {expr_to_sql(statement.where)}")
    if statement.group_by:
        parts.append("GROUP BY " + ", ".join(c.display() for c in statement.group_by))
        if statement.having is not None:
            parts.append(f"HAVING {expr_to_sql(statement.having)}")
    if statement.order_by:
        parts.append("ORDER BY " + ", ".join(_order(o) for o in statement.order_by))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
    return " ".join(parts)
