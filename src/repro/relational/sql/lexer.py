"""SQL tokenizer for the mini-SQL front end.

Produces a flat token stream: keywords (case-insensitive), identifiers,
string/number literals, operators and punctuation. Keeps positions so the
parser can point at the offending spot in error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import PlanError

__all__ = ["Token", "tokenize", "SqlSyntaxError", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "JOIN", "INNER", "LEFT", "OUTER", "ON", "AS", "AND", "OR", "NOT", "ASC", "DESC",
    "DISTINCT", "NULL", "TRUE", "FALSE", "IS", "IN", "BETWEEN", "UNION", "ALL",
    "SSJOIN",
}
# OVERLAP is deliberately NOT a keyword: the SSJoin result schema has a
# column named `overlap`, which must stay usable as an ordinary
# identifier in WHERE/ORDER BY. The parser matches OVERLAP as a
# contextual name inside SSJOIN ... ON.

#: Multi-character operators first so maximal munch works.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCTUATION = ("(", ")", ",", ".")


class SqlSyntaxError(PlanError):
    """Raised on malformed SQL, with the position that failed."""

    def __init__(self, message: str, position: int, text: str = "") -> None:
        self.position = position
        context = ""
        if text:
            snippet = text[max(0, position - 20) : position + 20]
            context = f" near ...{snippet!r}..."
        super().__init__(f"{message} (at offset {position}){context}")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    kind is one of ``keyword``, ``name``, ``number``, ``string``, ``op``,
    ``punct``, ``end``. Keyword values are upper-cased; names keep their
    original spelling.
    """

    kind: str
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.value in words

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; appends a single ``end`` token.

    >>> [t.value for t in tokenize("SELECT a FROM t")][:3]
    ['SELECT', 'a', 'FROM']
    """
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i, text)
                if text[j] == "'":
                    if text[j : j + 2] == "''":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Only a dot followed by a digit is part of the number.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("name", word, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token("end", "", n))
    return tokens
