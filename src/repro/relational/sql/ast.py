"""AST node types for the mini-SQL front end.

Pure data: the parser builds these, the compiler consumes them. Expression
nodes are deliberately separate from the engine's
:mod:`repro.relational.expressions` trees — the AST keeps SQL-level
constructs (qualified names, aggregate calls, IS NULL) that compile away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "SqlExpr",
    "ColumnName",
    "Literal",
    "Unary",
    "Binary",
    "Call",
    "Star",
    "SelectItem",
    "TableRef",
    "JoinClause",
    "SSJoinClause",
    "OrderItem",
    "SelectStatement",
]


class SqlExpr:
    """Base class of SQL expression AST nodes."""


@dataclass(frozen=True)
class ColumnName(SqlExpr):
    """A possibly-qualified column reference (``name`` or ``alias.name``)."""

    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal(SqlExpr):
    """A constant: number, string, boolean, or NULL."""

    value: object


@dataclass(frozen=True)
class Unary(SqlExpr):
    """``NOT expr``, ``-expr``, ``expr IS [NOT] NULL``."""

    op: str  # "NOT", "NEG", "ISNULL", "ISNOTNULL"
    operand: SqlExpr


@dataclass(frozen=True)
class Binary(SqlExpr):
    """Binary operation: arithmetic, comparison, AND/OR."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class Call(SqlExpr):
    """Function call — aggregate (SUM/COUNT/MIN/MAX/AVG) or scalar."""

    name: str  # upper-cased
    args: Tuple[SqlExpr, ...]
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class Star(SqlExpr):
    """``*`` in a select list."""


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: expression plus optional alias."""

    expr: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """``table [AS] alias`` in FROM/JOIN."""

    table: str
    alias: Optional[str] = None

    @property
    def label(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class JoinClause:
    """``[LEFT [OUTER]] JOIN table [alias] ON <equi-conjunction>``."""

    table: TableRef
    #: equality pairs extracted from the ON conjunction
    on: Tuple[Tuple[ColumnName, ColumnName], ...]
    #: True for LEFT OUTER JOIN
    outer: bool = False


@dataclass(frozen=True)
class SSJoinClause:
    """``SSJOIN table [alias] ON OVERLAP(b) >= e [AND OVERLAP(b) >= e]*``.

    The similarity-join clause of the extended grammar: joins the FROM
    table with *table* under a set-overlap predicate over the shared
    element column. Each bound expression is a linear form over constants
    and the two sides' ``norm`` columns (the shapes of the paper's
    Example 2), lowered by the compiler to one
    :class:`repro.core.predicate.Bound` conjunct.
    """

    table: TableRef
    #: the element column named inside OVERLAP(...)
    element_column: str
    #: one bound expression per OVERLAP(...) >= conjunct
    bounds: Tuple[SqlExpr, ...]


@dataclass(frozen=True)
class OrderItem:
    column: ColumnName
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT."""

    items: List[SelectItem]
    table: TableRef
    joins: List[JoinClause] = field(default_factory=list)
    ssjoins: List[SSJoinClause] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    group_by: List[ColumnName] = field(default_factory=list)
    having: Optional[SqlExpr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
