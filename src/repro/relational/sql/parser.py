"""Recursive-descent parser for the mini-SQL dialect.

Grammar (the subset the SSJoin plans and ordinary analytics need)::

    select    := SELECT [DISTINCT] items FROM tableref (join | ssjoin)*
                 [WHERE expr] [GROUP BY columns [HAVING expr]]
                 [ORDER BY order_items] [LIMIT n]
    items     := '*' | item (',' item)*
    item      := expr [[AS] name]
    tableref  := name [[AS] name]
    join      := ([INNER] | LEFT [OUTER]) JOIN tableref ON on_cond
    on_cond   := equality (AND equality)*     -- equi-joins only
    ssjoin    := SSJOIN tableref ON overlap (AND overlap)*
    overlap   := OVERLAP '(' name ')' '>=' add   -- OVERLAP is contextual
    expr      := or ; or := and (OR and)* ; and := not (AND not)*
    not       := [NOT] cmp
    cmp       := add (('='|'<>'|'!='|'<'|'<='|'>'|'>=') add
                 | IS [NOT] NULL
                 | [NOT] IN '(' expr (',' expr)* ')'
                 | [NOT] BETWEEN add AND add)?
    add       := mul (('+'|'-') mul)*
    mul       := unary (('*'|'/') unary)*
    unary     := ['-'] primary
    primary   := number | string | TRUE | FALSE | NULL | name ['.' name]
                 | name '(' ('*' | expr (',' expr)*) ')' | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.relational.sql.ast import (
    Binary,
    Call,
    ColumnName,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    SSJoinClause,
    Star,
    SqlExpr,
    TableRef,
    Unary,
)
from repro.relational.sql.lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse"]

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.current.position, self.text)

    def expect_keyword(self, *words: str) -> Token:
        if not self.current.is_keyword(*words):
            raise self.error(f"expected {' or '.join(words)}")
        return self.advance()

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def expect_punct(self, value: str) -> Token:
        if not (self.current.kind == "punct" and self.current.value == value):
            raise self.error(f"expected {value!r}")
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        if self.current.kind == "punct" and self.current.value == value:
            self.advance()
            return True
        return False

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise self.error("expected an identifier")
        return self.advance().value

    # -- statement -----------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = self.parse_items()
        self.expect_keyword("FROM")
        table = self.parse_tableref()

        joins: List[JoinClause] = []
        ssjoins: List[SSJoinClause] = []
        while self.current.is_keyword("JOIN", "INNER", "LEFT", "SSJOIN"):
            if self.accept_keyword("SSJOIN"):
                ssjoins.append(self.parse_ssjoin_clause())
                continue
            outer = False
            if self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                outer = True
            else:
                self.accept_keyword("INNER")
            self.expect_keyword("JOIN")
            join_table = self.parse_tableref()
            self.expect_keyword("ON")
            joins.append(
                JoinClause(join_table, tuple(self.parse_on_condition()), outer=outer)
            )

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()

        group_by: List[ColumnName] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_name())
            while self.accept_punct(","):
                group_by.append(self.parse_column_name())
            if self.accept_keyword("HAVING"):
                having = self.parse_expr()

        order_by: List[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())

        limit = None
        if self.accept_keyword("LIMIT"):
            if self.current.kind != "number":
                raise self.error("LIMIT expects a number")
            limit = int(float(self.advance().value))

        if self.current.kind != "end":
            raise self.error("unexpected trailing input")
        return SelectStatement(
            items=items,
            table=table,
            joins=joins,
            ssjoins=ssjoins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    # -- clauses -------------------------------------------------------------------

    def parse_items(self) -> List[SelectItem]:
        if self.current.kind == "op" and self.current.value == "*":
            self.advance()
            return [SelectItem(Star())]
        items = [self.parse_item()]
        while self.accept_punct(","):
            items.append(self.parse_item())
        return items

    def parse_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.current.kind == "name":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_tableref(self) -> TableRef:
        table = self.expect_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.current.kind == "name":
            alias = self.advance().value
        return TableRef(table, alias)

    def parse_ssjoin_clause(self) -> SSJoinClause:
        """``SSJOIN`` already consumed: tableref ON overlap (AND overlap)*."""
        table = self.parse_tableref()
        self.expect_keyword("ON")
        element, bounds = self.parse_overlap_term()
        bound_list = [bounds]
        while self.accept_keyword("AND"):
            next_element, next_bound = self.parse_overlap_term()
            if next_element != element:
                raise self.error(
                    f"all OVERLAP conjuncts of one SSJOIN must use the same "
                    f"element column (got {element!r} and {next_element!r})"
                )
            bound_list.append(next_bound)
        return SSJoinClause(table, element, tuple(bound_list))

    def parse_overlap_term(self) -> Tuple[str, SqlExpr]:
        """One ``OVERLAP(column) >= bound`` conjunct.

        OVERLAP is a *contextual* name, not a keyword — `overlap` stays
        usable as a column (it is one in the SSJoin result schema).
        """
        token = self.current
        if not (token.kind == "name" and token.value.upper() == "OVERLAP"):
            raise self.error("SSJOIN ... ON expects OVERLAP(column) >= bound")
        self.advance()
        self.expect_punct("(")
        element = self.expect_name()
        self.expect_punct(")")
        if not (self.current.kind == "op" and self.current.value == ">="):
            raise self.error("OVERLAP(column) supports only the >= comparison")
        self.advance()
        return element, self.parse_additive()

    def parse_on_condition(self) -> List[Tuple[ColumnName, ColumnName]]:
        pairs = [self.parse_equality()]
        while self.accept_keyword("AND"):
            pairs.append(self.parse_equality())
        return pairs

    def parse_equality(self) -> Tuple[ColumnName, ColumnName]:
        left = self.parse_column_name()
        if not (self.current.kind == "op" and self.current.value == "="):
            raise self.error("JOIN ... ON supports only equality conditions")
        self.advance()
        right = self.parse_column_name()
        return left, right

    def parse_column_name(self) -> ColumnName:
        first = self.expect_name()
        if self.accept_punct("."):
            return ColumnName(self.expect_name(), qualifier=first)
        return ColumnName(first)

    def parse_order_item(self) -> OrderItem:
        column = self.parse_column_name()
        if self.accept_keyword("DESC"):
            return OrderItem(column, descending=True)
        self.accept_keyword("ASC")
        return OrderItem(column)

    # -- expressions -------------------------------------------------------------------

    def parse_expr(self) -> SqlExpr:
        return self.parse_or()

    def parse_or(self) -> SqlExpr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = Binary("OR", left, self.parse_and())
        return left

    def parse_and(self) -> SqlExpr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = Binary("AND", left, self.parse_not())
        return left

    def parse_not(self) -> SqlExpr:
        if self.accept_keyword("NOT"):
            return Unary("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> SqlExpr:
        left = self.parse_additive()
        if self.current.kind == "op" and self.current.value in _COMPARISONS:
            op = self.advance().value
            return Binary(op, left, self.parse_additive())
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return Unary("ISNOTNULL" if negated else "ISNULL", left)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            expr: SqlExpr = Call("__IN__", tuple([left] + items))
            return Unary("NOT", expr) if negated else expr
        if self.accept_keyword("BETWEEN"):
            lo = self.parse_additive()
            self.expect_keyword("AND")
            hi = self.parse_additive()
            expr = Binary("AND", Binary(">=", left, lo), Binary("<=", left, hi))
            return Unary("NOT", expr) if negated else expr
        if negated:
            raise self.error("expected IN or BETWEEN after NOT")
        return left

    def parse_additive(self) -> SqlExpr:
        left = self.parse_multiplicative()
        while self.current.kind == "op" and self.current.value in ("+", "-"):
            op = self.advance().value
            left = Binary(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> SqlExpr:
        left = self.parse_unary()
        while self.current.kind == "op" and self.current.value in ("*", "/"):
            op = self.advance().value
            left = Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> SqlExpr:
        if self.current.kind == "op" and self.current.value == "-":
            self.advance()
            operand = self.parse_unary()
            # Fold minus into numeric literals so -1 is Literal(-1), not
            # NEG(Literal(1)) — a canonical form the unparser round-trips.
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return Literal(-operand.value)
            return Unary("NEG", operand)
        return self.parse_primary()

    def parse_primary(self) -> SqlExpr:
        token = self.current
        if token.kind == "number":
            self.advance()
            value = float(token.value)
            return Literal(int(value) if value.is_integer() and "." not in token.value else value)
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if self.accept_punct("("):
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if token.kind == "name":
            name = self.advance().value
            if self.accept_punct("("):
                if self.current.kind == "op" and self.current.value == "*":
                    self.advance()
                    self.expect_punct(")")
                    return Call(name.upper(), (), star=True)
                args: List[SqlExpr] = []
                if not self.accept_punct(")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                    self.expect_punct(")")
                return Call(name.upper(), tuple(args))
            if self.accept_punct("."):
                return ColumnName(self.expect_name(), qualifier=name)
            return ColumnName(name)
        raise self.error("expected an expression")


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement.

    >>> stmt = parse("SELECT a, SUM(w) AS total FROM t GROUP BY a")
    >>> stmt.group_by[0].name
    'a'
    """
    return _Parser(text).parse_select()
