"""Mini-SQL front end for the relational engine.

Enough SQL to express every plan in the paper — including Figure 7's basic
SSJoin verbatim::

    SELECT r.a AS a_r, s.a AS a_s, SUM(r.w) AS overlap
    FROM tokens r JOIN tokens s ON r.b = s.b
    GROUP BY r.a, s.a
    HAVING SUM(r.w) >= 10

See :func:`execute_sql` for the entry point.
"""

from repro.relational.sql.ast import SelectStatement
from repro.relational.sql.compiler import compile_statement, execute_sql
from repro.relational.sql.lexer import SqlSyntaxError, tokenize
from repro.relational.sql.parser import parse
from repro.relational.sql.unparser import expr_to_sql, to_sql

__all__ = [
    "SelectStatement",
    "compile_statement",
    "execute_sql",
    "SqlSyntaxError",
    "tokenize",
    "parse",
    "expr_to_sql",
    "to_sql",
]
