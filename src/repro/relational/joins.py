"""Join algorithms: hash join, sort-merge join, nested-loop theta join.

The SSJoin implementations in :mod:`repro.core` are all built from the
equi-joins here (the paper's plans use only equi-joins plus grouping), while
the nested-loop join exists to express the naive UDF-over-cross-product
baseline the paper argues against.

All equi-joins produce the concatenated schema, with *both* sides' columns
prefixed when a prefix pair is supplied — mirroring how SQL disambiguates
``R.B = S.B`` outputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

#: A join-key spec: one column name, a list of names (same both sides),
#: or a list of ``(left, right)`` pairs. Normalized by ``_resolve_keys``.
JoinKeys = Union[str, Sequence[Union[str, Tuple[str, str]]]]

from repro.errors import PlanError
from repro.relational.batch import (
    Batch,
    BatchStream,
    iter_batches_from_columns,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = [
    "hash_join",
    "merge_join",
    "nested_loop_join",
    "left_outer_join",
    "cross_product",
    "semi_join",
    "joined_schema",
    "hash_join_stream",
    "merge_join_stream",
    "left_outer_join_stream",
    "JoinCounters",
]


class JoinCounters:
    """Mutable counters a caller may pass to observe join effort.

    Attributes
    ----------
    probes:
        Number of probe-side rows processed.
    output_rows:
        Number of result rows emitted.
    comparisons:
        For nested-loop joins, number of predicate evaluations.
    """

    __slots__ = ("probes", "output_rows", "comparisons")

    def __init__(self) -> None:
        self.probes = 0
        self.output_rows = 0
        self.comparisons = 0

    def __repr__(self) -> str:
        return (
            f"JoinCounters(probes={self.probes}, output_rows={self.output_rows}, "
            f"comparisons={self.comparisons})"
        )


def _resolve_keys(keys: JoinKeys) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Normalize a join-key spec into (left_cols, right_cols).

    Accepts a single column name, a list of names (same both sides), or a
    list of ``(left, right)`` pairs.
    """
    if isinstance(keys, str):
        return (keys,), (keys,)
    left: List[str] = []
    right: List[str] = []
    for k in keys:
        if isinstance(k, str):
            left.append(k)
            right.append(k)
        else:
            l, r = k
            left.append(l)
            right.append(r)
    if not left:
        raise PlanError("equi-join requires at least one key column")
    return tuple(left), tuple(right)


def _prefixed_pair(
    left: Relation, right: Relation, prefixes: Optional[Tuple[str, str]]
) -> Tuple[Relation, Relation]:
    if prefixes is not None:
        lp, rp = prefixes
        return left.prefixed(lp), right.prefixed(rp)
    # No prefixes: disambiguate clashing right-side names with _2/_3/...
    taken = set(left.schema.names)
    mapping = {}
    for name in right.schema.names:
        if name in taken:
            n = 2
            while f"{name}_{n}" in taken:
                n += 1
            mapping[name] = f"{name}_{n}"
            taken.add(f"{name}_{n}")
        else:
            taken.add(name)
    return left, (right.rename(mapping) if mapping else right)


def joined_schema(
    left: Schema, right: Schema, prefixes: Optional[Tuple[str, str]]
) -> Schema:
    """The output schema every equi-join here produces: ``left ++ right``
    with both sides qualified when *prefixes* is given, clashing
    right-side names ``_2``/``_3``-suffixed otherwise (the schema-level
    twin of :func:`_prefixed_pair`)."""
    if prefixes is not None:
        lp, rp = prefixes
        return left.prefixed(lp).concat(right.prefixed(rp))
    taken = set(left.names)
    renamed = []
    for col in right.columns:
        name = col.name
        if name in taken:
            n = 2
            while f"{name}_{n}" in taken:
                n += 1
            name = f"{name}_{n}"
        taken.add(name)
        renamed.append(col.renamed(name))
    return left.concat(Schema(renamed))


def hash_join(
    left: Relation,
    right: Relation,
    keys: JoinKeys,
    prefixes: Optional[Tuple[str, str]] = None,
    counters: Optional[JoinCounters] = None,
) -> Relation:
    """Classic build/probe hash equi-join.

    The smaller input is used as the build side; output column order is
    nevertheless always ``left ++ right``.

    Parameters
    ----------
    keys:
        Join keys — see :func:`_resolve_keys` for accepted shapes. Keys refer
        to the *unprefixed* column names.
    prefixes:
        Optional ``(left_prefix, right_prefix)``; when given, output columns
        are qualified, e.g. ``("R", "S")`` yields ``R.B`` / ``S.B``.
    """
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)

    build_is_left = len(left) <= len(right)
    if build_is_left:
        build, probe, bpos, ppos = left, right, lpos, rpos
    else:
        build, probe, bpos, ppos = right, left, rpos, lpos

    table: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in build.rows:
        key = tuple(row[p] for p in bpos)
        if any(v is None for v in key):
            continue  # SQL semantics: NULL never matches in an equi-join
        table.setdefault(key, []).append(row)

    out: List[Tuple[Any, ...]] = []
    for row in probe.rows:
        if counters is not None:
            counters.probes += 1
        key = tuple(row[p] for p in ppos)
        if any(v is None for v in key):
            continue
        matches = table.get(key)
        if not matches:
            continue
        if build_is_left:
            out.extend(m + row for m in matches)
        else:
            out.extend(row + m for m in matches)
    if counters is not None:
        counters.output_rows += len(out)

    lrel, rrel = _prefixed_pair(left, right, prefixes)
    schema = lrel.schema.concat(rrel.schema)
    return Relation(schema, out)


def merge_join(
    left: Relation,
    right: Relation,
    keys: JoinKeys,
    prefixes: Optional[Tuple[str, str]] = None,
    counters: Optional[JoinCounters] = None,
) -> Relation:
    """Sort-merge equi-join (sorts both inputs, then merges key groups).

    Produces the same bag of rows as :func:`hash_join`; exists so the
    optimizer has a genuine physical alternative and so tests can
    cross-validate the two implementations against each other.
    """
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)

    def sort_key(positions: Sequence[int]) -> Callable[[Sequence[Any]], Tuple[Any, ...]]:
        return lambda row: tuple(row[p] for p in positions)

    lrows = sorted(
        (r for r in left.rows if not any(r[p] is None for p in lpos)), key=sort_key(lpos)
    )
    rrows = sorted(
        (r for r in right.rows if not any(r[p] is None for p in rpos)), key=sort_key(rpos)
    )

    out: List[Tuple[Any, ...]] = []
    i = j = 0
    nl, nr = len(lrows), len(rrows)
    while i < nl and j < nr:
        lk = tuple(lrows[i][p] for p in lpos)
        rk = tuple(rrows[j][p] for p in rpos)
        if lk < rk:
            i += 1
        elif lk > rk:
            j += 1
        else:
            # Gather the full key group on both sides, emit their product.
            i2 = i
            while i2 < nl and tuple(lrows[i2][p] for p in lpos) == lk:
                i2 += 1
            j2 = j
            while j2 < nr and tuple(rrows[j2][p] for p in rpos) == rk:
                j2 += 1
            for a in range(i, i2):
                if counters is not None:
                    counters.probes += 1
                la = lrows[a]
                out.extend(la + rrows[b] for b in range(j, j2))
            i, j = i2, j2
    if counters is not None:
        counters.output_rows += len(out)

    lrel, rrel = _prefixed_pair(left, right, prefixes)
    schema = lrel.schema.concat(rrel.schema)
    return Relation(schema, out)


def nested_loop_join(
    left: Relation,
    right: Relation,
    predicate: Callable[[Tuple[Any, ...], Tuple[Any, ...]], bool],
    prefixes: Optional[Tuple[str, str]] = None,
    counters: Optional[JoinCounters] = None,
) -> Relation:
    """θ-join by exhaustive pairing — the "cross product + UDF" plan.

    *predicate* receives the raw left and right row tuples. This is the plan
    shape the paper says a database is forced into when the similarity
    function is an opaque UDF; it exists as the correctness oracle and the
    worst-case baseline.
    """
    out: List[Tuple[Any, ...]] = []
    for lrow in left.rows:
        for rrow in right.rows:
            if counters is not None:
                counters.comparisons += 1
            if predicate(lrow, rrow):
                out.append(lrow + rrow)
    if counters is not None:
        counters.output_rows += len(out)

    lrel, rrel = _prefixed_pair(left, right, prefixes)
    schema = lrel.schema.concat(rrel.schema)
    return Relation(schema, out)


def left_outer_join(
    left: Relation,
    right: Relation,
    keys: JoinKeys,
    prefixes: Optional[Tuple[str, str]] = None,
    counters: Optional[JoinCounters] = None,
) -> Relation:
    """Hash-based LEFT OUTER equi-join.

    Left rows without a match are emitted once, padded with NULLs on the
    right. NULL keys never match (as in the inner joins) but the carrying
    left row still survives, per SQL outer-join semantics.
    """
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)

    table: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in right.rows:
        key = tuple(row[p] for p in rpos)
        if any(v is None for v in key):
            continue
        table.setdefault(key, []).append(row)

    padding = (None,) * len(right.schema)
    out: List[Tuple[Any, ...]] = []
    for row in left.rows:
        if counters is not None:
            counters.probes += 1
        key = tuple(row[p] for p in lpos)
        matches = None if any(v is None for v in key) else table.get(key)
        if matches:
            out.extend(row + m for m in matches)
        else:
            out.append(row + padding)
    if counters is not None:
        counters.output_rows += len(out)

    lrel, rrel = _prefixed_pair(left, right, prefixes)
    schema = lrel.schema.concat(rrel.schema)
    return Relation(schema, out)


def cross_product(
    left: Relation,
    right: Relation,
    prefixes: Optional[Tuple[str, str]] = None,
) -> Relation:
    """Unconditional Cartesian product."""
    return nested_loop_join(left, right, lambda a, b: True, prefixes=prefixes)


def semi_join(
    left: Relation,
    right: Relation,
    keys: JoinKeys,
) -> Relation:
    """Left semi-join: left rows having at least one key match in right."""
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)
    present = set()
    for row in right.rows:
        key = tuple(row[p] for p in rpos)
        if not any(v is None for v in key):
            present.add(key)
    kept = [
        row
        for row in left.rows
        if tuple(row[p] for p in lpos) in present
    ]
    return Relation(left.schema, kept, name=left.name)


# -- vectorized (batch-stream) join kernels ------------------------------------
#
# The equi-joins above, re-expressed over columns: both inputs accumulate
# into flat column arrays, matching produces two parallel *index vectors*
# (one per side, with repeats), and each output column is a single
# C-driven gather ``[col[i] for i in idx]`` — no row tuples anywhere.
# Emission order replicates the row kernels exactly (probe-major with
# build-insertion-ordered matches for hash, sorted key-group products for
# merge), so folding the stream yields bit-identical relations.


def _collect_columns(stream: BatchStream) -> Tuple[List[List[Any]], int]:
    """Drain a stream into one flat column list per schema column."""
    cols: List[List[Any]] = [[] for _ in stream.schema]
    n = 0
    for batch in stream:
        n += batch.num_rows
        for acc, col in zip(cols, batch.columns):
            acc.extend(col)
    return cols, n


def _null_free_key_iter(
    cols: Sequence[Sequence[Any]], positions: Sequence[int]
) -> "Any":
    """Iterate ``(row_index, key)`` pairs, the key a tuple; NULLs kept
    (callers skip them) so indices stay aligned with the input."""
    return enumerate(zip(*(cols[p] for p in positions)))


def hash_join_stream(
    left: BatchStream,
    right: BatchStream,
    keys: JoinKeys,
    prefixes: Optional[Tuple[str, str]] = None,
    batch_size: int = 4096,
) -> BatchStream:
    """Vectorized build/probe hash equi-join (see :func:`hash_join`).

    The smaller accumulated side builds a key → row-index table; probing
    appends to two flat index vectors, and the output columns are gathered
    per side in one pass each, then sliced into morsels.
    """
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)
    schema = joined_schema(left.schema, right.schema, prefixes)

    def gen() -> "Any":
        lcols, ln = _collect_columns(left)
        rcols, rn = _collect_columns(right)
        build_is_left = ln <= rn
        if build_is_left:
            bcols, bpos, pcols, ppos = lcols, lpos, rcols, rpos
        else:
            bcols, bpos, pcols, ppos = rcols, rpos, lcols, lpos

        table: Dict[Any, List[int]] = {}
        if len(bpos) == 1:
            for i, v in enumerate(bcols[bpos[0]]):
                if v is not None:
                    table.setdefault(v, []).append(i)
        else:
            for i, key in _null_free_key_iter(bcols, bpos):
                if not any(v is None for v in key):
                    table.setdefault(key, []).append(i)

        bidx: List[int] = []
        pidx: List[int] = []
        get = table.get
        if len(ppos) == 1:
            for i, v in enumerate(pcols[ppos[0]]):
                if v is None:
                    continue
                matches = get(v)
                if matches:
                    bidx += matches
                    pidx += [i] * len(matches)
        else:
            for i, key in _null_free_key_iter(pcols, ppos):
                if any(v is None for v in key):
                    continue
                matches = get(key)
                if matches:
                    bidx += matches
                    pidx += [i] * len(matches)

        lidx, ridx = (bidx, pidx) if build_is_left else (pidx, bidx)
        out = [[col[i] for i in lidx] for col in lcols]
        out += [[col[i] for i in ridx] for col in rcols]
        yield from iter_batches_from_columns(schema, out, batch_size)

    return BatchStream(schema, gen())


def merge_join_stream(
    left: BatchStream,
    right: BatchStream,
    keys: JoinKeys,
    prefixes: Optional[Tuple[str, str]] = None,
    batch_size: int = 4096,
) -> BatchStream:
    """Vectorized sort-merge equi-join (see :func:`merge_join`).

    Each side argsorts the NULL-filtered row indices by key (stable, so
    the permutation matches the row kernel's ``sorted``), the merge walks
    key groups emitting index-vector cross products, and output columns
    are gathered per side.
    """
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)
    schema = joined_schema(left.schema, right.schema, prefixes)

    def order(
        cols: List[List[Any]], positions: Sequence[int], n: int
    ) -> Tuple[List[int], List[Tuple[Any, ...]]]:
        key_cols = [cols[p] for p in positions]
        idx = [
            i for i in range(n) if not any(c[i] is None for c in key_cols)
        ]
        keyed = [tuple(c[i] for c in key_cols) for i in idx]
        perm = sorted(range(len(idx)), key=keyed.__getitem__)
        return [idx[i] for i in perm], [keyed[i] for i in perm]

    def gen() -> "Any":
        lcols, ln = _collect_columns(left)
        rcols, rn = _collect_columns(right)
        li, lkeyvals = order(lcols, lpos, ln)
        ri, rkeyvals = order(rcols, rpos, rn)

        lidx: List[int] = []
        ridx: List[int] = []
        i = j = 0
        nl, nr = len(li), len(ri)
        while i < nl and j < nr:
            lk = lkeyvals[i]
            rk = rkeyvals[j]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                i2 = i
                while i2 < nl and lkeyvals[i2] == lk:
                    i2 += 1
                j2 = j
                while j2 < nr and rkeyvals[j2] == rk:
                    j2 += 1
                group = ri[j:j2]
                width = j2 - j
                for a in range(i, i2):
                    lidx += [li[a]] * width
                    ridx += group
                i, j = i2, j2

        out = [[col[i] for i in lidx] for col in lcols]
        out += [[col[i] for i in ridx] for col in rcols]
        yield from iter_batches_from_columns(schema, out, batch_size)

    return BatchStream(schema, gen())


def left_outer_join_stream(
    left: BatchStream,
    right: BatchStream,
    keys: JoinKeys,
    prefixes: Optional[Tuple[str, str]] = None,
    batch_size: int = 4096,
) -> BatchStream:
    """Vectorized LEFT OUTER equi-join (see :func:`left_outer_join`).

    The right side always builds (as in the row kernel); the left side
    then **streams** — each left morsel produces its own index vectors
    (build index ``-1`` marking the NULL pad) and is emitted before the
    next is pulled.
    """
    lkeys, rkeys = _resolve_keys(keys)
    lpos = left.schema.positions(lkeys)
    rpos = right.schema.positions(rkeys)
    schema = joined_schema(left.schema, right.schema, prefixes)
    rwidth = len(right.schema)

    def gen() -> "Any":
        rcols, _rn = _collect_columns(right)
        table: Dict[Tuple[Any, ...], List[int]] = {}
        for i, key in _null_free_key_iter(rcols, rpos):
            if not any(v is None for v in key):
                table.setdefault(key, []).append(i)
        get = table.get
        for batch in left:
            lidx: List[int] = []
            ridx: List[int] = []
            for i, key in _null_free_key_iter(batch.columns, lpos):
                matches = None if any(v is None for v in key) else get(key)
                if matches:
                    lidx += [i] * len(matches)
                    ridx += matches
                else:
                    lidx.append(i)
                    ridx.append(-1)
            out = [[col[i] for i in lidx] for col in batch.columns]
            out += [
                [(col[j] if j >= 0 else None) for j in ridx]
                for col in rcols
            ]
            yield from iter_batches_from_columns(schema, out, batch_size)

    return BatchStream(schema, gen())
