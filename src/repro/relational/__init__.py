"""Mini in-memory relational engine — the substrate under every SSJoin plan.

The ICDE'06 paper implements SSJoin as trees of standard relational
operators over SQL Server. This subpackage supplies those operators in pure
Python: relations over row tuples, scalar expressions, equi-joins (hash and
sort-merge), nested-loop θ-joins, GROUP BY/HAVING, the groupwise-processing
operator, a table catalog with statistics, and explainable logical plans.
"""

from repro.relational.aggregates import (
    Aggregate,
    agg_avg,
    agg_collect,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    group_by,
)
from repro.relational.catalog import Catalog
from repro.relational.context import ExecutionContext
from repro.relational.expressions import col, const, maximum, minimum
from repro.relational.groupwise import groupwise_apply, scan_groups
from repro.relational.joins import (
    JoinCounters,
    cross_product,
    hash_join,
    left_outer_join,
    merge_join,
    nested_loop_join,
    semi_join,
)
from repro.relational.operators import (
    distinct,
    extend,
    limit,
    order_by,
    project,
    select,
    union_all,
    value_counts,
)
from repro.relational.plan import (
    Custom,
    Distinct,
    Extend,
    GroupBy,
    Groupwise,
    HashJoin,
    Limit,
    MaterializedInput,
    MergeJoin,
    NestedLoopJoin,
    OrderBy,
    PlanNode,
    PreparedInput,
    Project,
    Select,
    SSJoinNode,
    TableScan,
    explain,
)
from repro.relational.query import Query
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema
from repro.relational.stats import (
    ColumnStats,
    TableStats,
    estimate_equijoin_size,
    estimate_self_equijoin_size,
)

__all__ = [
    "Aggregate",
    "agg_avg",
    "agg_collect",
    "agg_count",
    "agg_max",
    "agg_min",
    "agg_sum",
    "group_by",
    "Catalog",
    "ExecutionContext",
    "PlanNode",
    "TableScan",
    "MaterializedInput",
    "PreparedInput",
    "SSJoinNode",
    "Select",
    "Project",
    "Extend",
    "Distinct",
    "OrderBy",
    "Limit",
    "HashJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "GroupBy",
    "Groupwise",
    "Custom",
    "explain",
    "col",
    "const",
    "maximum",
    "minimum",
    "groupwise_apply",
    "scan_groups",
    "JoinCounters",
    "cross_product",
    "hash_join",
    "left_outer_join",
    "merge_join",
    "nested_loop_join",
    "semi_join",
    "distinct",
    "extend",
    "limit",
    "order_by",
    "project",
    "select",
    "union_all",
    "value_counts",
    "Query",
    "Relation",
    "Column",
    "Schema",
    "ColumnStats",
    "TableStats",
    "estimate_equijoin_size",
    "estimate_self_equijoin_size",
]
