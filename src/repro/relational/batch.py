"""Columnar batches: the morsel currency of the vectorized plan path.

The row protocol evaluates operators one Python tuple at a time — an
interpreter dispatch, a closure call and a fresh tuple allocation per row
per operator. The batch protocol instead flows **morsels**: fixed-capacity
:class:`Batch` objects holding parallel column lists under a shared
:class:`~repro.relational.schema.Schema`. Vectorized operator kernels then
amortize dispatch over thousands of rows (``list(map(fn, col_a, col_b))``
runs the loop in C), pass untouched columns through by reference, and
compact filters via selection vectors instead of materializing per-row.

The module also provides the **boundary adapters** that keep the two
protocols interchangeable — :func:`iter_batches_from_rows` chops a
materialized relation into morsels, :func:`relation_from_batches` folds a
batch stream back into an immutable :class:`Relation` — and
:class:`ColumnarRelation`, a Relation that *carries* its columns and only
materializes row tuples on first access, so the SSJoin physical layer can
emit ``(a_r, a_s, overlap, norm_r, norm_s)`` straight from the encoded
merge without a tuple round-trip.

Batch capacity defaults to :func:`default_batch_size`, derived from the
cost model: the per-batch dispatch overhead (one pool-task unit,
``CostModel.PARALLEL_TASK``) is amortized to under 1% of the per-row work
it rides on (``CostModel.JOIN_ROW``), then rounded up to a power of two —
which lands on 4096, inside the classic 4–16k morsel window.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = [
    "Batch",
    "BatchStream",
    "ColumnarRelation",
    "DEFAULT_BATCH_SIZE",
    "columnar_relation_from_batches",
    "default_batch_size",
    "iter_batches_from_columns",
    "iter_batches_from_rows",
    "relation_from_batches",
    "stream_relation",
]

#: Fallback morsel capacity when no cost model is available.
DEFAULT_BATCH_SIZE = 4096

#: Per-batch dispatch overhead may consume at most this fraction of the
#: per-row work it is amortized over (see :func:`default_batch_size`).
_DISPATCH_BUDGET = 0.01

_MIN_BATCH_SIZE = 1024
_MAX_BATCH_SIZE = 16384


def default_batch_size(cost_model: Any = None) -> int:
    """Morsel capacity derived from the cost model.

    A batch boundary costs roughly one pool-task dispatch
    (``PARALLEL_TASK`` row-units: kernel lookup, bind, loop setup); each
    row in the batch does at least ``JOIN_ROW`` units of work. Choosing
    ``n >= PARALLEL_TASK / (JOIN_ROW * 1%)`` keeps the boundary overhead
    under 1%, and rounding up to a power of two keeps slice arithmetic
    cheap. Clamped to the 1k–16k morsel window so an exotic cost model
    cannot push batches out of cache-friendly territory.
    """
    try:
        from repro.core.optimizer import CostModel
    except Exception:  # pragma: no cover - circular-import guard only
        return DEFAULT_BATCH_SIZE
    model = cost_model if cost_model is not None else CostModel
    task = float(getattr(model, "PARALLEL_TASK", 40.0))
    row = float(getattr(model, "JOIN_ROW", 1.0))
    if task <= 0 or row <= 0:
        return DEFAULT_BATCH_SIZE
    target = task / (row * _DISPATCH_BUDGET)
    size = 1 << max(0, int(target - 1)).bit_length()
    return max(_MIN_BATCH_SIZE, min(_MAX_BATCH_SIZE, size))


class Batch:
    """One morsel: parallel column lists under a shared schema.

    Columns are position-aligned with ``schema.names``; every column has
    the same length (= :attr:`num_rows`). Columns are *shared by
    reference* between batches wherever possible (projection, pass-through
    filters), so kernels must never mutate a column they received.

    A zero-column batch (empty schema) carries its row count explicitly
    via *num_rows*, so ``SELECT COUNT(*)``-shaped plans — whose
    projections drop every column — stay on the batch protocol without
    losing cardinality. When columns are present the stored count is
    ignored and derived from the first column.
    """

    __slots__ = ("schema", "columns", "_num_rows")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[Sequence[Any]],
        num_rows: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.columns: Tuple[Sequence[Any], ...] = tuple(columns)
        if self.columns:
            self._num_rows = len(self.columns[0])
        else:
            self._num_rows = 0 if num_rows is None else num_rows

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Tuple[Any, ...]]) -> "Batch":
        """Transpose a row slice into columns (the row→batch adapter)."""
        width = len(schema)
        if width == 0:
            return cls(schema, (), num_rows=len(rows))
        if not rows:
            return cls(schema, tuple([] for _ in range(width)))
        if width == 1:
            return cls(schema, ([row[0] for row in rows],))
        return cls(schema, tuple(list(c) for c in zip(*rows)))

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def column(self, position: int) -> Sequence[Any]:
        return self.columns[position]

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Transpose back into row tuples (the batch→row adapter)."""
        if not self.columns:
            return [()] * self._num_rows
        if len(self.columns) == 1:
            return [(v,) for v in self.columns[0]]
        return list(zip(*self.columns))

    def take(self, selection: Sequence[int]) -> "Batch":
        """Compact this batch to the rows named by *selection* (a sorted
        selection vector of row indices), sharing nothing downstream."""
        return Batch(
            self.schema,
            tuple([col[i] for i in selection] for col in self.columns),
            num_rows=len(selection),
        )

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"<Batch {list(self.schema.names)} rows={self.num_rows}>"


class BatchStream:
    """A stream of batches plus the metadata a relation would carry.

    The schema and name ride alongside the iterator so a stream of zero
    batches still folds back into a correctly-shaped empty relation.
    """

    __slots__ = ("schema", "batches", "name")

    def __init__(
        self,
        schema: Schema,
        batches: Iterable[Batch],
        name: Optional[str] = None,
    ) -> None:
        self.schema = schema
        self.batches = batches
        self.name = name

    def __iter__(self) -> Iterator[Batch]:
        return iter(self.batches)


class ColumnarRelation(Relation):
    """A Relation that carries columns and materializes rows lazily.

    The SSJoin physical layer and the verify engine produce their output
    as five parallel lists; wrapping them here keeps the columnar form
    available to the batch path (:attr:`columns`) while every row-protocol
    consumer (``.rows``, iteration, ``__eq__``) still sees an ordinary
    Relation — the tuples are built once, on first access.
    """

    __slots__ = ("columns", "_num_rows")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[Sequence[Any]],
        name: Optional[str] = None,
        num_rows: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.columns = tuple(columns)
        self.name = name
        if self.columns:
            self._num_rows = len(self.columns[0])
        else:
            self._num_rows = 0 if num_rows is None else num_rows
        _ROWS_SLOT.__set__(self, None)

    @property  # type: ignore[override]
    def rows(self) -> Tuple[Tuple[Any, ...], ...]:
        cached = _ROWS_SLOT.__get__(self, ColumnarRelation)
        if cached is None:
            if self.columns:
                cached = tuple(zip(*self.columns))
            else:
                cached = ((),) * self._num_rows
            _ROWS_SLOT.__set__(self, cached)
        return cached

    def __len__(self) -> int:
        return self._num_rows

    @property
    def num_rows(self) -> int:
        return len(self)

    def column_values(self, name: str) -> Tuple[Any, ...]:
        return tuple(self.columns[self.schema.position(name)])

    def __reduce__(self) -> Tuple[Any, ...]:
        # The default slot pickling would try to restore through the
        # read-only ``rows`` property; rebuild from columns instead.
        return (
            ColumnarRelation,
            (self.schema, self.columns, self.name, self._num_rows),
        )


#: The base class's ``rows`` slot descriptor, used as backing storage for
#: :class:`ColumnarRelation`'s lazy ``rows`` property.
_ROWS_SLOT = Relation.__dict__["rows"]


def iter_batches_from_rows(
    schema: Schema,
    rows: Sequence[Tuple[Any, ...]],
    batch_size: int,
) -> Iterator[Batch]:
    """Chop a materialized row sequence into morsels."""
    n = len(rows)
    if n == 0:
        return
    for lo in range(0, n, batch_size):
        yield Batch.from_rows(schema, rows[lo : lo + batch_size])


def iter_batches_from_columns(
    schema: Schema,
    columns: Sequence[Sequence[Any]],
    batch_size: int,
    num_rows: Optional[int] = None,
) -> Iterator[Batch]:
    """Slice parallel columns into morsels — no row tuples are built.

    *num_rows* is only consulted for zero-column inputs, where the row
    count cannot be derived from the (absent) columns.
    """
    if not columns:
        n = 0 if num_rows is None else num_rows
        for lo in range(0, n, batch_size):
            yield Batch(schema, (), num_rows=min(batch_size, n - lo))
        return
    n = len(columns[0])
    for lo in range(0, n, batch_size):
        yield Batch(schema, tuple(col[lo : lo + batch_size] for col in columns))


def stream_relation(relation: Relation, batch_size: int) -> BatchStream:
    """Chop a materialized relation into a morsel stream.

    A page-backed relation (anything exposing ``iter_stored_batches`` —
    duck-typed so this layer never imports :mod:`repro.storage`) streams
    morsels straight off its mapped pages; a :class:`ColumnarRelation` is
    sliced column-wise (no row tuples are built); a plain
    :class:`Relation` is transposed slice-by-slice.
    """
    stored = getattr(relation, "iter_stored_batches", None)
    if stored is not None:
        return BatchStream(relation.schema, stored(batch_size), relation.name)
    if isinstance(relation, ColumnarRelation):
        batches = iter_batches_from_columns(
            relation.schema, relation.columns, batch_size, num_rows=len(relation)
        )
    else:
        batches = iter_batches_from_rows(
            relation.schema, relation.rows, batch_size
        )
    return BatchStream(relation.schema, batches, relation.name)


def columnar_relation_from_batches(stream: BatchStream) -> "ColumnarRelation":
    """Fold a batch stream into a :class:`ColumnarRelation`.

    Batches are concatenated in arrival order, so the (lazily built) row
    tuples come out exactly as the row protocol would order them. The
    single-batch case — every result under one morsel — adopts the
    batch's columns by reference.
    """
    it = iter(stream)
    first = next(it, None)
    if first is None:
        return ColumnarRelation(
            stream.schema, [[] for _ in stream.schema], name=stream.name
        )
    second = next(it, None)
    if second is None:
        return ColumnarRelation(
            stream.schema, first.columns, name=stream.name,
            num_rows=first.num_rows,
        )
    columns = [list(c) for c in first.columns]
    total = first.num_rows
    for batch in _chain(second, it):
        total += batch.num_rows
        for acc, col in zip(columns, batch.columns):
            acc.extend(col)
    return ColumnarRelation(
        stream.schema, columns, name=stream.name, num_rows=total
    )


def _chain(head: Batch, rest: Iterator[Batch]) -> Iterator[Batch]:
    yield head
    yield from rest


def relation_from_batches(stream: BatchStream) -> Relation:
    """Fold a batch stream back into an immutable row relation.

    This is the boundary adapter that keeps ``plan.execute(...)`` results
    bit-identical with the row path: batches are transposed in arrival
    order, so row order is exactly what the row protocol would produce.
    """
    rows: List[Tuple[Any, ...]] = []
    for batch in stream:
        rows.extend(batch.to_rows())
    return Relation(stream.schema, rows, name=stream.name)
