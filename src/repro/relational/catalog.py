"""A minimal table catalog — the "database" the operators run against.

The catalog holds named relations and memoizes their statistics, the way a
DBMS catalog backs the optimizer. SSJoin plans register their prepared
(normalized) relations here so the cost model can inspect token frequency
histograms without recomputation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.errors import DuplicateTableError, UnknownTableError
from repro.relational.relation import Relation
from repro.relational.stats import TableStats

__all__ = ["Catalog"]


class Catalog:
    """Mutable mapping of table name -> :class:`Relation`, with stats."""

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}
        self._stats: Dict[str, TableStats] = {}
        #: attached on-disk tables by name (see :meth:`attach`); values
        #: are :class:`repro.storage.store.StoredTable` (typed ``Any`` —
        #: the relational layer never imports the storage layer).
        self._attached: Dict[str, Any] = {}

    # -- mapping protocol ------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(r)}]" for n, r in sorted(self._tables.items()))
        return f"Catalog({parts})"

    # -- table management -------------------------------------------------------

    def register(self, name: str, relation: Relation, replace: bool = False) -> Relation:
        """Add *relation* under *name*. Set *replace* to overwrite."""
        if name in self._tables and not replace:
            raise DuplicateTableError(name)
        named = relation.renamed(name)
        self._tables[name] = named
        self._stats.pop(name, None)
        return named

    def get(self, name: str) -> Relation:
        """Look up a table; raises :class:`UnknownTableError` if absent."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def attach(self, name: str, path: str, replace: bool = False) -> Relation:
        """ATTACH an ingested page file as table *name*.

        The table's ``StoredRelation`` enters the catalog without
        materializing any rows — scans stream morsels from mapped pages,
        and :meth:`attached` exposes the underlying
        :class:`~repro.storage.store.StoredTable` so the SSJoin facade
        can reuse its persisted dictionary/encoding/signatures.
        """
        # Imported lazily: repro.storage layers above repro.relational.
        from repro.storage.store import open_table

        if name in self._tables and not replace:
            raise DuplicateTableError(name)
        table = open_table(path)
        self._tables[name] = table.relation.renamed(name)
        self._attached[name] = table
        self._stats.pop(name, None)
        return self._tables[name]

    def attached(self, name: str) -> Optional[Any]:
        """The :class:`StoredTable` behind *name*, if it was attached."""
        return self._attached.get(name)

    def drop(self, name: str) -> None:
        """Remove a table (and its cached stats)."""
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]
        self._stats.pop(name, None)
        table = self._attached.pop(name, None)
        if table is not None:
            table.close()

    def names(self) -> tuple:
        """All table names, sorted."""
        return tuple(sorted(self._tables))

    # -- statistics ------------------------------------------------------------

    def stats(self, name: str) -> TableStats:
        """Statistics for a table, computed lazily and cached."""
        if name not in self._stats:
            self._stats[name] = TableStats(self.get(name))
        return self._stats[name]
