"""Expression-driven unary relational operators.

:class:`~repro.relational.relation.Relation` has thin callable-based methods;
this module provides the expression-language counterparts used by plans,
plus a handful of operators (limit, sample, value counts) that the Relation
methods do not cover.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import PlanError
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "select",
    "project",
    "extend",
    "distinct",
    "order_by",
    "limit",
    "union_all",
    "value_counts",
]


def select(relation: Relation, predicate: Expr) -> Relation:
    """σ — keep rows where the boolean expression *predicate* holds."""
    fn = predicate.bind(relation.schema)
    return Relation(relation.schema, [r for r in relation.rows if fn(r)], name=relation.name)


def project(
    relation: Relation,
    columns: Sequence,
) -> Relation:
    """π — bag projection.

    Each item of *columns* is either a plain column name (pass-through) or a
    ``(new_name, Expr)`` pair computing a derived column.
    """
    if columns and all(isinstance(item, str) for item in columns):
        # Pure column selection — one C-level itemgetter per row instead
        # of a per-column closure chain (the joins layer projects every
        # result row through here).
        positions = [relation.schema.position(item) for item in columns]
        schema = Schema([Column(n) for n in columns])
        if len(positions) == 1:
            single = operator.itemgetter(positions[0])
            rows = [(single(row),) for row in relation.rows]
        else:
            getter = operator.itemgetter(*positions)
            rows = [getter(row) for row in relation.rows]
        return Relation(schema, rows, name=relation.name)
    names: List[str] = []
    fns = []
    for item in columns:
        if isinstance(item, str):
            pos = relation.schema.position(item)
            names.append(item)
            fns.append(lambda row, p=pos: row[p])
        elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], Expr):
            name, expr = item
            names.append(name)
            fns.append(expr.bind(relation.schema))
        else:
            raise PlanError(f"cannot interpret projection item {item!r}")
    schema = Schema([Column(n) for n in names])
    rows = [tuple(fn(row) for fn in fns) for row in relation.rows]
    return Relation(schema, rows, name=relation.name)


def extend(relation: Relation, column: str, expr: Expr) -> Relation:
    """Append a derived column computed by *expr*."""
    fn = expr.bind(relation.schema)
    schema = relation.schema.extend([Column(column)])
    rows = [row + (fn(row),) for row in relation.rows]
    return Relation(schema, rows, name=relation.name)


def distinct(relation: Relation, columns: Optional[Sequence[str]] = None) -> Relation:
    """δ — duplicate elimination, optionally after projecting to *columns*."""
    target = relation if columns is None else relation.project(list(columns))
    return target.distinct()


def order_by(
    relation: Relation,
    keys: Sequence,
) -> Relation:
    """Sort by a sequence of ``column`` or ``(column, "desc")`` keys.

    Implemented as a stable multi-pass sort (last key first) so mixed
    ascending/descending orderings are supported without comparator tricks.
    """
    rows = list(relation.rows)
    for key in reversed(list(keys)):
        if isinstance(key, str):
            name, descending = key, False
        else:
            name, direction = key
            descending = str(direction).lower() in ("desc", "descending")
        pos = relation.schema.position(name)
        rows.sort(key=lambda row: row[pos], reverse=descending)
    return Relation(relation.schema, rows, name=relation.name)


def limit(relation: Relation, n: int) -> Relation:
    """Keep the first *n* rows."""
    if n < 0:
        raise PlanError(f"limit must be non-negative, got {n}")
    return Relation(relation.schema, relation.rows[:n], name=relation.name)


def union_all(*relations: Relation) -> Relation:
    """Bag union of any number of union-compatible relations."""
    if not relations:
        raise PlanError("union_all requires at least one relation")
    out = relations[0]
    for rel in relations[1:]:
        out = out.union_all(rel)
    return out


def value_counts(relation: Relation, column: str) -> Dict[Any, int]:
    """Frequency of each distinct value in *column* (helper for stats/IDF)."""
    pos = relation.schema.position(column)
    counts: Dict[Any, int] = {}
    for row in relation.rows:
        v = row[pos]
        counts[v] = counts.get(v, 0) + 1
    return counts
