"""Expression-driven unary relational operators.

:class:`~repro.relational.relation.Relation` has thin callable-based methods;
this module provides the expression-language counterparts used by plans,
plus a handful of operators (limit, sample, value counts) that the Relation
methods do not cover.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import PlanError
from repro.relational.batch import Batch, BatchStream
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "select",
    "project",
    "extend",
    "distinct",
    "order_by",
    "split_order_key",
    "limit",
    "union_all",
    "value_counts",
    "select_stream",
    "project_stream",
    "extend_stream",
    "distinct_stream",
    "order_by_stream",
    "limit_stream",
]


def select(relation: Relation, predicate: Expr) -> Relation:
    """σ — keep rows where the boolean expression *predicate* holds."""
    fn = predicate.bind(relation.schema)
    return Relation(relation.schema, [r for r in relation.rows if fn(r)], name=relation.name)


def project(
    relation: Relation,
    columns: Sequence,
) -> Relation:
    """π — bag projection.

    Each item of *columns* is either a plain column name (pass-through) or a
    ``(new_name, Expr)`` pair computing a derived column.
    """
    if columns and all(isinstance(item, str) for item in columns):
        # Pure column selection — one C-level itemgetter per row instead
        # of a per-column closure chain (the joins layer projects every
        # result row through here).
        positions = [relation.schema.position(item) for item in columns]
        schema = Schema([Column(n) for n in columns])
        if len(positions) == 1:
            single = operator.itemgetter(positions[0])
            rows = [(single(row),) for row in relation.rows]
        else:
            getter = operator.itemgetter(*positions)
            rows = [getter(row) for row in relation.rows]
        return Relation(schema, rows, name=relation.name)
    names: List[str] = []
    fns = []
    for item in columns:
        if isinstance(item, str):
            pos = relation.schema.position(item)
            names.append(item)
            fns.append(lambda row, p=pos: row[p])
        elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], Expr):
            name, expr = item
            names.append(name)
            fns.append(expr.bind(relation.schema))
        else:
            raise PlanError(f"cannot interpret projection item {item!r}")
    schema = Schema([Column(n) for n in names])
    rows = [tuple(fn(row) for fn in fns) for row in relation.rows]
    return Relation(schema, rows, name=relation.name)


def extend(relation: Relation, column: str, expr: Expr) -> Relation:
    """Append a derived column computed by *expr*."""
    fn = expr.bind(relation.schema)
    schema = relation.schema.extend([Column(column)])
    rows = [row + (fn(row),) for row in relation.rows]
    return Relation(schema, rows, name=relation.name)


def distinct(relation: Relation, columns: Optional[Sequence[str]] = None) -> Relation:
    """δ — duplicate elimination, optionally after projecting to *columns*."""
    target = relation if columns is None else relation.project(list(columns))
    return target.distinct()


def split_order_key(key: Any) -> "tuple[Any, bool]":
    """Normalize one sort key into ``(target, descending)``.

    *target* is a column name or an :class:`Expr` computing the sort
    value; a bare target sorts ascending, a ``(target, "desc")`` pair
    descending.
    """
    if isinstance(key, (str, Expr)):
        return key, False
    target, direction = key
    return target, str(direction).lower() in ("desc", "descending")


def order_by(
    relation: Relation,
    keys: Sequence,
) -> Relation:
    """Sort by a sequence of ``column``/``Expr`` or ``(key, "desc")`` keys.

    Implemented as a stable multi-pass sort (last key first) so mixed
    ascending/descending orderings are supported without comparator tricks.
    """
    rows = list(relation.rows)
    for key in reversed(list(keys)):
        target, descending = split_order_key(key)
        if isinstance(target, Expr):
            fn = target.bind(relation.schema)
        else:
            pos = relation.schema.position(target)
            fn = lambda row, p=pos: row[p]  # noqa: E731
        rows.sort(key=fn, reverse=descending)
    return Relation(relation.schema, rows, name=relation.name)


def limit(relation: Relation, n: int) -> Relation:
    """Keep the first *n* rows."""
    if n < 0:
        raise PlanError(f"limit must be non-negative, got {n}")
    return Relation(relation.schema, relation.rows[:n], name=relation.name)


def union_all(*relations: Relation) -> Relation:
    """Bag union of any number of union-compatible relations."""
    if not relations:
        raise PlanError("union_all requires at least one relation")
    out = relations[0]
    for rel in relations[1:]:
        out = out.union_all(rel)
    return out


# -- vectorized (batch-stream) kernels ----------------------------------------
#
# These are the morsel-at-a-time counterparts of the row operators above,
# used by the batch protocol in :mod:`repro.relational.plan`. Expressions
# are bound once against the stream schema (outside the generators), so
# unknown-column errors surface at the same point as the row path; each
# generator then touches whole columns per batch.


def select_stream(stream: BatchStream, predicate: Expr) -> BatchStream:
    """Vectorized σ: selection-vector compaction per morsel.

    The predicate compiles via :meth:`Expr.bind_select` — comparisons
    against constants and fused AND/OR emit the selection vector in one
    pass. A batch where every row survives passes through by reference;
    a batch where none survive is dropped entirely.
    """
    sel_fn = predicate.bind_select(stream.schema)

    def gen() -> Iterator[Batch]:
        for batch in stream:
            n = batch.num_rows
            if n == 0:
                continue
            sel = sel_fn(batch)
            if len(sel) == n:
                yield batch
            elif sel:
                yield batch.take(sel)

    return BatchStream(stream.schema, gen(), stream.name)


def project_stream(stream: BatchStream, columns: Sequence) -> BatchStream:
    """Vectorized π: pure-name projections are zero-copy column slices;
    derived columns evaluate via one batched expression call each."""
    schema = stream.schema
    if not columns:
        # Empty projection: the output batches have no columns but still
        # carry their row count, so COUNT(*)-shaped plans stay columnar.
        out_schema = Schema([])

        def counted() -> Iterator[Batch]:
            for batch in stream:
                yield Batch(out_schema, (), num_rows=batch.num_rows)

        return BatchStream(out_schema, counted(), stream.name)
    if all(isinstance(item, str) for item in columns):
        positions = [schema.position(item) for item in columns]
        out_schema = Schema([Column(n) for n in columns])

        def passthrough() -> Iterator[Batch]:
            for batch in stream:
                yield Batch(
                    out_schema, tuple(batch.columns[p] for p in positions)
                )

        return BatchStream(out_schema, passthrough(), stream.name)
    names: List[str] = []
    fns = []
    for item in columns:
        if isinstance(item, str):
            pos = schema.position(item)
            names.append(item)
            fns.append(lambda batch, p=pos: batch.columns[p])
        elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], Expr):
            name, expr = item
            names.append(name)
            fns.append(expr.bind_batch(schema))
        else:
            raise PlanError(f"cannot interpret projection item {item!r}")
    out_schema = Schema([Column(n) for n in names])

    def gen() -> Iterator[Batch]:
        for batch in stream:
            yield Batch(out_schema, tuple(fn(batch) for fn in fns))

    return BatchStream(out_schema, gen(), stream.name)


def extend_stream(stream: BatchStream, column: str, expr: Expr) -> BatchStream:
    """Vectorized Extend: existing columns pass by reference; the derived
    column is one batched UDF call (``list(map(fn, *cols))``)."""
    fn = expr.bind_batch(stream.schema)
    out_schema = stream.schema.extend([Column(column)])

    def gen() -> Iterator[Batch]:
        for batch in stream:
            yield Batch(out_schema, batch.columns + (fn(batch),))

    return BatchStream(out_schema, gen(), stream.name)


def limit_stream(stream: BatchStream, n: int) -> BatchStream:
    """Vectorized Limit: stop pulling morsels once *n* rows have flowed."""
    if n < 0:
        raise PlanError(f"limit must be non-negative, got {n}")

    def gen() -> Iterator[Batch]:
        remaining = n
        if remaining == 0:
            return
        for batch in stream:
            k = batch.num_rows
            if k <= remaining:
                yield batch
                remaining -= k
                if remaining == 0:
                    return
            else:
                yield Batch(
                    batch.schema,
                    tuple(col[:remaining] for col in batch.columns),
                    num_rows=remaining,
                )
                return

    return BatchStream(stream.schema, gen(), stream.name)


def distinct_stream(stream: BatchStream) -> BatchStream:
    """Vectorized δ: one hash set over zipped key columns, streaming.

    Each morsel contributes a selection vector of first occurrences; a
    batch with no duplicates passes through by reference, a batch of pure
    repeats is dropped. First-seen order matches ``Relation.distinct``.
    """
    schema = stream.schema

    def gen() -> Iterator[Batch]:
        if not len(schema):
            # A zero-column relation has at most one distinct row: ().
            for batch in stream:
                if batch.num_rows:
                    yield Batch(schema, (), num_rows=1)
                    return
            return
        seen: set = set()
        add = seen.add
        for batch in stream:
            cols = batch.columns
            rows_iter = (
                ((v,) for v in cols[0]) if len(cols) == 1 else zip(*cols)
            )
            sel: List[int] = []
            keep = sel.append
            for i, row in enumerate(rows_iter):
                if row not in seen:
                    add(row)
                    keep(i)
            if len(sel) == batch.num_rows:
                yield batch
            elif sel:
                yield batch.take(sel)

    return BatchStream(schema, gen(), stream.name)


def order_by_stream(
    stream: BatchStream, keys: Sequence, batch_size: int
) -> BatchStream:
    """Vectorized sort: accumulate columns, argsort an index array once
    per key (stable, last key first), emit morsels of the permutation.

    The index sort reads each key column through ``list.__getitem__`` —
    the same per-row key values the row path sorts by, so the resulting
    permutation (and thus the output order) is bit-identical.
    """
    schema = stream.schema
    getters = []
    for key in keys:
        target, descending = split_order_key(key)
        if isinstance(target, Expr):
            getters.append((target.bind_batch(schema), None, descending))
        else:
            getters.append((None, schema.position(target), descending))

    def gen() -> Iterator[Batch]:
        columns: List[List[Any]] = [[] for _ in schema]
        total = 0
        for batch in stream:
            total += batch.num_rows
            for acc, col in zip(columns, batch.columns):
                acc.extend(col)
        if total == 0:
            return
        if not columns:
            for lo in range(0, total, batch_size):
                yield Batch(schema, (), num_rows=min(batch_size, total - lo))
            return
        merged = Batch(schema, columns, num_rows=total)
        index = list(range(total))
        for fn, pos, descending in reversed(getters):
            col = columns[pos] if fn is None else fn(merged)
            if not isinstance(col, (list, tuple)):
                col = list(col)
            index.sort(key=col.__getitem__, reverse=descending)
        for lo in range(0, total, batch_size):
            sel = index[lo : lo + batch_size]
            yield Batch(schema, tuple([c[i] for i in sel] for c in columns))

    return BatchStream(schema, gen(), stream.name)


def value_counts(relation: Relation, column: str) -> Dict[Any, int]:
    """Frequency of each distinct value in *column* (helper for stats/IDF)."""
    pos = relation.schema.position(column)
    counts: Dict[Any, int] = {}
    for row in relation.rows:
        v = row[pos]
        counts[v] = counts.get(v, 0) + 1
    return counts
