"""Groupwise processing (Chatziantoniou & Ross, VLDB '96/'97).

The paper implements the prefix-filter with "the notion of groupwise
processing [2, 3] where we iteratively process groups of tuples ... and
apply a subquery on each group" (Section 4.3.3). This operator generalizes
GROUP BY: instead of reducing each group to one row with aggregates, it
applies an arbitrary relation-to-relation subquery to each group and unions
the per-group results.

It also provides :func:`scan_groups`, the server-side-cursor style ordered
scan the paper's implementation actually uses to mark prefixes while
streaming over ``R`` ordered on ``(A, B)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError, SchemaError
from repro.relational.relation import Relation

__all__ = ["groupwise_apply", "scan_groups"]


def groupwise_apply(
    relation: Relation,
    keys: Sequence[str],
    subquery: Callable[[Relation], Relation],
) -> Relation:
    """Apply *subquery* to each group of *relation* and union the results.

    Each group (distinct value combination of *keys*) is materialized as a
    relation with the full input schema and passed to *subquery*. The
    subquery may filter, reorder, truncate, or extend the group — the
    prefix-filter uses it to keep only the group's prefix — but every
    per-group result must share one schema.

    >>> r = Relation.from_rows(["a", "w"], [("x", 2), ("x", 9), ("y", 5)])
    >>> top1 = lambda g: g.order_by(["w"], reverse=True).head(1)
    >>> sorted(groupwise_apply(r, ["a"], top1).rows)
    [('x', 9), ('y', 5)]
    """
    key_pos = relation.schema.positions(list(keys))
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation.rows:
        groups.setdefault(tuple(row[p] for p in key_pos), []).append(row)

    out_schema = None
    out_rows: List[Tuple[Any, ...]] = []
    for rows in groups.values():
        result = subquery(Relation(relation.schema, rows))
        if out_schema is None:
            out_schema = result.schema
        elif result.schema.names != out_schema.names:
            raise SchemaError(
                "groupwise subquery returned inconsistent schemas: "
                f"{out_schema.names} vs {result.schema.names}"
            )
        out_rows.extend(result.rows)
    if out_schema is None:
        # Empty input: the output schema is unknowable without probing the
        # subquery, so run it once on an empty group to discover it.
        out_schema = subquery(Relation(relation.schema, ())).schema
    return Relation(out_schema, out_rows)


def scan_groups(
    relation: Relation,
    keys: Sequence[str],
    order_within: Optional[Sequence[str]] = None,
) -> Iterator[Tuple[Tuple[Any, ...], List[Tuple[Any, ...]]]]:
    """Stream ``(group_key, rows)`` pairs in sorted group order.

    Emulates the paper's server-side cursor over ``R`` ordered on ``A, B``:
    one sort, then a single pass that yields each group's rows contiguously.
    *order_within* optionally adds secondary sort columns so each group's
    rows arrive in a deterministic order (the prefix-filter sorts by the
    global element ordering this way).
    """
    if not keys:
        raise PlanError("scan_groups requires at least one key column")
    sort_cols = list(keys) + list(order_within or ())
    ordered = relation.order_by(sort_cols)
    key_pos = relation.schema.positions(list(keys))

    current_key: Optional[Tuple[Any, ...]] = None
    bucket: List[Tuple[Any, ...]] = []
    for row in ordered.rows:
        key = tuple(row[p] for p in key_pos)
        if key != current_key:
            if current_key is not None:
                yield current_key, bucket
            current_key = key
            bucket = []
        bucket.append(row)
    if current_key is not None:
        yield current_key, bucket
