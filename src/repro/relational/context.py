"""The execution context threaded through every plan execution.

The paper's thesis is that SSJoin is an operator *inside* the engine, not a
library bolted onto it. Operators inside an engine do not receive ad-hoc
keyword arguments — they share one execution context carrying the catalog,
the cost model, caches, verification tuning, worker configuration and the
run's metrics. :class:`ExecutionContext` is that object: every
:meth:`~repro.relational.plan.PlanNode.execute` call normalizes whatever it
was handed (a bare :class:`~repro.relational.catalog.Catalog`, ``None``, or
a full context) into one via :meth:`ExecutionContext.of`, and the SSJoin
physical layer, the bitmap verification engine and the parallel executor
all read their configuration from it instead of threading six parameters
through every call site.

This module deliberately avoids importing :mod:`repro.core` at module
level — ``repro.core`` imports ``repro.relational``, so the heavyweight
members (metrics, cost model, encoding cache, verify config) are typed
``Any`` and constructed lazily.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.relational.catalog import Catalog

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """Shared state for one plan execution.

    Attributes
    ----------
    catalog:
        The table catalog plans resolve :class:`TableScan` leaves against.
    metrics:
        The run's :class:`repro.core.metrics.ExecutionMetrics`, created
        lazily on first access so contexts are cheap to build.
    cost_model:
        Optional :class:`repro.core.optimizer.CostModel` override; ``None``
        lets the physical layer use the default model.
    verify_config:
        Optional :class:`repro.core.verify.VerifyConfig` tuning the bitmap
        verification engine; ``None`` resolves widths automatically.
    workers:
        ``None`` for sequential execution, an ``int >= 1`` or ``"auto"``
        to route SSJoin nodes through the parallel executor.
    encoding_cache:
        Optional :class:`repro.core.encoded.EncodingCache` override for
        the dictionary-encoded plans; ``None`` uses the process-global
        cache (so repeat workloads keep hitting it).
    verify:
        Run the static SSJoin invariant verifier (SSJ1xx rules) before
        executing any :class:`SSJoinNode` in the plan.
    batch_size:
        Morsel capacity of the vectorized plan path. ``None`` (default)
        resolves via :func:`repro.relational.batch.default_batch_size`
        from the context's cost model; ``0`` disables batching and runs
        the legacy row-at-a-time protocol; any positive int is used
        verbatim (the equivalence tests sweep 1 / 7 / 4096).
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        metrics: Any = None,
        cost_model: Any = None,
        verify_config: Any = None,
        workers: Optional[Union[int, str]] = None,
        encoding_cache: Any = None,
        verify: bool = False,
        batch_size: Optional[int] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self._metrics = metrics
        self.cost_model = cost_model
        self.verify_config = verify_config
        self.workers = workers
        self.encoding_cache = encoding_cache
        self.verify = verify
        self.batch_size = batch_size
        self._resolved_batch_size: Optional[int] = None

    @property
    def metrics(self) -> Any:
        """The run's ExecutionMetrics (created lazily on first access)."""
        if self._metrics is None:
            from repro.core.metrics import ExecutionMetrics

            self._metrics = ExecutionMetrics()
        return self._metrics

    def resolved_batch_size(self) -> int:
        """The effective morsel capacity: 0 means the row protocol.

        ``batch_size=None`` resolves once per context through the cost
        model (see :func:`repro.relational.batch.default_batch_size`)
        and is cached, so per-node protocol dispatch stays cheap.
        """
        if self.batch_size is not None:
            return max(0, int(self.batch_size))
        if self._resolved_batch_size is None:
            from repro.relational.batch import default_batch_size

            self._resolved_batch_size = default_batch_size(self.cost_model)
        return self._resolved_batch_size

    @classmethod
    def of(
        cls, context: Union["ExecutionContext", Catalog, None]
    ) -> "ExecutionContext":
        """Normalize *context* into an :class:`ExecutionContext`.

        Accepts a full context (returned as-is), a bare catalog (wrapped),
        or ``None`` (a fresh context over an empty catalog) — which is what
        keeps the historical ``node.execute(catalog)`` call shape working.
        """
        if isinstance(context, ExecutionContext):
            return context
        if context is None or isinstance(context, Catalog):
            return cls(catalog=context)
        raise TypeError(
            f"cannot execute a plan against {context!r}; expected an "
            "ExecutionContext, a Catalog, or None"
        )

    def __repr__(self) -> str:
        parts = [f"tables={len(self.catalog)}"]
        if self.workers is not None:
            parts.append(f"workers={self.workers!r}")
        if self.verify:
            parts.append("verify=True")
        if self.batch_size is not None:
            parts.append(f"batch_size={self.batch_size}")
        return f"ExecutionContext({', '.join(parts)})"
