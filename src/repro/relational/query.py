"""A fluent query builder over the plan nodes.

The SSJoin plans are hand-built operator trees; downstream users of the
engine deserve something friendlier. :class:`Query` wraps a
:class:`~repro.relational.plan.PlanNode` and offers chainable relational
verbs that construct the tree, plus ``execute``/``explain``:

>>> from repro.relational import Catalog, Relation, col
>>> catalog = Catalog()
>>> _ = catalog.register("emp", Relation.from_rows(
...     ["dept", "name", "salary"],
...     [("eng", "ann", 120), ("eng", "bob", 100), ("ops", "cid", 90)]))
>>> q = (Query.table(catalog, "emp")
...      .where(col("salary") >= 100)
...      .select("dept", "name")
...      .order_by("name"))
>>> q.execute().rows
(('eng', 'ann'), ('eng', 'bob'))

Queries are immutable: every verb returns a new Query sharing the catalog.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple, Union

from repro.errors import PlanError
from repro.relational.aggregates import Aggregate
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expr
from repro.relational.plan import (
    Custom,
    Distinct,
    Extend,
    GroupBy,
    Groupwise,
    HashJoin,
    LeftOuterJoin,
    Limit,
    MaterializedInput,
    MergeJoin,
    NestedLoopJoin,
    OrderBy,
    PlanNode,
    Project,
    Select,
    TableScan,
    explain,
)
from repro.relational.joins import JoinKeys
from repro.relational.relation import Relation

__all__ = ["Query"]


class Query:
    """An immutable, composable query over a catalog."""

    def __init__(self, catalog: Catalog, node: PlanNode) -> None:
        self._catalog = catalog
        self._node = node

    # -- constructors -----------------------------------------------------------

    @classmethod
    def table(cls, catalog: Catalog, name: str) -> "Query":
        """Start from a registered table."""
        catalog.get(name)  # fail fast on unknown tables
        return cls(catalog, TableScan(name))

    @classmethod
    def relation(cls, catalog: Catalog, relation: Relation, label: str = "input") -> "Query":
        """Start from an in-memory relation not in the catalog."""
        return cls(catalog, MaterializedInput(relation, label))

    # -- unary verbs --------------------------------------------------------------

    def where(self, predicate: Expr) -> "Query":
        """σ — filter rows."""
        return Query(self._catalog, Select(self._node, predicate))

    def select(self, *columns: Union[str, Tuple[str, Expr]]) -> "Query":
        """π — keep (or derive) columns; ``(name, expr)`` computes one."""
        if not columns:
            raise PlanError("select requires at least one column")
        return Query(self._catalog, Project(self._node, list(columns)))

    def extend(self, column: str, expr: Expr) -> "Query":
        """Append a derived column."""
        return Query(self._catalog, Extend(self._node, column, expr))

    def distinct(self) -> "Query":
        return Query(self._catalog, Distinct(self._node))

    def order_by(self, *keys: Union[str, Tuple[str, str]]) -> "Query":
        """Sort by ``"col"`` or ``("col", "desc")`` keys."""
        if not keys:
            raise PlanError("order_by requires at least one key")
        return Query(self._catalog, OrderBy(self._node, list(keys)))

    def limit(self, n: int) -> "Query":
        return Query(self._catalog, Limit(self._node, n))

    def apply(self, fn: Callable[[Relation], Relation], description: str) -> "Query":
        """Escape hatch: apply an arbitrary relation transformer."""
        return Query(self._catalog, Custom(self._node, fn, description))

    # -- binary verbs ----------------------------------------------------------------

    def _other_node(self, other: Union["Query", str, Relation]) -> PlanNode:
        if isinstance(other, Query):
            return other._node
        if isinstance(other, str):
            self._catalog.get(other)
            return TableScan(other)
        if isinstance(other, Relation):
            return MaterializedInput(other, other.name or "relation")
        raise PlanError(f"cannot join with {other!r}")

    def join(
        self,
        other: Union["Query", str, Relation],
        on: JoinKeys,
        how: str = "hash",
        prefixes: Optional[Tuple[str, str]] = None,
    ) -> "Query":
        """Equi-join with another query/table/relation.

        *on* takes the same shapes as the join functions: a column name, a
        list of names, or ``(left, right)`` pairs. *how* is ``"hash"`` or
        ``"merge"``.
        """
        node = self._other_node(other)
        if how == "hash":
            joined: PlanNode = HashJoin(self._node, node, keys=on, prefixes=prefixes)
        elif how == "merge":
            joined = MergeJoin(self._node, node, keys=on, prefixes=prefixes)
        else:
            raise PlanError(f"unknown join method {how!r}; expected hash or merge")
        return Query(self._catalog, joined)

    def left_join(
        self,
        other: Union["Query", str, Relation],
        on: JoinKeys,
        prefixes: Optional[Tuple[str, str]] = None,
    ) -> "Query":
        """LEFT OUTER equi-join: unmatched left rows survive, NULL-padded."""
        node = self._other_node(other)
        outer = LeftOuterJoin(self._node, node, keys=on, prefixes=prefixes)
        return Query(self._catalog, outer)

    def join_where(
        self,
        other: Union["Query", str, Relation],
        predicate: Callable[[Tuple[Any, ...], Tuple[Any, ...]], bool],
        description: str = "theta",
        prefixes: Optional[Tuple[str, str]] = None,
    ) -> "Query":
        """θ-join (nested loop) over an arbitrary row-pair predicate."""
        node = self._other_node(other)
        return Query(
            self._catalog,
            NestedLoopJoin(self._node, node, predicate, prefixes=prefixes,
                           description=description),
        )

    # -- aggregation ---------------------------------------------------------------

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Sequence[Aggregate],
        having: Optional[Expr] = None,
    ) -> "Query":
        """γ with aggregates and optional HAVING."""
        return Query(self._catalog, GroupBy(self._node, keys, aggregates, having))

    def groupwise(
        self,
        keys: Sequence[str],
        subquery: Callable[[Relation], Relation],
        description: str = "subquery",
    ) -> "Query":
        """Groupwise processing: per-group subquery application."""
        return Query(self._catalog, Groupwise(self._node, keys, subquery, description))

    # -- execution --------------------------------------------------------------------

    def execute(self) -> Relation:
        """Run the plan against the catalog."""
        return self._node.execute(self._catalog)

    def explain(self) -> str:
        """Render the plan tree."""
        return explain(self._node)

    @property
    def plan(self) -> PlanNode:
        """The underlying plan node (for composition with raw nodes)."""
        return self._node

    def __repr__(self) -> str:
        return f"Query({self._node.label()})"
