"""Hamming-distance joins via SSJoin.

Hamming distance is one of the similarity notions the paper's introduction
commits SSJoin to supporting. Two variants:

* **set hamming** — symmetric-difference weight of token sets;
  ``HD ≤ k ⇔ Overlap ≥ (wt(s1) + wt(s2) − k)/2`` is an *exact*
  :class:`~repro.core.predicate.SumNormBound` reduction (no post-filter).
* **string hamming** — positions differing between equal-length strings;
  strings become sets of ``(position, character)`` elements, the same
  reduction applies, and a length-equality post-check drops cross-length
  candidates.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate, SumNormBound
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
    similarity_udf,
)
from repro.tokenize.words import words

__all__ = ["set_hamming_join", "string_hamming_join"]


def _hamming_predicate(k: float) -> OverlapPredicate:
    return OverlapPredicate([SumNormBound(0.5, 0.5, -k / 2.0)])


def set_hamming_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    k: float = 2.0,
    tokenizer: Callable[[str], Sequence[Any]] = words,
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Pairs whose token multisets differ by at most weight *k*.

    The reported similarity is ``1 − HD/(wt(s1)+wt(s2))`` (normalized
    symmetric difference), 1.0 for identical sets.
    """
    if k < 0:
        raise PredicateError(f"k must be non-negative, got {k}")
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        pl = PreparedRelation.from_strings(left, tokenizer, norm=NORM_WEIGHT, name="R")
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, tokenizer, norm=NORM_WEIGHT, name="S"
            )
        )

    # The SumNormBound reduction is exact, so no Select stage: just the
    # normalized symmetric-difference score off the output columns.
    def set_similarity(overlap: float, norm_r: float, norm_s: float) -> float:
        total = norm_r + norm_s
        return 1.0 - (total - 2.0 * overlap) / total if total else 1.0

    plan, node = compose_join_plan(
        pl,
        pr,
        _hamming_predicate(k),
        implementation=implementation,
        similarity=similarity_udf(
            "SETHAM", set_similarity, "overlap", "norm_r", "norm_s"
        ),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=float(k),
            self_join=self_join,
            symmetric=True,
        )


def _position_chars(text: str) -> List[Tuple[int, str]]:
    return list(enumerate(text))


def string_hamming_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    k: int = 1,
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Equal-length string pairs differing in at most *k* positions.

    >>> res = string_hamming_join(["karolin", "kathrin", "karl"], k=3)
    >>> res.pair_set()
    {('karolin', 'kathrin')}
    """
    if k < 0:
        raise PredicateError(f"k must be non-negative, got {k}")
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        pl = PreparedRelation.from_strings(
            left, _position_chars, norm=NORM_WEIGHT, name="R"
        )
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, _position_chars, norm=NORM_WEIGHT, name="S"
            )
        )

    # String hamming distance counts differing *positions*: each differing
    # position removes one (position, char) element from BOTH sets, so
    # HD_string ≤ k ⇔ Overlap ≥ L − k — i.e. (L1 + L2)/2 − k for the
    # equal-length pairs the join is defined on.
    predicate = OverlapPredicate([SumNormBound(0.5, 0.5, -float(k))])

    def string_similarity(a: str, b: str, overlap: float) -> float:
        return 1.0 - (len(a) - overlap) / len(a) if len(a) else 1.0

    plan, node = compose_join_plan(
        pl,
        pr,
        predicate,
        implementation=implementation,
        # hamming distance is undefined across lengths
        keep=similarity_udf(
            "SAMELEN", lambda a, b: len(a) == len(b), "a_r", "a_s"
        ),
        similarity=similarity_udf(
            "STRHAM", string_similarity, "a_r", "a_s", "overlap"
        ),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=float(k),
            self_join=self_join,
            symmetric=True,
        )
