"""Similarity joins built on the SSJoin primitive (paper Section 3).

Each join follows Figure 2: prepare set relations, run SSJoin with a
superset-guaranteeing predicate, post-filter with the exact similarity
function. :mod:`repro.joins.direct` is the cross-product UDF baseline and
:mod:`repro.joins.gravano` the customized edit-join comparator of [9].
"""

from repro.joins.base import MatchPair, SimilarityJoinResult, canonical_self_pairs
from repro.joins.cooccurrence import cooccurrence_join
from repro.joins.cosine_join import cosine_join
from repro.joins.direct import direct_join
from repro.joins.edit_join import edit_distance_join, edit_similarity_join
from repro.joins.fd_join import fd_agreement_join
from repro.joins.ges_join import expand_tokens, ges_join
from repro.joins.gravano import gravano_edit_join
from repro.joins.hamming_join import set_hamming_join, string_hamming_join
from repro.joins.jaccard_join import jaccard_containment_join, jaccard_resemblance_join
from repro.joins.overlap_join import overlap_join
from repro.joins.soundex_join import soundex_join
from repro.joins.topk import topk_matches

__all__ = [
    "MatchPair",
    "SimilarityJoinResult",
    "canonical_self_pairs",
    "cooccurrence_join",
    "cosine_join",
    "direct_join",
    "edit_distance_join",
    "edit_similarity_join",
    "fd_agreement_join",
    "expand_tokens",
    "ges_join",
    "gravano_edit_join",
    "set_hamming_join",
    "string_hamming_join",
    "jaccard_containment_join",
    "jaccard_resemblance_join",
    "overlap_join",
    "soundex_join",
    "topk_matches",
]
