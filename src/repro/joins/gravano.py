"""The customized edit-similarity join of Gravano et al. [9] (Figure 11).

This is the baseline the paper measures SSJoin against: "an equi-join on
R.B and S.B along with additional filters (difference in lengths of strings
has to be less, and the positions of at least one q-gram which is common to
both strings has to be close) followed by an invocation of the edit
similarity computation."

Note the filters the paper's comparator applies: **length** (string length
difference ⩽ ε) and **position** (at least one shared q-gram at positions
within ε) — every pair passing those goes straight to the edit-similarity
UDF. That is why Table 1 shows the custom plan performing orders of
magnitude more edit computations than the SSJoin plans: length+position are
far weaker than the weighted-overlap predicate. The *full* algorithm of [9]
additionally applies Property 4's **count filter**
(``shared q-grams ≥ max(len) − q + 1 − ε·q``); pass
``use_count_filter=True`` to get it — the ablation benchmark compares both
configurations.

The q-gram equi-join is realized with an inverted index (gram → postings),
the moral equivalent of the sorted merge the paper's SQL plan used. Matched
posting pairs are counted per string pair, exactly like the SQL
``GROUP BY ... HAVING COUNT(*)`` formulation — including its benign
overcounting of repeated grams, which only admits extra candidates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.errors import PredicateError
from repro.joins.base import MatchPair, SimilarityJoinResult, canonical_self_pairs
from repro.sim.edit import edit_distance_within, edit_similarity
from repro.tokenize.qgrams import positional_qgrams

__all__ = ["gravano_edit_join"]


def _index(
    values: Sequence[str], q: int
) -> Tuple[List[str], Dict[str, List[Tuple[int, int]]]]:
    """Distinct strings + inverted index gram -> [(string_idx, position)]."""
    distinct = list(dict.fromkeys(values))
    postings: Dict[str, List[Tuple[int, int]]] = {}
    for idx, value in enumerate(distinct):
        for pos, gram in positional_qgrams(value, q):
            postings.setdefault(gram, []).append((idx, pos))
    return distinct, postings


def gravano_edit_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    q: int = 3,
    epsilon: Optional[int] = None,
    use_count_filter: bool = False,
    implementation: str = "custom",
) -> SimilarityJoinResult:
    """Edit-similarity (or edit-distance) join by the customized algorithm.

    Pass *threshold* for the similarity form (per-pair edit budget
    ``⌊(1−θ)·max(len)⌋``) or *epsilon* for the absolute-distance form.
    ``use_count_filter=False`` (default) is the comparator exactly as the
    paper describes it — length + position filters only; ``True`` adds
    Property 4's q-gram count filter, i.e. the full algorithm of [9].
    *implementation* is accepted for signature parity with the SSJoin-based
    joins but must remain ``"custom"``.
    """
    if implementation != "custom":
        raise PredicateError("gravano_edit_join has a single, customized implementation")
    if epsilon is None and not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    if epsilon is not None and epsilon < 0:
        raise PredicateError(f"epsilon must be non-negative, got {epsilon}")

    self_join = right is None
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        left_values = list(dict.fromkeys(left))
        if self_join:
            right_values, postings = _index(left, q)
        else:
            right_values, postings = _index(right, q)
        right_index = {v: i for i, v in enumerate(right_values)}
        metrics.prepared_rows = sum(
            max(0, len(v) - q + 1) for v in left_values
        ) + sum(max(0, len(v) - q + 1) for v in right_values)

    def pair_budget(a: str, b: str) -> int:
        if epsilon is not None:
            return epsilon
        return int((1.0 - threshold) * max(len(a), len(b)) + 1e-9)

    def count_bound(a: str, b: str) -> float:
        return max(len(a), len(b)) - q + 1 - pair_budget(a, b) * q

    # -- candidate enumeration: q-gram merge + length & position filters ----
    candidate_pairs: List[Tuple[str, str]] = []
    with metrics.phase(PHASE_SSJOIN):
        for a in left_values:
            counts: Dict[int, int] = {}
            alen = len(a)
            for pos, gram in positional_qgrams(a, q):
                for sidx, spos in postings.get(gram, ()):
                    b = right_values[sidx]
                    budget = pair_budget(a, b)
                    if abs(alen - len(b)) > budget:  # length filter
                        continue
                    if abs(pos - spos) > budget:     # position filter
                        continue
                    counts[sidx] = counts.get(sidx, 0) + 1
                    metrics.equijoin_rows += 1
            for sidx, count in counts.items():
                b = right_values[sidx]
                metrics.candidate_pairs += 1
                if not use_count_filter or count >= count_bound(a, b):
                    candidate_pairs.append((a, b))

        # Degenerate short-string pairs: count bound <= 0 yet possibly no
        # shared q-gram. Brute-force among short strings only.
        if epsilon is not None:
            cutoff = (q - 1) + epsilon * q
        else:
            fraction = 1.0 - q * (1.0 - threshold)
            cutoff = int((q - 1) / fraction) if fraction > 0 else max(
                (len(v) for v in left_values + right_values), default=0
            )
        left_short = [v for v in left_values if len(v) <= cutoff]
        right_short = [v for v in right_values if len(v) <= cutoff]
        shared_grams = {
            (a, b) for a, b in candidate_pairs
        }
        for a in left_short:
            for b in right_short:
                if (a, b) not in shared_grams:
                    candidate_pairs.append((a, b))

    # -- verification --------------------------------------------------------
    verified: List[Tuple[str, str]] = []
    with metrics.phase(PHASE_FILTER):
        for a, b in candidate_pairs:
            metrics.similarity_comparisons += 1
            if edit_distance_within(a, b, pair_budget(a, b)) is not None:
                verified.append((a, b))

    final = canonical_self_pairs(verified, symmetric=True) if self_join else sorted(
        set(verified), key=repr
    )
    matches = [MatchPair(a, b, edit_similarity(a, b)) for a, b in final]
    metrics.result_pairs = len(matches)
    metrics.implementation = "custom"
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation="custom",
        threshold=threshold if epsilon is None else float(epsilon),
    )
