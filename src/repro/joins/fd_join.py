"""Soft functional-dependency joins (paper Section 3.4, Example 6, Figure 6).

Several soft FDs ``X_i → A`` each suggest that tuples agreeing on ``X_i``
share an ``A`` value; aggregating by majority vote gives Definition 7's
``t1 ≈_{k/h}^{FD} t2``: the tuples agree on at least *k* of the *h* source
attributes. Associating each key with the set of ``(column, value)`` pairs
and counting agreements is an SSJoin with unit weights and the absolute
predicate ``Overlap ≥ k`` — an exact reduction, no post-filter.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
)
from repro.relational.expressions import col
from repro.tokenize.sets import WeightedSet

__all__ = ["fd_agreement_join"]

Record = Mapping[str, Any]


def _prepare_records(
    records: Sequence[Record],
    key: str,
    attributes: Sequence[str],
    name: str,
) -> PreparedRelation:
    """One group per key: the set of its ``(column, value)`` pairs.

    ``None``/missing attribute values produce no element — a NULL cannot
    agree with anything, matching SQL comparison semantics.
    """
    groups: Dict[Any, WeightedSet] = {}
    for record in records:
        k = record[key]
        if k in groups:
            raise PredicateError(f"duplicate key {k!r} in FD-join input {name}")
        elements = {
            (column, record[column]): 1.0
            for column in attributes
            if record.get(column) is not None
        }
        groups[k] = WeightedSet(elements)
    return PreparedRelation.from_sets(groups, name=name)


def fd_agreement_join(
    left: Sequence[Record],
    right: Optional[Sequence[Record]] = None,
    key: str = "name",
    attributes: Sequence[str] = ("address", "email", "phone"),
    k: int = 2,
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Key pairs agreeing on at least *k* of the *attributes* (≈ k/h join).

    Example 6's ``Author1 ≈_{2/3}^{FD} Author2`` is
    ``fd_agreement_join(a1, a2, key="name",
    attributes=("address", "email", "phone"), k=2)``.

    Reported similarity is the agreement fraction ``agreements / h``.
    """
    h = len(attributes)
    if not 1 <= k <= h:
        raise PredicateError(f"k must be in [1, {h}], got {k}")
    self_join = right is None
    right_records = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        pl = _prepare_records(left, key, attributes, "R")
        pr = (
            pl
            if self_join
            else _prepare_records(right_records, key, attributes, "S")
        )

    # Figure 6: unit weights + absolute predicate is exact; the agreement
    # fraction is the overlap rescaled by the attribute count.
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.absolute(float(k)),
        implementation=implementation,
        similarity=col("overlap") / float(h),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=float(k),
            self_join=self_join,
            symmetric=True,
            sort=True,
        )
