"""Top-K approximate matching composed from SSJoin + a top-k operator.

Section 6: "by composing the SSJoin operator with the top-k operator, we
can address the form of top-K queries which ask for the best matches whose
similarity is above a certain threshold" — the fuzzy-match lookup of [4, 6].

:func:`topk_matches` does exactly that composition: a thresholded
Jaccard-containment SSJoin produces candidates (queries contained in
reference strings), then a per-query top-k keeps the best *k* matches by
exact similarity.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import MatchPair, compose_join_plan, run_join_plan, similarity_udf
from repro.joins.jaccard_join import resolve_weights
from repro.relational.expressions import col
from repro.tokenize.weights import WeightTable
from repro.tokenize.words import words

__all__ = ["topk_matches"]


def topk_matches(
    queries: Sequence[str],
    references: Sequence[str],
    k: int = 3,
    threshold: float = 0.5,
    tokenizer: Callable[[str], Sequence[Any]] = words,
    weights: Union[str, WeightTable, None] = "idf",
    similarity: Optional[Callable[[str, str], float]] = None,
    implementation: str = "auto",
) -> Dict[str, List[MatchPair]]:
    """Best *k* reference matches per query, above *threshold*.

    The SSJoin stage uses Jaccard containment of the query's token set in
    the reference's (the natural predicate for lookups: the query must be
    mostly covered). *similarity* defaults to that same containment score
    read from the operator output; pass a custom function (e.g. GES) to
    re-rank candidates with a finer similarity.

    Returns ``{query: [MatchPair, ...]}`` with each list sorted by
    descending similarity; queries with no match above the threshold map to
    an empty list.
    """
    if k < 1:
        raise PredicateError(f"k must be >= 1, got {k}")
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")

    metrics = ExecutionMetrics()
    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, queries, references)
        pq = PreparedRelation.from_strings(
            queries, tokenizer, weights=table, norm=NORM_WEIGHT, name="Q"
        )
        pref = PreparedRelation.from_strings(
            references, tokenizer, weights=table, norm=NORM_WEIGHT, name="REF"
        )

    # Section 6 composition: thresholded containment SSJoin → similarity
    # stage (default: containment off the output columns; custom: the
    # caller's re-ranking UDF plus its threshold Select) → per-query top-k.
    if similarity is None:
        score_expr = similarity_udf(
            "JC", lambda overlap, norm: overlap / norm if norm else 1.0,
            "overlap", "norm_r",
        )
        keep = None
    else:
        score_expr = similarity_udf(
            "SIM", similarity, "a_r", "a_s", metrics=metrics
        )
        keep = col("similarity") + 1e-9 >= threshold
    plan, node = compose_join_plan(
        pq,
        pref,
        OverlapPredicate.one_sided(threshold, side="left"),
        implementation=implementation,
        similarity=score_expr,
        keep=keep,
    )
    relation, _ = run_join_plan(plan, node, metrics=metrics)

    out: Dict[str, List[MatchPair]] = {query: [] for query in dict.fromkeys(queries)}
    with metrics.phase(PHASE_FILTER):
        scored: Dict[str, List[Tuple[float, str]]] = {}
        for query, ref, score in relation.rows:
            scored.setdefault(query, []).append((score, ref))
        for query, entries in scored.items():
            best = heapq.nlargest(k, entries, key=lambda e: (e[0], e[1]))
            out[query] = [MatchPair(query, ref, score) for score, ref in best]
    return out
