"""Jaccard containment and resemblance joins (paper Section 3.2, Figure 4).

Containment translates *exactly* into a 1-sided normalized SSJoin —
"this translation does not require a post-processing step". Resemblance
uses ``JR ≥ α ⇒ JC(r, s) ≥ α ∧ JC(s, r) ≥ α`` (since JC ⩾ JR in both
directions), i.e. the 2-sided predicate, plus a resemblance check computable
directly from the SSJoin output columns (overlap and both norms) — no
re-tokenization needed.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
    similarity_udf,
)
from repro.relational.expressions import col
from repro.tokenize.weights import IDFWeights, WeightTable
from repro.tokenize.words import words

__all__ = ["jaccard_containment_join", "jaccard_resemblance_join", "resolve_weights"]

Tokenizer = Callable[[str], Sequence[Any]]


def resolve_weights(
    weights: Union[str, WeightTable, None],
    tokenizer: Tokenizer,
    left: Sequence[str],
    right: Sequence[str],
) -> Optional[WeightTable]:
    """Resolve the weights argument shared by the token-based joins.

    ``"idf"`` fits the paper's IDF formula over both sides; ``None`` gives
    unit weights; a :class:`WeightTable` is used as-is.
    """
    if weights is None:
        return None
    if isinstance(weights, WeightTable):
        return weights
    if weights == "idf":
        return IDFWeights.fit_two(
            (tokenizer(v) for v in left), (tokenizer(v) for v in right)
        )
    raise PredicateError(f"unknown weights spec {weights!r}; expected 'idf', None, or a table")


def _check_threshold(threshold: float) -> None:
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")


def jaccard_containment_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    tokenizer: Tokenizer = words,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """Pairs with ``JC(Set(l), Set(r)) ≥ threshold`` (Definition 5.1).

    Containment is asymmetric, so a self-join keeps both directions of
    every non-identity pair. The SSJoin predicate is exact; the reported
    similarity is ``overlap / norm_r`` read off the operator output.
    """
    _check_threshold(threshold)
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, left, right_values)
        pl = PreparedRelation.from_strings(
            left, tokenizer, weights=table, norm=NORM_WEIGHT, name="R"
        )
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, tokenizer, weights=table, norm=NORM_WEIGHT, name="S"
            )
        )

    # Figure 4 left panel: the 1-sided predicate is exact, so the plan has
    # no Select stage — just the containment score read off the output.
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.one_sided(threshold, side="left"),
        implementation=implementation,
        drop_identity=self_join,
        similarity=similarity_udf(
            "JC", lambda overlap, norm: overlap / norm if norm else 1.0,
            "overlap", "norm_r",
        ),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics, workers=workers)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=threshold,
            self_join=self_join,
            symmetric=False,
            sort=True,
        )


def jaccard_resemblance_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    tokenizer: Tokenizer = words,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """Pairs with ``JR(Set(l), Set(r)) ≥ threshold`` (Definition 5.2).

    Figure 4 right panel: the 2-sided containment SSJoin produces the
    candidates; the resemblance filter
    ``overlap / (norm_r + norm_s − overlap) ≥ θ`` runs on the operator
    output columns.
    """
    _check_threshold(threshold)
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, left, right_values)
        pl = PreparedRelation.from_strings(
            left, tokenizer, weights=table, norm=NORM_WEIGHT, name="R"
        )
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, tokenizer, weights=table, norm=NORM_WEIGHT, name="S"
            )
        )

    # Figure 4 right panel: candidates from the 2-sided containment
    # SSJoin, then the resemblance check as a Select over the operator's
    # own output columns — no re-tokenization.
    def resemblance(overlap: float, norm_r: float, norm_s: float) -> float:
        union = norm_r + norm_s - overlap
        return overlap / union if union else 1.0

    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.two_sided(threshold),
        implementation=implementation,
        similarity=similarity_udf(
            "JR", resemblance, "overlap", "norm_r", "norm_s", metrics=metrics
        ),
        keep=col("similarity") + 1e-9 >= threshold,
    )
    relation, result = run_join_plan(plan, node, metrics=metrics, workers=workers)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=threshold,
            self_join=self_join,
            symmetric=True,
            default=0.0,
        )
