"""Jaccard containment and resemblance joins (paper Section 3.2, Figure 4).

Containment translates *exactly* into a 1-sided normalized SSJoin —
"this translation does not require a post-processing step". Resemblance
uses ``JR ≥ α ⇒ JC(r, s) ≥ α ∧ JC(s, r) ≥ α`` (since JC ⩾ JR in both
directions), i.e. the 2-sided predicate, plus a resemblance check computable
directly from the SSJoin output columns (overlap and both norms) — no
re-tokenization needed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.errors import PredicateError
from repro.joins.base import MatchPair, SimilarityJoinResult, canonical_self_pairs
from repro.tokenize.weights import IDFWeights, WeightTable
from repro.tokenize.words import words

__all__ = ["jaccard_containment_join", "jaccard_resemblance_join", "resolve_weights"]

Tokenizer = Callable[[str], Sequence[Any]]


def resolve_weights(
    weights: Union[str, WeightTable, None],
    tokenizer: Tokenizer,
    left: Sequence[str],
    right: Sequence[str],
) -> Optional[WeightTable]:
    """Resolve the weights argument shared by the token-based joins.

    ``"idf"`` fits the paper's IDF formula over both sides; ``None`` gives
    unit weights; a :class:`WeightTable` is used as-is.
    """
    if weights is None:
        return None
    if isinstance(weights, WeightTable):
        return weights
    if weights == "idf":
        return IDFWeights.fit_two(
            (tokenizer(v) for v in left), (tokenizer(v) for v in right)
        )
    raise PredicateError(f"unknown weights spec {weights!r}; expected 'idf', None, or a table")


def _check_threshold(threshold: float) -> None:
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")


def jaccard_containment_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    tokenizer: Tokenizer = words,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """Pairs with ``JC(Set(l), Set(r)) ≥ threshold`` (Definition 5.1).

    Containment is asymmetric, so a self-join keeps both directions of
    every non-identity pair. The SSJoin predicate is exact; the reported
    similarity is ``overlap / norm_r`` read off the operator output.
    """
    _check_threshold(threshold)
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, left, right_values)
        pl = PreparedRelation.from_strings(
            left, tokenizer, weights=table, norm=NORM_WEIGHT, name="R"
        )
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, tokenizer, weights=table, norm=NORM_WEIGHT, name="S"
            )
        )

    predicate = OverlapPredicate.one_sided(threshold, side="left")
    result = SSJoin(pl, pr, predicate).execute(
        implementation, metrics=metrics, workers=workers
    )

    with metrics.phase(PHASE_FILTER):
        pos = result.pairs.schema.positions(["a_r", "a_s", "overlap", "norm_r"])
        scored: List[Tuple[Tuple[str, str], float]] = []
        for row in result.pairs.rows:
            a, b, overlap, norm_r = (row[p] for p in pos)
            if self_join and a == b:
                continue
            similarity = overlap / norm_r if norm_r else 1.0
            scored.append(((a, b), similarity))

    matches = [MatchPair(p[0], p[1], sim) for p, sim in sorted(scored, key=lambda x: repr(x[0]))]
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=result.implementation,
        threshold=threshold,
    )


def jaccard_resemblance_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    tokenizer: Tokenizer = words,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """Pairs with ``JR(Set(l), Set(r)) ≥ threshold`` (Definition 5.2).

    Figure 4 right panel: the 2-sided containment SSJoin produces the
    candidates; the resemblance filter
    ``overlap / (norm_r + norm_s − overlap) ≥ θ`` runs on the operator
    output columns.
    """
    _check_threshold(threshold)
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, left, right_values)
        pl = PreparedRelation.from_strings(
            left, tokenizer, weights=table, norm=NORM_WEIGHT, name="R"
        )
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, tokenizer, weights=table, norm=NORM_WEIGHT, name="S"
            )
        )

    predicate = OverlapPredicate.two_sided(threshold)
    result = SSJoin(pl, pr, predicate).execute(
        implementation, metrics=metrics, workers=workers
    )

    with metrics.phase(PHASE_FILTER):
        pos = result.pairs.schema.positions(
            ["a_r", "a_s", "overlap", "norm_r", "norm_s"]
        )
        accepted: List[Tuple[Tuple[str, str], float]] = []
        for row in result.pairs.rows:
            a, b, overlap, norm_r, norm_s = (row[p] for p in pos)
            metrics.similarity_comparisons += 1
            union = norm_r + norm_s - overlap
            resemblance = overlap / union if union else 1.0
            if resemblance + 1e-9 >= threshold:
                accepted.append(((a, b), resemblance))

    raw = [p for p, _ in accepted]
    sims = dict(zip(raw, (s for _, s in accepted)))
    final = canonical_self_pairs(raw, symmetric=True) if self_join else sorted(
        set(raw), key=repr
    )
    matches = [MatchPair(a, b, sims.get((a, b), sims.get((b, a), 0.0))) for a, b in final]
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=result.implementation,
        threshold=threshold,
    )
