"""The raw overlap join — the paper's Example 1 as a one-call API.

The most direct use of SSJoin: join strings whenever their token sets
share at least *alpha* weight. This is the predicate every other join is
reduced to; exposing it directly completes the join layer and gives users
a way to express custom notions ("at least 3 shared rare words") without
touching the operator API.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
)
from repro.joins.jaccard_join import resolve_weights
from repro.relational.expressions import col
from repro.tokenize.weights import WeightTable
from repro.tokenize.words import words

__all__ = ["overlap_join"]


def overlap_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    alpha: float = 2.0,
    tokenizer: Callable[[str], Sequence[Any]] = words,
    weights: Union[str, WeightTable, None] = None,
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Pairs whose token multisets overlap by at least weight *alpha*.

    The reported similarity is the raw overlap weight (not normalized), so
    unlike the other joins it is not confined to [0, 1].

    >>> res = overlap_join(["a b c", "a b x", "p q"], alpha=2.0)
    >>> res.pair_set()
    {('a b c', 'a b x')}
    """
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, left, right_values)
        pl = PreparedRelation.from_strings(
            left, tokenizer, weights=table, norm=NORM_WEIGHT, name="R"
        )
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(
                right_values, tokenizer, weights=table, norm=NORM_WEIGHT, name="S"
            )
        )

    # The predicate *is* the similarity notion here: report the operator's
    # own overlap column as the score.
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.absolute(alpha),
        implementation=implementation,
        similarity=col("overlap"),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=alpha,
            self_join=self_join,
            symmetric=True,
            default=0.0,
        )
