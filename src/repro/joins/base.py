"""Shared result types and helpers for similarity joins.

Every similarity join in this package follows the Figure 2 template:

1. map strings/records to prepared set relations,
2. run the SSJoin operator with a predicate guaranteeing a candidate
   superset,
3. apply the exact similarity function as a post-filter (when the SSJoin
   predicate is not already exact).

They all return a :class:`SimilarityJoinResult` carrying the matched pairs
with their exact similarity scores plus the :class:`ExecutionMetrics` of the
run, so benchmarks can report the paper's phase breakdowns and comparison
counts uniformly.

Degenerate inputs: a string that tokenizes to the *empty set* never joins
with anything — an empty group shares no element with any other group, so
no equi-join (or index probe) can observe the pair. This is the operator's
semantics, applied uniformly by all four physical implementations; the raw
similarity functions may still assign such pairs a nonzero score (e.g.
``JR(∅, ∅) = 1`` by convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import ExecutionMetrics
from repro.core.physical import SSJoinResult
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.relational.context import ExecutionContext
from repro.relational.expressions import Expr, FunctionCall, col
from repro.relational.plan import (
    Extend,
    PlanNode,
    PreparedInput,
    Project,
    Select,
    SSJoinNode,
)
from repro.relational.relation import Relation

__all__ = [
    "MatchPair",
    "SimilarityJoinResult",
    "canonical_self_pairs",
    "similarity_udf",
    "compose_join_plan",
    "run_join_plan",
    "finalize_matches",
]


@dataclass(frozen=True)
class MatchPair:
    """One matched pair with its exact similarity score."""

    left: Any
    right: Any
    similarity: float

    def as_tuple(self) -> Tuple[Any, Any]:
        return (self.left, self.right)


@dataclass
class SimilarityJoinResult:
    """Pairs surviving the exact similarity check, plus run telemetry."""

    pairs: List[MatchPair]
    metrics: ExecutionMetrics
    implementation: str
    threshold: float

    def pair_set(self) -> set:
        return {p.as_tuple() for p in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def top(self, n: int = 10) -> List[MatchPair]:
        """The *n* highest-similarity pairs."""
        return sorted(self.pairs, key=lambda p: (-p.similarity, repr(p.as_tuple())))[:n]


def similarity_udf(
    name: str,
    fn: Callable[..., Any],
    *columns: str,
    metrics: Optional[ExecutionMetrics] = None,
) -> FunctionCall:
    """Wrap a per-pair UDF as a scalar expression over result columns.

    With *metrics*, every evaluation counts as one similarity comparison —
    the accounting the hand-rolled post-filter loops used to do inline.
    """
    if metrics is None:
        return FunctionCall(name, fn, tuple(col(c) for c in columns))

    def counted(*args: Any) -> Any:
        metrics.similarity_comparisons += 1
        return fn(*args)

    return FunctionCall(name, counted, tuple(col(c) for c in columns))


def compose_join_plan(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    implementation: str = "auto",
    drop_identity: bool = False,
    similarity: Optional[Expr] = None,
    keep: Optional[Expr] = None,
    project: Sequence[str] = ("a_r", "a_s", "similarity"),
) -> Tuple[PlanNode, SSJoinNode]:
    """Compose the Figure 2 operator tree for one similarity join.

    ``SSJoin → σ(a_r ≠ a_s) → π̂(similarity := ...) → σ(keep) → π`` — the
    exact-similarity post-filter of each join expressed as plan operators
    over the SSJoin output columns instead of a hand-rolled row loop.
    Returns the plan root plus the :class:`SSJoinNode` (whose
    ``last_result`` carries the chosen implementation after execution).
    """
    left_leaf = PreparedInput(left)
    right_leaf = left_leaf if right is left else PreparedInput(right)
    node = SSJoinNode(left_leaf, right_leaf, predicate, implementation=implementation)
    plan: PlanNode = node
    if drop_identity:
        plan = Select(plan, col("a_r").ne(col("a_s")))
    if similarity is not None:
        plan = Extend(plan, "similarity", similarity)
    if keep is not None:
        plan = Select(plan, keep)
    if project:
        plan = Project(plan, list(project))
    return plan, node


def run_join_plan(
    plan: PlanNode,
    node: SSJoinNode,
    metrics: Optional[ExecutionMetrics] = None,
    workers: Optional[Union[int, str]] = None,
) -> Tuple[Relation, SSJoinResult]:
    """Execute a composed join plan under one :class:`ExecutionContext`."""
    relation = plan.execute(ExecutionContext(metrics=metrics, workers=workers))
    result = node.last_result
    assert result is not None  # the plan contains node, so it has run
    return relation, result


def finalize_matches(
    rows: Iterable[Tuple[Any, Any, float]],
    metrics: ExecutionMetrics,
    implementation: str,
    threshold: float,
    self_join: bool,
    symmetric: bool,
    default: float = 1.0,
    sort: bool = False,
) -> SimilarityJoinResult:
    """Canonicalize scored ``(left, right, similarity)`` rows into a result.

    Symmetric self-joins keep each unordered pair once; asymmetric (or
    two-relation) joins keep every surviving direction. With *sort* the
    final pair list is put in deterministic repr order; otherwise the
    canonical first-seen order is kept.
    """
    rows = list(rows)
    raw = [(a, b) for a, b, _ in rows]
    scored = {(a, b): s for a, b, s in rows}
    if self_join:
        final = canonical_self_pairs(raw, symmetric=symmetric)
    else:
        final = sorted(set(raw), key=repr)
    if sort:
        final = sorted(final, key=repr)
    matches = [
        MatchPair(a, b, scored.get((a, b), scored.get((b, a), default)))
        for a, b in final
    ]
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=implementation,
        threshold=threshold,
    )


def canonical_self_pairs(
    pairs: Iterable[Tuple[Any, Any]], symmetric: bool
) -> List[Tuple[Any, Any]]:
    """Normalize self-join output.

    Identity pairs (a, a) are always dropped. For a *symmetric* similarity
    function each unordered pair is kept once (left < right by repr); for an
    asymmetric one (containment, GES) both directions are kept.
    """
    out: List[Tuple[Any, Any]] = []
    seen = set()
    for a, b in pairs:
        if a == b:
            continue
        if symmetric:
            key = (a, b) if repr(a) <= repr(b) else (b, a)
            if key in seen:
                continue
            seen.add(key)
            out.append(key)
        else:
            out.append((a, b))
    return out
