"""Shared result types and helpers for similarity joins.

Every similarity join in this package follows the Figure 2 template:

1. map strings/records to prepared set relations,
2. run the SSJoin operator with a predicate guaranteeing a candidate
   superset,
3. apply the exact similarity function as a post-filter (when the SSJoin
   predicate is not already exact).

They all return a :class:`SimilarityJoinResult` carrying the matched pairs
with their exact similarity scores plus the :class:`ExecutionMetrics` of the
run, so benchmarks can report the paper's phase breakdowns and comparison
counts uniformly.

Degenerate inputs: a string that tokenizes to the *empty set* never joins
with anything — an empty group shares no element with any other group, so
no equi-join (or index probe) can observe the pair. This is the operator's
semantics, applied uniformly by all four physical implementations; the raw
similarity functions may still assign such pairs a nonzero score (e.g.
``JR(∅, ∅) = 1`` by convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Tuple

from repro.core.metrics import ExecutionMetrics

__all__ = ["MatchPair", "SimilarityJoinResult", "canonical_self_pairs"]


@dataclass(frozen=True)
class MatchPair:
    """One matched pair with its exact similarity score."""

    left: Any
    right: Any
    similarity: float

    def as_tuple(self) -> Tuple[Any, Any]:
        return (self.left, self.right)


@dataclass
class SimilarityJoinResult:
    """Pairs surviving the exact similarity check, plus run telemetry."""

    pairs: List[MatchPair]
    metrics: ExecutionMetrics
    implementation: str
    threshold: float

    def pair_set(self) -> set:
        return {p.as_tuple() for p in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def top(self, n: int = 10) -> List[MatchPair]:
        """The *n* highest-similarity pairs."""
        return sorted(self.pairs, key=lambda p: (-p.similarity, repr(p.as_tuple())))[:n]


def canonical_self_pairs(
    pairs: Iterable[Tuple[Any, Any]], symmetric: bool
) -> List[Tuple[Any, Any]]:
    """Normalize self-join output.

    Identity pairs (a, a) are always dropped. For a *symmetric* similarity
    function each unordered pair is kept once (left < right by repr); for an
    asymmetric one (containment, GES) both directions are kept.
    """
    out: List[Tuple[Any, Any]] = []
    seen = set()
    for a, b in pairs:
        if a == b:
            continue
        if symmetric:
            key = (a, b) if repr(a) <= repr(b) else (b, a)
            if key in seen:
                continue
            seen.add(key)
            out.append(key)
        else:
            out.append((a, b))
    return out
