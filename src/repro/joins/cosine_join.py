"""Cosine similarity join via SSJoin.

Cosine similarity is among the functions the paper's introduction names
(custom join algorithms for it existed: Gravano et al. [8], Cohen [6]);
like the others it reduces to a thresholded overlap predicate.

Reduction (distinct-token sets, token weight ``w_t``): give each element
the weight ``w_t²``. Then the prepared norm is ``‖u‖² = Σ w_t²`` and the
SSJoin overlap equals the dot product ``Σ_{shared} w_t²``, so

    cos(u, v) = overlap / sqrt(norm_r · norm_s).

Soundness of the 2-sided filter: ``overlap ≤ min(norm_r, norm_s)`` gives
``θ ≤ cos ≤ sqrt(norm_s / norm_r)``, hence ``norm_s ≥ θ²·norm_r`` (and
symmetrically), so ``overlap ≥ θ·sqrt(norm_r·norm_s) ≥ θ²·max(norms)`` —
the paper's 2-sided normalized predicate with fraction θ². The exact
cosine is then computed from the operator's output columns alone; no
re-tokenization, no UDF over raw strings.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Sequence, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
    similarity_udf,
)
from repro.joins.jaccard_join import resolve_weights
from repro.relational.expressions import col
from repro.tokenize.sets import WeightedSet
from repro.tokenize.weights import UnitWeights, WeightTable
from repro.tokenize.words import words

__all__ = ["cosine_join"]

Tokenizer = Callable[[str], Sequence[Any]]


def _prepare_squared(
    values: Sequence[str],
    tokenizer: Tokenizer,
    table: WeightTable,
    name: str,
) -> PreparedRelation:
    """Distinct-token sets with squared weights (see module docstring)."""
    groups: Dict[str, WeightedSet] = {}
    for value in dict.fromkeys(values):
        tokens = list(dict.fromkeys(tokenizer(value)))
        groups[value] = WeightedSet({t: table.weight(t) ** 2 for t in tokens})
    return PreparedRelation.from_sets(groups, name=name)


def cosine_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    tokenizer: Tokenizer = words,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """Pairs whose binary (set-of-tokens) cosine similarity is ⩾ *threshold*.

    Token vectors are binary-with-weights: component ``w_t`` for each
    distinct token the string contains (term frequency is deliberately not
    modeled — set semantics, like the rest of the operator).

    >>> res = cosine_join(["a b c", "a b d", "x y"], threshold=0.6, weights=None)
    >>> res.pair_set()
    {('a b c', 'a b d')}
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, tokenizer, left, right_values) or UnitWeights()
        pl = _prepare_squared(left, tokenizer, table, "R")
        pr = pl if self_join else _prepare_squared(right_values, tokenizer, table, "S")

    # cos(u, v) = overlap / sqrt(norm_r·norm_s) over the squared-weight
    # preparation (module docstring); exactness comes from the Select.
    def cosine(overlap: float, norm_r: float, norm_s: float) -> float:
        denominator = math.sqrt(norm_r * norm_s)
        return overlap / denominator if denominator else 1.0

    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.two_sided(threshold * threshold),
        implementation=implementation,
        similarity=similarity_udf(
            "COS", cosine, "overlap", "norm_r", "norm_s", metrics=metrics
        ),
        keep=col("similarity") + 1e-9 >= threshold,
    )
    relation, result = run_join_plan(plan, node, metrics=metrics, workers=workers)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=threshold,
            self_join=self_join,
            symmetric=True,
        )
