"""Co-occurrence joins (paper Section 3.4, Example 5, Figure 5).

Beyond textual similarity: two author names from different sources likely
denote the same author when the *sets of paper titles co-occurring with
them* overlap heavily, regardless of how the names are spelled. The
operator tree of Figure 5 is Jaccard containment over the co-occurrence
sets — a direct SSJoin with a 1-sided normalized predicate, no post-filter.

Input is relational, as in the paper: ``(entity, context)`` pairs, e.g.
``(aname, ptitle)`` rows.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
    similarity_udf,
)
from repro.tokenize.weights import IDFWeights, WeightTable

__all__ = ["cooccurrence_join"]

Pairs = Sequence[Tuple[Any, Any]]


def _fit_idf(left: Pairs, right: Pairs) -> IDFWeights:
    """IDF over contexts: a context shared by many entities weighs little."""
    def docs(pairs: Pairs):
        by_entity = {}
        for entity, context in pairs:
            by_entity.setdefault(entity, []).append(context)
        return by_entity.values()

    return IDFWeights.fit_two(docs(left), docs(right))


def cooccurrence_join(
    left: Pairs,
    right: Optional[Pairs] = None,
    threshold: float = 0.7,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Entity pairs whose co-occurrence sets have JC ⩾ *threshold*.

    Parameters
    ----------
    left, right:
        ``(entity, context)`` tuples; *right=None* self-joins *left*
        (identity pairs dropped, both directions kept — containment is
        asymmetric).
    threshold:
        Jaccard-containment threshold on the left entity's context set.

    >>> r = [("a. gupta", "paper1"), ("a. gupta", "paper2")]
    >>> s = [("anil gupta", "paper1"), ("anil gupta", "paper2"), ("bob", "paper9")]
    >>> cooccurrence_join(r, s, threshold=0.9, weights=None).pair_set()
    {('a. gupta', 'anil gupta')}
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    self_join = right is None
    right_pairs = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        if weights == "idf":
            table: Optional[WeightTable] = _fit_idf(left, right_pairs)
        elif weights is None or isinstance(weights, WeightTable):
            table = weights
        else:
            raise PredicateError(f"unknown weights spec {weights!r}")
        pl = PreparedRelation.from_pairs(left, weights=table, name="R")
        pr = pl if self_join else PreparedRelation.from_pairs(
            right_pairs, weights=table, name="S"
        )

    # Figure 5: Jaccard containment over co-occurrence sets — the 1-sided
    # predicate is exact, no Select stage.
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.one_sided(threshold, side="left"),
        implementation=implementation,
        drop_identity=self_join,
        similarity=similarity_udf(
            "JC", lambda overlap, norm: overlap / norm if norm else 1.0,
            "overlap", "norm_r",
        ),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=threshold,
            self_join=self_join,
            symmetric=False,
            sort=True,
        )
