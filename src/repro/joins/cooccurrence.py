"""Co-occurrence joins (paper Section 3.4, Example 5, Figure 5).

Beyond textual similarity: two author names from different sources likely
denote the same author when the *sets of paper titles co-occurring with
them* overlap heavily, regardless of how the names are spelled. The
operator tree of Figure 5 is Jaccard containment over the co-occurrence
sets — a direct SSJoin with a 1-sided normalized predicate, no post-filter.

Input is relational, as in the paper: ``(entity, context)`` pairs, e.g.
``(aname, ptitle)`` rows.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.errors import PredicateError
from repro.joins.base import MatchPair, SimilarityJoinResult
from repro.tokenize.weights import IDFWeights, WeightTable

__all__ = ["cooccurrence_join"]

Pairs = Sequence[Tuple[Any, Any]]


def _fit_idf(left: Pairs, right: Pairs) -> IDFWeights:
    """IDF over contexts: a context shared by many entities weighs little."""
    def docs(pairs: Pairs):
        by_entity = {}
        for entity, context in pairs:
            by_entity.setdefault(entity, []).append(context)
        return by_entity.values()

    return IDFWeights.fit_two(docs(left), docs(right))


def cooccurrence_join(
    left: Pairs,
    right: Optional[Pairs] = None,
    threshold: float = 0.7,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Entity pairs whose co-occurrence sets have JC ⩾ *threshold*.

    Parameters
    ----------
    left, right:
        ``(entity, context)`` tuples; *right=None* self-joins *left*
        (identity pairs dropped, both directions kept — containment is
        asymmetric).
    threshold:
        Jaccard-containment threshold on the left entity's context set.

    >>> r = [("a. gupta", "paper1"), ("a. gupta", "paper2")]
    >>> s = [("anil gupta", "paper1"), ("anil gupta", "paper2"), ("bob", "paper9")]
    >>> cooccurrence_join(r, s, threshold=0.9, weights=None).pair_set()
    {('a. gupta', 'anil gupta')}
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    self_join = right is None
    right_pairs = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        if weights == "idf":
            table: Optional[WeightTable] = _fit_idf(left, right_pairs)
        elif weights is None or isinstance(weights, WeightTable):
            table = weights
        else:
            raise PredicateError(f"unknown weights spec {weights!r}")
        pl = PreparedRelation.from_pairs(left, weights=table, name="R")
        pr = pl if self_join else PreparedRelation.from_pairs(
            right_pairs, weights=table, name="S"
        )

    predicate = OverlapPredicate.one_sided(threshold, side="left")
    result = SSJoin(pl, pr, predicate).execute(implementation, metrics=metrics)

    matches: List[MatchPair] = []
    with metrics.phase(PHASE_FILTER):
        pos = result.pairs.schema.positions(["a_r", "a_s", "overlap", "norm_r"])
        for row in result.pairs.rows:
            a, b, overlap, norm_r = (row[p] for p in pos)
            if self_join and a == b:
                continue
            matches.append(MatchPair(a, b, overlap / norm_r if norm_r else 1.0))

    matches.sort(key=lambda p: repr(p.as_tuple()))
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=result.implementation,
        threshold=threshold,
    )
