"""Soundex join — phonetic matching of person names as a degenerate SSJoin.

Section 1 lists "the soundex function for matching person names" among the
notions a cleaning platform must support. Soundex equality is expressible
as the smallest possible SSJoin: each name's set is the singleton
``{soundex(name)}`` and the predicate is ``Overlap ≥ 1`` — two names join
iff their codes are equal. This exercises the operator's degenerate corner
(singleton sets, absolute predicate) and shows non-string-distance notions
riding the same primitive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
)
from repro.relational.expressions import const
from repro.tokenize.soundex import soundex

__all__ = ["soundex_join"]


def _code_set(name: str) -> List[str]:
    code = soundex(name)
    return [code] if code else []


def soundex_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Name pairs whose soundex codes are equal.

    >>> sorted(soundex_join(["Robert", "Rupert", "Ashcraft"]).pair_set())
    [('Robert', 'Rupert')]
    """
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        pl = PreparedRelation.from_strings(left, _code_set, name="R")
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(right_values, _code_set, name="S")
        )

    # Code equality is exact: matched pairs all score 1.0.
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.absolute(1.0),
        implementation=implementation,
        similarity=const(1.0),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=1.0,
            self_join=self_join,
            symmetric=True,
        )
