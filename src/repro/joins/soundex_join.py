"""Soundex join — phonetic matching of person names as a degenerate SSJoin.

Section 1 lists "the soundex function for matching person names" among the
notions a cleaning platform must support. Soundex equality is expressible
as the smallest possible SSJoin: each name's set is the singleton
``{soundex(name)}`` and the predicate is ``Overlap ≥ 1`` — two names join
iff their codes are equal. This exercises the operator's degenerate corner
(singleton sets, absolute predicate) and shows non-string-distance notions
riding the same primitive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.joins.base import MatchPair, SimilarityJoinResult, canonical_self_pairs
from repro.tokenize.soundex import soundex

__all__ = ["soundex_join"]


def _code_set(name: str) -> List[str]:
    code = soundex(name)
    return [code] if code else []


def soundex_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    implementation: str = "auto",
) -> SimilarityJoinResult:
    """Name pairs whose soundex codes are equal.

    >>> sorted(soundex_join(["Robert", "Rupert", "Ashcraft"]).pair_set())
    [('Robert', 'Rupert')]
    """
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        pl = PreparedRelation.from_strings(left, _code_set, name="R")
        pr = (
            pl
            if self_join
            else PreparedRelation.from_strings(right_values, _code_set, name="S")
        )

    result = SSJoin(pl, pr, OverlapPredicate.absolute(1.0)).execute(
        implementation, metrics=metrics
    )

    with metrics.phase(PHASE_FILTER):
        raw: List[Tuple[str, str]] = result.pair_tuples()

    final = canonical_self_pairs(raw, symmetric=True) if self_join else sorted(
        set(raw), key=repr
    )
    matches = [MatchPair(a, b, 1.0) for a, b in final]
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=result.implementation,
        threshold=1.0,
    )
