"""Generalized edit similarity join via set expansion (paper Section 3.3).

The reduction sketched in Example 4: expand each R-side token set with all
dictionary tokens whose (token-level) edit similarity with a member token
is at least β (< α). If ``GES(σ1, σ2) ≥ α`` then the expanded set of σ1
overlaps ``Set(σ2)`` substantially, so an SSJoin over the expanded sets is
a candidate filter, and the exact GES UDF verifies candidates.

The quantitative bound implemented (the paper omits its own "intricate
details"): in any optimal transformation, a source token that is deleted or
replaced by a token farther than β costs at least ``(1 − β)·wt(t)``, so the
weight of such tokens is at most ``(1 − α)·wt(σ1)/(1 − β)``; the remaining
("near") tokens have a β-close partner in ``Set(σ2)``, which by
construction lies in the expanded set. Expanded elements carry their
*source* token's weight, so the SSJoin overlap (summed in R-side weights)
is at least ``(1 − (1 − α)/(1 − β))·wt(σ1)`` — a 1-sided normalized
predicate. Token-set semantics make the bound heuristic in the rare case
that two distinct near tokens share their closest σ2 partner; the exact UDF
keeps the final answer sound, and the test suite checks completeness
against the brute-force oracle on realistic corpora.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    SimilarityJoinResult,
    compose_join_plan,
    finalize_matches,
    run_join_plan,
    similarity_udf,
)
from repro.joins.jaccard_join import resolve_weights
from repro.relational.expressions import col
from repro.sim.edit import edit_distance_within
from repro.sim.ges import ges
from repro.tokenize.sets import WeightedSet
from repro.tokenize.weights import UnitWeights, WeightTable
from repro.tokenize.words import word_set, words

__all__ = ["expand_tokens", "ges_join"]


def expand_tokens(
    tokens: Sequence[str],
    dictionary: Sequence[str],
    beta: float,
) -> Dict[str, str]:
    """Map each β-close dictionary token to a closest source token.

    Returns ``{dictionary_token: source_token}`` for every dictionary token
    whose edit similarity with some source token is ⩾ β (source tokens map
    to themselves). A length-difference filter and the banded edit DP keep
    this cheap.
    """
    out: Dict[str, str] = {t: t for t in tokens}
    for candidate in dictionary:
        if candidate in out:
            continue
        clen = len(candidate)
        for t in tokens:
            longest = max(clen, len(t))
            budget = int((1.0 - beta) * longest + 1e-9)
            if abs(clen - len(t)) > budget:
                continue
            if edit_distance_within(candidate, t, budget) is not None:
                out[candidate] = t
                break
    return out


def ges_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    beta: Optional[float] = None,
    weights: Union[str, WeightTable, None] = "idf",
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """Pairs with ``GES(l, r) ≥ threshold`` (Definition 6; asymmetric).

    Parameters
    ----------
    beta:
        Token expansion similarity threshold, strictly below *threshold*
        (the paper's β < α). Defaults to ``2·threshold − 1`` clamped to
        [0.5, threshold − 0.05], balancing expansion size against filter
        strength.
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    if beta is None:
        beta = min(max(2.0 * threshold - 1.0, 0.5), threshold - 0.05)
    if not 0.0 < beta < threshold:
        raise PredicateError(f"beta must satisfy 0 < beta < threshold, got beta={beta}")

    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    with metrics.phase(PHASE_PREP):
        table = resolve_weights(weights, words, left, right_values) or UnitWeights()

        left_tokens = {v: word_set(v) for v in dict.fromkeys(left)}
        right_tokens = (
            left_tokens
            if self_join
            else {v: word_set(v) for v in dict.fromkeys(right_values)}
        )
        dictionary = sorted(
            {t for toks in right_tokens.values() for t in toks}
        )

        # Expanded R-side groups: dictionary tokens β-close to a member,
        # carrying the member's weight (kept maximal on collision so the
        # filter never undercounts a legitimate match).
        left_groups: Dict[str, WeightedSet] = {}
        left_norms: Dict[str, float] = {}
        for value, tokens in left_tokens.items():
            expansion = expand_tokens(tokens, dictionary, beta)
            weights_map: Dict[str, float] = {}
            for expanded, source in expansion.items():
                w = table.weight(source)
                if weights_map.get(expanded, 0.0) < w:
                    weights_map[expanded] = w
            left_groups[value] = (
                WeightedSet(weights_map) if weights_map else WeightedSet({})
            )
            # The norm stays wt(Set(σ1)) — the *unexpanded* weight — since
            # that is what both GES and the derived bound normalize by.
            left_norms[value] = sum(table.weight(t) for t in tokens)

        pl = PreparedRelation.from_sets(left_groups, left_norms, name="R-expanded")
        right_groups = {
            value: WeightedSet({t: table.weight(t) for t in tokens})
            for value, tokens in right_tokens.items()
        }
        pr = PreparedRelation.from_sets(right_groups, name="S")

    fraction = 1.0 - (1.0 - threshold) / (1.0 - beta)
    if fraction <= 0.0:
        raise PredicateError(
            f"derived filter fraction is non-positive (threshold={threshold}, "
            f"beta={beta}); raise beta or threshold"
        )
    # Figure 3 shape: SSJoin over the expanded sets is only a candidate
    # filter; the exact GES UDF runs as the plan's similarity stage (after
    # the identity drop, so comparison counts match the old loop).
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate.one_sided(fraction, side="left"),
        implementation=implementation,
        drop_identity=self_join,
        similarity=similarity_udf(
            "GES", lambda a, b: ges(a, b, weights=table), "a_r", "a_s",
            metrics=metrics,
        ),
        keep=col("similarity") + 1e-9 >= threshold,
    )
    relation, result = run_join_plan(plan, node, metrics=metrics, workers=workers)

    with metrics.phase(PHASE_FILTER):
        return finalize_matches(
            relation.rows,
            metrics=metrics,
            implementation=result.implementation,
            threshold=threshold,
            self_join=self_join,
            symmetric=False,
            sort=True,
        )
