"""Edit-distance / edit-similarity joins via SSJoin (paper Section 3.1).

The reduction is Property 4 (from Gravano et al. [9]): strings within edit
distance ε share at least ``max(|σ1|, |σ2|) − q + 1 − ε·q`` q-grams. With
the prepared relations carrying string *length* as the norm, that is the
SSJoin predicate ``Overlap ≥ max(norm_r, norm_s) − (q − 1) − ε·q`` — a
:class:`~repro.core.predicate.MaxNormBound`. Candidates are then verified
with the exact (banded, early-exit) edit-distance UDF, per Figure 3.

Degenerate pairs — both strings so short that the bound is non-positive —
cannot be found by any equi-join (they may share no q-gram at all), so they
are verified by brute force among the short strings only. This mirrors how
the customized algorithm of [9] special-cases short strings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.metrics import PHASE_FILTER, PHASE_PREP, ExecutionMetrics
from repro.core.predicate import MaxNormBound, OverlapPredicate
from repro.core.prepared import NORM_LENGTH, PreparedRelation
from repro.errors import PredicateError
from repro.joins.base import (
    MatchPair,
    SimilarityJoinResult,
    canonical_self_pairs,
    compose_join_plan,
    run_join_plan,
    similarity_udf,
)
from repro.sim.edit import edit_distance_within, edit_similarity
from repro.tokenize.qgrams import qgrams

__all__ = ["edit_distance_join", "edit_similarity_join"]


def _prepare(
    values: Sequence[str], q: int, name: str
) -> PreparedRelation:
    return PreparedRelation.from_strings(
        values, lambda s: qgrams(s, q), norm=NORM_LENGTH, name=name
    )


def _short_string_pairs(
    left_short: Sequence[str],
    right_short: Sequence[str],
    budget_fn,
    metrics: ExecutionMetrics,
) -> List[Tuple[str, str]]:
    """Brute-force verification among degenerate (short) strings."""
    out: List[Tuple[str, str]] = []
    for a in left_short:
        for b in right_short:
            metrics.similarity_comparisons += 1
            if edit_distance_within(a, b, budget_fn(a, b)) is not None:
                out.append((a, b))
    return out


def edit_distance_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    epsilon: int = 1,
    q: int = 3,
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """All pairs within edit distance *epsilon* (the form addressed in [9]).

    *right=None* performs a self-join of *left* returning each unordered
    pair once, identity pairs excluded.

    >>> res = edit_distance_join(["microsoft", "mcrosoft", "oracle"], epsilon=1)
    >>> res.pair_set()
    {('mcrosoft', 'microsoft')}
    """
    if epsilon < 0:
        raise PredicateError(f"epsilon must be non-negative, got {epsilon}")
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    # Bound: Overlap >= max(len) - (q-1) - eps*q; degenerate when
    # max(len) <= (q-1) + eps*q.
    offset = float(1 - q - epsilon * q)
    cutoff = (q - 1) + epsilon * q

    with metrics.phase(PHASE_PREP):
        pl = _prepare(left, q, "R")
        pr = pl if self_join else _prepare(right_values, q, "S")
        left_short = [v for v in pl.keys() if len(v) <= cutoff]
        right_short = [v for v in pr.keys() if len(v) <= cutoff]

    # Figure 3: q-gram SSJoin candidates, verified by the exact banded
    # edit-distance UDF as the plan's Select stage.
    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate([MaxNormBound(1.0, offset)]),
        implementation=implementation,
        keep=similarity_udf(
            "ED_WITHIN",
            lambda a, b: edit_distance_within(a, b, epsilon) is not None,
            "a_r", "a_s",
            metrics=metrics,
        ),
        project=("a_r", "a_s"),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics, workers=workers)

    with metrics.phase(PHASE_FILTER):
        pairs: List[Tuple[str, str]] = list(relation.rows)
        pairs.extend(
            _short_string_pairs(
                left_short, right_short, lambda a, b: epsilon, metrics
            )
        )

    final = canonical_self_pairs(pairs, symmetric=True) if self_join else sorted(
        set(pairs), key=repr
    )
    matches = [MatchPair(a, b, edit_similarity(a, b)) for a, b in final]
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=result.implementation,
        threshold=float(epsilon),
    )


def edit_similarity_join(
    left: Sequence[str],
    right: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    q: int = 3,
    implementation: str = "auto",
    workers: Optional[Union[int, str]] = None,
) -> SimilarityJoinResult:
    """All pairs with edit similarity ⩾ *threshold* (Definition 2).

    ``ES ≥ θ ⇔ ED ≤ (1−θ)·max(len)``; substituting that per-pair ε into
    Property 4 gives the SSJoin bound
    ``Overlap ≥ (1 − q(1−θ))·max(norms) − (q − 1)``. The bound's norm
    fraction must be positive, which requires ``θ > 1 − 1/q`` (e.g.
    θ > 2/3 at q = 3); below that the q-gram filter prunes nothing and the
    caller should use :func:`repro.joins.direct.direct_join` instead.
    """
    if not 0.0 < threshold <= 1.0:
        raise PredicateError(f"threshold must be in (0, 1], got {threshold}")
    fraction = 1.0 - q * (1.0 - threshold)
    if fraction <= 0.0:
        raise PredicateError(
            f"edit-similarity threshold {threshold} is too low for q={q} "
            f"(needs threshold > {1 - 1/q:.3f}); use a smaller q or a direct join"
        )
    self_join = right is None
    right_values = left if self_join else right
    metrics = ExecutionMetrics()

    offset = float(1 - q)
    # Degenerate when fraction*max(len) + offset <= 0.
    cutoff = int((q - 1) / fraction)

    with metrics.phase(PHASE_PREP):
        pl = _prepare(left, q, "R")
        pr = pl if self_join else _prepare(right_values, q, "S")
        left_short = [v for v in pl.keys() if len(v) <= cutoff]
        right_short = [v for v in pr.keys() if len(v) <= cutoff]

    def budget(a: str, b: str) -> int:
        return int((1.0 - threshold) * max(len(a), len(b)) + 1e-9)

    plan, node = compose_join_plan(
        pl,
        pr,
        OverlapPredicate([MaxNormBound(fraction, offset)]),
        implementation=implementation,
        keep=similarity_udf(
            "ED_WITHIN",
            lambda a, b: edit_distance_within(a, b, budget(a, b)) is not None,
            "a_r", "a_s",
            metrics=metrics,
        ),
        project=("a_r", "a_s"),
    )
    relation, result = run_join_plan(plan, node, metrics=metrics, workers=workers)

    with metrics.phase(PHASE_FILTER):
        pairs: List[Tuple[str, str]] = list(relation.rows)
        pairs.extend(_short_string_pairs(left_short, right_short, budget, metrics))

    final = canonical_self_pairs(pairs, symmetric=True) if self_join else sorted(
        set(pairs), key=repr
    )
    matches = [MatchPair(a, b, edit_similarity(a, b)) for a, b in final]
    metrics.result_pairs = len(matches)
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation=result.implementation,
        threshold=threshold,
    )
