"""The UDF-over-cross-product baseline the paper argues against.

"A direct implementation of the UDF within a database system is most likely
to lead to a cross-product where the UDF is evaluated for all pairs of
tuples" (Section 3). This module is that plan, kept honest: a nested-loop
join calling the similarity UDF on every pair. It serves as

* the worst-case baseline for the E7 benchmark, and
* the **correctness oracle** the test suite compares every SSJoin-based
  join against (a filter-then-verify plan must return exactly the oracle's
  answer).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.metrics import PHASE_FILTER, ExecutionMetrics
from repro.joins.base import MatchPair, SimilarityJoinResult

__all__ = ["direct_join"]

SimilarityFn = Callable[[Any, Any], float]


def direct_join(
    left: Sequence[Any],
    right: Optional[Sequence[Any]] = None,
    similarity: SimilarityFn = None,
    threshold: float = 0.8,
    symmetric: bool = True,
) -> SimilarityJoinResult:
    """Evaluate ``similarity`` on every pair; keep those ⩾ *threshold*.

    *right=None* self-joins *left*; with ``symmetric=True`` each unordered
    pair is evaluated and reported once, halving the quadratic work exactly
    the way a careful UDF plan would.

    >>> from repro.sim.edit import edit_similarity
    >>> res = direct_join(["abc", "abd", "xyz"], similarity=edit_similarity,
    ...                   threshold=0.6)
    >>> res.pair_set()
    {('abc', 'abd')}
    """
    if similarity is None:
        raise TypeError("direct_join requires a similarity function")
    metrics = ExecutionMetrics()
    self_join = right is None
    right_values = list(dict.fromkeys(left)) if self_join else list(dict.fromkeys(right))
    left_values = list(dict.fromkeys(left))

    matches: List[MatchPair] = []
    with metrics.phase(PHASE_FILTER):
        if self_join and symmetric:
            for i, a in enumerate(left_values):
                for b in left_values[i + 1 :]:
                    metrics.similarity_comparisons += 1
                    score = similarity(a, b)
                    if score + 1e-9 >= threshold:
                        pair = (a, b) if repr(a) <= repr(b) else (b, a)
                        matches.append(MatchPair(pair[0], pair[1], score))
        else:
            for a in left_values:
                for b in right_values:
                    if self_join and a == b:
                        continue
                    metrics.similarity_comparisons += 1
                    score = similarity(a, b)
                    if score + 1e-9 >= threshold:
                        matches.append(MatchPair(a, b, score))

    matches.sort(key=lambda p: repr(p.as_tuple()))
    metrics.result_pairs = len(matches)
    metrics.implementation = "direct"
    return SimilarityJoinResult(
        pairs=matches,
        metrics=metrics,
        implementation="direct",
        threshold=threshold,
    )
