"""Command-line interface: similarity joins over line-delimited text files.

Usage (also via ``python -m repro``)::

    repro generate --rows 500 --out customers.txt
    repro dedupe --input customers.txt --similarity edit --threshold 0.85
    repro dedupe --input a.txt --right b.txt --similarity jaccard --threshold 0.7
    repro match --queries q.txt --references ref.txt --k 3 --threshold 0.4
    repro explain --input customers.txt --threshold 0.8
    repro sql --table emp=emp.tsv --query 'SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept'
    repro ingest --input customers.txt --out customers.rpsf
    repro tables customers.rpsf
    repro sql --attach c=customers.rpsf --query 'SELECT COUNT(*) AS n FROM c'
    repro bench --plan fig12 --store customers.rpsf --workers 2

Input files hold one string per line; blank lines are ignored. Matches are
written as tab-separated ``left<TAB>right<TAB>similarity`` rows to stdout
or ``--out``.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional, Sequence, Union

from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.cosine_join import cosine_join
from repro.joins.edit_join import edit_similarity_join
from repro.joins.ges_join import ges_join
from repro.joins.jaccard_join import (
    jaccard_containment_join,
    jaccard_resemblance_join,
    resolve_weights,
)
from repro.joins.topk import topk_matches
from repro.tokenize.qgrams import qgrams
from repro.tokenize.words import words

__all__ = ["main", "build_parser"]

_JOINS = {
    "edit": lambda l, r, t, i, w, wk: edit_similarity_join(
        l, r, threshold=t, implementation=i, workers=wk
    ),
    "jaccard": lambda l, r, t, i, w, wk: jaccard_resemblance_join(
        l, r, threshold=t, implementation=i, weights=w, workers=wk
    ),
    "containment": lambda l, r, t, i, w, wk: jaccard_containment_join(
        l, r, threshold=t, implementation=i, weights=w, workers=wk
    ),
    "ges": lambda l, r, t, i, w, wk: ges_join(
        l, r, threshold=t, implementation=i, weights=w, workers=wk
    ),
    "cosine": lambda l, r, t, i, w, wk: cosine_join(
        l, r, threshold=t, implementation=i, weights=w, workers=wk
    ),
}


def _parse_workers(value: str) -> Union[int, str]:
    """argparse type for ``--workers``: an int >= 1 or the string 'auto'."""
    if value == "auto":
        return "auto"
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {n}")
    return n


def _read_lines(path: str) -> List[str]:
    with open(path, encoding="utf-8") as f:
        return [line.rstrip("\n") for line in f if line.strip()]


def _open_out(path: Optional[str]) -> IO[str]:
    return open(path, "w", encoding="utf-8") if path else sys.stdout


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSJoin similarity joins (ICDE 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dedupe = sub.add_parser("dedupe", help="similarity self-join (or R-S join)")
    dedupe.add_argument("--input", required=True, help="file of strings, one per line")
    dedupe.add_argument("--right", help="optional second file (R-S join)")
    dedupe.add_argument("--similarity", choices=sorted(_JOINS), default="jaccard")
    dedupe.add_argument("--threshold", type=float, default=0.8)
    dedupe.add_argument(
        "--implementation",
        choices=["auto", "basic", "prefix", "inline", "probe",
                 "encoded-prefix", "encoded-probe"],
        default="auto",
    )
    dedupe.add_argument("--weights", choices=["idf", "unit"], default="idf")
    dedupe.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        metavar="N|auto",
        help="parallel worker processes: an integer >= 1, or 'auto' to let "
        "the cost model decide (sequential when omitted)",
    )
    dedupe.add_argument("--out", help="output file (default stdout)")
    dedupe.add_argument("--metrics", action="store_true",
                        help="print the execution metrics summary to stderr")

    match = sub.add_parser("match", help="top-K fuzzy lookup against references")
    match.add_argument("--queries", required=True)
    match.add_argument("--references", required=True)
    match.add_argument("--k", type=int, default=3)
    match.add_argument("--threshold", type=float, default=0.5)
    match.add_argument("--out")

    exp = sub.add_parser("explain", help="show the plan the optimizer picks")
    exp.add_argument("--input", required=True)
    exp.add_argument("--threshold", type=float, default=0.8)

    sql = sub.add_parser("sql", help="run a SELECT over TSV files")
    sql.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=FILE.tsv",
        help="register a TSV file (first line = column headers); repeatable",
    )
    sql.add_argument(
        "--attach",
        action="append",
        default=[],
        metavar="NAME=FILE.rpsf",
        help="attach an ingested page file as a lazily-mapped table; "
        "repeatable",
    )
    sql.add_argument("--query", required=True, help="the SELECT statement")
    sql.add_argument("--out", help="output TSV (default stdout)")

    ana = sub.add_parser(
        "analyze",
        help="static analysis: engine self-audit and source lint",
    )
    ana.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="fmt",
    )
    ana.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the source-tree lint (audit the engine invariants only)",
    )
    ana.add_argument(
        "--dataflow",
        action="store_true",
        help="run only the DF3xx dataflow determinism / kernel-purity "
        "audit (plus its seeded-defect corpus gate) over the given paths "
        "or the default hot paths",
    )
    ana.add_argument(
        "paths",
        nargs="*",
        help="extra files/directories to analyze beyond the default hot paths",
    )

    bench = sub.add_parser(
        "bench",
        help="time the vectorized batch plan path against the row path",
    )
    bench.add_argument("--rows", type=int, default=100000,
                       help="synthetic pipeline input rows (default 100000)")
    bench.add_argument(
        "--plan", choices=("pipeline", "aggregate", "fig12"),
        default="pipeline",
        help="'pipeline' times scan/select/extend/project; 'aggregate' "
        "times the GROUP BY + ORDER BY plan over a materialized "
        "SSJoin-result-shaped relation; 'fig12' runs the Fig-12 "
        "threshold sweep from --input (in-memory) or --store (a page "
        "file ingested with `repro ingest`) and prints per-threshold "
        "pair counts, result digests and prep time",
    )
    bench.add_argument(
        "--input", default=None, metavar="FILE",
        help="fig12 only: line-delimited strings, prepared in memory",
    )
    bench.add_argument(
        "--store", default=None, metavar="FILE.rpsf",
        help="fig12 only: run from an ingested page file (zero re-encode)",
    )
    bench.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="N|auto",
        help="fig12 only: parallel worker processes",
    )
    bench.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="morsel capacity for the batch run; omit for the cost-model "
        "default (PARALLEL_TASK/(JOIN_ROW*1%%) rounded to a power of two, "
        "clamped to 1k-16k)",
    )
    bench.add_argument("--repeats", type=int, default=3,
                       help="keep the fastest of K runs per path")

    ing = sub.add_parser(
        "ingest",
        help="encode a string file into a disk-backed columnar page file",
    )
    ing.add_argument("--input", required=True,
                     help="file of strings, one per line")
    ing.add_argument("--out", required=True, metavar="FILE.rpsf",
                     help="destination page file (written atomically)")
    ing.add_argument("--name", default="R",
                     help="relation name stored in the manifest (default R)")

    tab = sub.add_parser(
        "tables", help="describe ingested page files (manifest + stats)"
    )
    tab.add_argument("paths", nargs="+", metavar="FILE.rpsf")

    gen = sub.add_parser("generate", help="write a synthetic customer-address file")
    gen.add_argument("--rows", type=int, default=500)
    gen.add_argument("--seed", type=int, default=20060403)
    gen.add_argument("--duplicates", type=float, default=0.2,
                     help="fraction of rows that are corrupted near-duplicates")
    gen.add_argument("--out", required=True)

    return parser


def _cmd_dedupe(args: argparse.Namespace) -> int:
    left = _read_lines(args.input)
    right = _read_lines(args.right) if args.right else None
    weights = None if args.weights == "unit" else "idf"
    result = _JOINS[args.similarity](
        left, right, args.threshold, args.implementation, weights, args.workers
    )
    out = _open_out(args.out)
    try:
        for pair in result:
            out.write(f"{pair.left}\t{pair.right}\t{pair.similarity:.4f}\n")
    finally:
        if out is not sys.stdout:
            out.close()
    if args.metrics:
        print(result.metrics.summary(), file=sys.stderr)
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    queries = _read_lines(args.queries)
    references = _read_lines(args.references)
    # q-gram tokens so the lookup survives typos *inside* words, which is
    # the point of fuzzy matching; word tokens would miss them entirely.
    matches = topk_matches(
        queries,
        references,
        k=args.k,
        threshold=args.threshold,
        weights="idf",
        tokenizer=lambda s: qgrams(s, 3),
    )
    out = _open_out(args.out)
    try:
        for query in queries:
            for m in matches.get(query, []):
                out.write(f"{query}\t{m.right}\t{m.similarity:.4f}\n")
    finally:
        if out is not sys.stdout:
            out.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.joins.base import compose_join_plan, similarity_udf
    from repro.relational.context import ExecutionContext
    from repro.relational.expressions import col
    from repro.relational.plan import explain

    values = _read_lines(args.input)
    table = resolve_weights("idf", words, values, values)
    prepared = PreparedRelation.from_strings(
        values, words, weights=table, norm=NORM_WEIGHT, name="input"
    )

    # Mirror the plan `dedupe --similarity jaccard` runs: 2-sided SSJoin,
    # identity drop, resemblance score, threshold filter, projection.
    def resemblance(overlap: float, norm_r: float, norm_s: float) -> float:
        union = norm_r + norm_s - overlap
        return overlap / union if union else 1.0

    plan, _ = compose_join_plan(
        prepared,
        prepared,
        OverlapPredicate.two_sided(args.threshold),
        drop_identity=True,
        similarity=similarity_udf(
            "JR", resemblance, "overlap", "norm_r", "norm_s"
        ),
        keep=col("similarity") + 1e-9 >= args.threshold,
    )
    print(explain(plan, context=ExecutionContext()))
    return 0


def _load_tsv(path: str):
    from repro.errors import SchemaError
    from repro.relational.relation import Relation

    try:
        return Relation.from_tsv(path)
    except SchemaError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.relational.catalog import Catalog
    from repro.relational.sql import execute_sql

    if not args.table and not args.attach:
        raise SystemExit("error: sql needs at least one --table or --attach")
    catalog = Catalog()
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise SystemExit(f"error: --table expects NAME=FILE.tsv, got {spec!r}")
        catalog.register(name, _load_tsv(path))
    for spec in args.attach:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise SystemExit(
                f"error: --attach expects NAME=FILE.rpsf, got {spec!r}"
            )
        catalog.attach(name, path)

    result = execute_sql(catalog, args.query)
    out = _open_out(args.out)
    try:
        out.write("\t".join(result.column_names) + "\n")
        for row in result.rows:
            out.write(
                "\t".join("" if v is None else str(v) for v in row) + "\n"
            )
    finally:
        if out is not sys.stdout:
            out.close()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import lint_paths, selfcheck

    if args.dataflow:
        from pathlib import Path

        from repro.analysis.dataflow import analyze_dataflow, check_corpus
        from repro.analysis.dataflow.corpus import DEFAULT_CORPUS
        from repro.analysis.lint import DEFAULT_PATHS

        targets = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
        report = analyze_dataflow(targets)
        if DEFAULT_CORPUS.is_dir():
            check_corpus(DEFAULT_CORPUS, report=report)
    else:
        report = selfcheck(include_lint=not args.no_lint)
        if args.paths:
            report.extend(lint_paths(args.paths))
    if args.fmt == "json":
        print(report.render_json())
    elif args.fmt == "sarif":
        print(report.render_sarif())
    else:
        if report.diagnostics:
            print(report.render())
        n_err, n_warn = len(report.errors()), len(report.warnings())
        print(
            f"analysis {'passed' if report.ok else 'FAILED'}: "
            f"{n_err} error(s), {n_warn} warning(s)",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_bench_fig12(args: argparse.Namespace) -> int:
    """Fig-12 threshold sweep, in-memory (--input) or disk-backed (--store).

    Prints one line per threshold with the pair count, a cross-process
    result digest (bit-identity checks between the two modes grep these),
    and the PREP-phase seconds — near zero in --store mode, where the
    encoding comes off mmap'd pages instead of being rebuilt.
    """
    from repro.bench.storage_bench import result_digest
    from repro.core.encoded import EncodingCache
    from repro.core.metrics import PHASE_PREP, ExecutionMetrics
    from repro.core.ssjoin import SSJoin

    if (args.input is None) == (args.store is None):
        raise SystemExit(
            "error: bench --plan fig12 needs exactly one of --input/--store"
        )
    cache = EncodingCache()
    table = None
    if args.store is not None:
        from repro.storage import open_table

        table = open_table(args.store)
        table.seed_cache(cache)
        prepared = table.prepared()
        mode = f"store={args.store}"
    else:
        values = _read_lines(args.input)
        weights = resolve_weights("idf", words, values, values)
        prepared = PreparedRelation.from_strings(
            values, words, weights=weights, norm=NORM_WEIGHT, name="R"
        )
        mode = f"input={args.input}"
    print(f"fig12 sweep: {mode} rows={len(prepared)} "
          f"workers={args.workers or 1}")
    total_prep = 0.0
    try:
        for threshold in (0.80, 0.85, 0.90, 0.95):
            m = ExecutionMetrics()
            result = SSJoin(
                prepared, prepared, OverlapPredicate.two_sided(threshold)
            ).execute(
                "encoded-prefix", metrics=m, workers=args.workers,
                encoding_cache=cache,
            )
            prep = m.seconds(PHASE_PREP)
            total_prep += prep
            print(f"threshold={threshold:.2f} pairs={len(result.pairs)} "
                  f"digest={result_digest(result.pairs)} prep={prep:.4f}s")
    finally:
        if table is not None:
            table.close()
    print(f"total_prep={total_prep:.4f}s")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.storage import ingest_prepared

    values = _read_lines(args.input)
    weights = resolve_weights("idf", words, values, values)
    prepared = PreparedRelation.from_strings(
        values, words, weights=weights, norm=NORM_WEIGHT, name=args.name
    )
    t0 = time.perf_counter()
    with ingest_prepared(prepared, args.out) as table:
        stats = table.stats()
    seconds = time.perf_counter() - t0
    print(
        f"ingested {stats['num_rows']} rows ({stats['num_groups']} groups) "
        f"into {args.out}: {stats['num_pages']} pages, "
        f"{os.path.getsize(args.out)} bytes, generation "
        f"{stats['generation']}, {seconds:.3f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.storage import open_table

    for path in args.paths:
        with open_table(path) as table:
            stats = table.stats()
        print("\t".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.plan == "fig12":
        return _cmd_bench_fig12(args)
    from repro.bench.batch_bench import (
        aggregate_plan,
        orders_relation,
        pipeline_plan,
        ssjoin_result_relation,
        time_plan,
    )
    from repro.relational.batch import default_batch_size
    from repro.relational.catalog import Catalog
    from repro.relational.context import ExecutionContext

    catalog = Catalog()
    if args.plan == "aggregate":
        catalog.register("pairs", ssjoin_result_relation(args.rows))
        plan = aggregate_plan()
    else:
        catalog.register("orders", orders_relation(args.rows))
        plan = pipeline_plan()
    size = args.batch_size
    resolved = ExecutionContext(batch_size=size).resolved_batch_size()
    row_seconds, row_result = time_plan(plan, catalog, 0, repeats=args.repeats)
    batch_seconds, batch_result = time_plan(
        plan, catalog, size, repeats=args.repeats
    )
    if tuple(batch_result.rows) != tuple(row_result.rows):
        print("error: batch path diverged from row path", file=sys.stderr)
        return 1
    speedup = row_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    print(f"rows={args.rows} result_rows={len(row_result)} "
          f"batch_size={resolved} (default={default_batch_size()})")
    print(f"row path:   {row_seconds:.4f}s")
    print(f"batch path: {batch_seconds:.4f}s  ({speedup:.2f}x)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    rows = generate_addresses(
        CustomerConfig(num_rows=args.rows, seed=args.seed,
                       duplicate_fraction=args.duplicates)
    )
    with open(args.out, "w", encoding="utf-8") as f:
        for row in rows:
            f.write(row + "\n")
    print(f"wrote {len(rows)} addresses to {args.out}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "dedupe": _cmd_dedupe,
        "match": _cmd_match,
        "sql": _cmd_sql,
        "explain": _cmd_explain,
        "analyze": _cmd_analyze,
        "bench": _cmd_bench,
        "ingest": _cmd_ingest,
        "tables": _cmd_tables,
        "generate": _cmd_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
