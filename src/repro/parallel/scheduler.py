"""Adaptive scheduling: worker-count choice and shard sizing.

Two decisions live here, both driven by the PR-1 cost model rather than
fixed knobs:

* **How many workers?**  ``workers="auto"`` compares the sequential plan
  cost against :meth:`repro.core.optimizer.CostModel.parallel_cost` for
  each candidate worker count (powers of two up to the machine's core
  count) and takes the argmin.  Small joins therefore fall back to
  sequential execution — process spawn plus payload shipping dominates
  below the crossover, and "auto" must never regress them.  An explicit
  integer is honored as given (benchmarks sweep fixed counts).
* **How many shards?**  More shards than workers (:data:`OVERSPLIT` ×)
  so the executor's largest-first dispatch can rebalance skew: a worker
  that drew a heavy-token shard simply takes fewer of the remaining
  small ones.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.core.optimizer import CostModel
from repro.errors import PlanError

__all__ = ["OVERSPLIT", "available_workers", "choose_workers", "shard_count"]

#: Default shards-per-worker factor. 4× keeps the largest shard near 25%
#: of one worker's fair share, bounding skew-induced idle time without
#: drowning the run in per-task overhead.
OVERSPLIT = 4


def available_workers() -> int:
    """CPU cores usable by this process (affinity-aware, >= 1)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(os.cpu_count() or 1, 1)


def shard_count(workers: int, oversplit: int = OVERSPLIT) -> int:
    """Number of shards to plan for *workers* parallel workers."""
    if workers < 1:
        raise PlanError(f"workers must be >= 1, got {workers}")
    return max(workers * max(oversplit, 1), 1)


def choose_workers(
    requested: Union[int, str],
    sequential_cost: float,
    ship_elements: int,
    model: Optional[CostModel] = None,
    max_workers: Optional[int] = None,
    oversplit: int = OVERSPLIT,
) -> int:
    """Resolve a ``workers`` request to a concrete worker count.

    An explicit integer is returned as-is (validated); ``"auto"`` picks
    the count minimizing the modeled cost — including ``1``, the
    sequential fallback, whose cost is exactly *sequential_cost*.
    """
    if isinstance(requested, bool):  # bool is an int subclass; reject it
        raise PlanError(f"workers must be an int >= 1 or 'auto', got {requested!r}")
    if isinstance(requested, int):
        if requested < 1:
            raise PlanError(f"workers must be >= 1, got {requested}")
        return requested
    if requested != "auto":
        raise PlanError(
            f"workers must be an int >= 1 or 'auto', got {requested!r}"
        )
    m = model or CostModel()
    cap = max_workers if max_workers is not None else available_workers()
    best_w = 1
    best_cost = sequential_cost
    w = 2
    while w <= cap:
        cost = m.parallel_cost(sequential_cost, w, ship_elements, oversplit=oversplit)
        if cost < best_cost:
            best_w, best_cost = w, cost
        w *= 2
    return best_w
