"""The parallel SSJoin executor: shard, dispatch, merge.

:func:`parallel_ssjoin` is the multi-core twin of
:meth:`repro.core.ssjoin.SSJoin.execute`.  The flow:

1. Resolve the physical implementation (cost model, as sequential) and
   the worker count (:func:`repro.parallel.scheduler.choose_workers` —
   ``"auto"`` falls back to sequential below the crossover).
2. Plan shards — token-range for the encoded-prefix plan (each shard
   owns a disjoint slice of the prefix inverted index), group-hash for
   everything else — oversplit ~4× the worker count, and check the plan
   against the ``SSJ108`` coverage invariant before any work runs.
3. Dispatch largest-first to a ``ProcessPoolExecutor`` whose initializer
   ships each worker ONE pickled payload (or run shards inline with the
   ``serial`` backend — same shard code, no processes; used by the
   property-test suite and automatically when ``fork`` is unavailable).
4. Merge: per-shard :class:`~repro.core.metrics.ExecutionMetrics` fold
   into the caller's metrics (counter totals equal the sequential
   run's), rows are canonically sorted so the result relation is
   byte-identical for every worker count and backend, and a
   :class:`ParallelReport` with per-shard timings lands on both the
   result and ``metrics.parallel_stats``.

Determinism guarantee: for a fixed input and predicate, ``pairs.rows``
is the same list — same rows, same order, bit-identical floats — for
``workers=1``, any ``workers=N``, and both backends.  Sharding never
changes *which* elements each overlap kernel sees or their order, only
which process runs it; the canonical sort then fixes row order.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.core.basic import RESULT_SCHEMA
from repro.core.encoded import encode_pair
from repro.core.encoded_prefix import group_prefix_lengths
from repro.core.metrics import PHASE_PREFIX, PHASE_PREP, ExecutionMetrics
from repro.core.optimizer import IMPLEMENTATIONS, CostEstimate, CostModel
from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin, SSJoinResult
from repro.core.verify import (
    VerifyConfig,
    max_weights_for,
    resolve_signature_bits,
    signatures_for,
)
from repro.errors import PlanError
from repro.parallel.scheduler import OVERSPLIT, choose_workers, shard_count
from repro.parallel.shards import (
    KIND_TOKEN_RANGE,
    ShardDescriptor,
    plan_group_shards,
    plan_token_range_shards,
)
from repro.parallel.worker import (
    GroupHashPayload,
    Payload,
    ShardResult,
    StoredTokenRangePayload,
    TokenRangePayload,
    execute_shard,
    init_worker,
    run_shard,
)
from repro.relational.batch import ColumnarRelation
from repro.relational.relation import Relation

__all__ = [
    "BACKEND_PROCESS",
    "BACKEND_SERIAL",
    "ParallelReport",
    "ShardTiming",
    "canonical_sort_key",
    "parallel_ssjoin",
]

BACKEND_PROCESS = "process"
BACKEND_SERIAL = "serial"
#: Environment override for the default backend (tests set ``serial``).
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"


def canonical_sort_key(row: Sequence[Any]) -> Tuple[str, str]:
    """Deterministic total order over result rows.

    ``(a_r, a_s)`` identifies a result row uniquely (plans emit each
    matched pair once), and ``repr`` gives arbitrary key types a stable
    total order — so sorting by this key makes the merged relation
    independent of shard boundaries, dispatch order, and worker count.
    """
    return (repr(row[0]), repr(row[1]))


@dataclass(frozen=True)
class ShardTiming:
    """One shard's contribution to the run, as reported to telemetry."""

    shard_id: int
    kind: str
    est_cost: float
    seconds: float
    rows: int

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "est_cost": round(self.est_cost, 3),
            "seconds": self.seconds,
            "rows": self.rows,
        }


@dataclass(frozen=True)
class ParallelReport:
    """Telemetry for one parallel execution (the bench ``parallel`` block).

    ``wall_seconds`` is what this machine actually took — on a box with
    fewer free cores than *workers*, the processes time-slice and wall
    time will not shrink.  ``critical_path_seconds`` is the makespan of
    the measured shard times under largest-first dispatch onto *workers*
    truly-parallel workers — the wall time this schedule achieves when a
    core per worker is available — reported alongside, never instead.
    """

    mode: str  # "parallel" or "sequential"
    strategy: Optional[str]
    backend: Optional[str]
    requested: Union[int, str]
    workers: int
    oversplit: int
    wall_seconds: float
    shards: Tuple[ShardTiming, ...] = ()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def serial_shard_seconds(self) -> float:
        """Total shard busy time (what one worker would have executed)."""
        return sum(s.seconds for s in self.shards)

    @property
    def critical_path_seconds(self) -> float:
        """Makespan of the measured shard times under the run's schedule.

        Replays largest-first (``est_cost``) dispatch onto ``workers``
        bins, each shard going to the earliest-available worker — the
        same greedy order the executor submits in.
        """
        if not self.shards:
            return self.wall_seconds
        loads = [0.0] * max(self.workers, 1)
        for s in sorted(self.shards, key=lambda t: (-t.est_cost, t.shard_id)):
            b = min(range(len(loads)), key=lambda i: (loads[i], i))
            loads[b] += s.seconds
        return max(loads)

    @property
    def modeled_wall_seconds(self) -> float:
        """``wall_seconds`` with the shard portion replaced by the critical
        path: parent-side work (encode, prefix, shipping, dispatch) stays
        as measured, shard execution is counted as its makespan over the
        run's workers.  On a machine with a free core per worker this IS
        the wall time; on an oversubscribed machine (where the processes
        time-slice and measured wall cannot shrink) it is the honest
        scalability figure the bench's speedup rows report.
        """
        if not self.shards:
            # Sequential run: nothing to replay, the model IS the wall.
            # (critical_path_seconds falls back to wall_seconds here, so
            # the general formula below would double-count it.)
            return self.wall_seconds
        adjusted = self.wall_seconds - self.serial_shard_seconds + self.critical_path_seconds
        return max(adjusted, self.critical_path_seconds)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "strategy": self.strategy,
            "backend": self.backend,
            "requested": self.requested,
            "workers": self.workers,
            "oversplit": self.oversplit,
            "n_shards": self.n_shards,
            "wall_seconds": self.wall_seconds,
            "serial_shard_seconds": self.serial_shard_seconds,
            "critical_path_seconds": self.critical_path_seconds,
            "modeled_wall_seconds": self.modeled_wall_seconds,
            "shards": [s.to_dict() for s in self.shards],
        }


def _resolve_backend(backend: Optional[str]) -> str:
    b = backend or os.environ.get(BACKEND_ENV) or BACKEND_PROCESS
    if b not in (BACKEND_PROCESS, BACKEND_SERIAL):
        raise PlanError(
            f"unknown parallel backend {b!r}; expected "
            f"{BACKEND_PROCESS!r} or {BACKEND_SERIAL!r}"
        )
    return b


def _sorted_relation(rows: List[Tuple[Any, ...]]) -> Relation:
    return Relation(RESULT_SCHEMA, sorted(rows, key=canonical_sort_key))


def _sorted_columns(columns: Sequence[Sequence[Any]]) -> ColumnarRelation:
    """Canonical order applied columnar-ly: argsort ``(a_r, a_s)`` under
    the same repr key as :func:`canonical_sort_key`, then permute each
    column — same row order as the row sort, no row tuples built."""
    ar, a_s = columns[0], columns[1]
    order = sorted(range(len(ar)), key=lambda i: (repr(ar[i]), repr(a_s[i])))
    return ColumnarRelation(
        RESULT_SCHEMA, tuple([col[i] for i in order] for col in columns)
    )


def _canonical_relation(pairs: Relation) -> Relation:
    """THE canonical-order boundary adapter: every ``parallel_ssjoin``
    return path — sequential fallback and shard merge alike — funnels
    through this one function, so no backend re-materializes row tuples
    for relations that are already columnar (see SSJ113)."""
    if isinstance(pairs, ColumnarRelation):
        return _sorted_columns(pairs.columns)
    return _sorted_relation(list(pairs.rows))


def parallel_ssjoin(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    workers: Union[int, str] = "auto",
    implementation: str = "auto",
    ordering: Optional[ElementOrdering] = None,
    metrics: Optional[ExecutionMetrics] = None,
    cost_model: Optional[CostModel] = None,
    backend: Optional[str] = None,
    oversplit: int = OVERSPLIT,
    verify_config: Optional[VerifyConfig] = None,
    encoding_cache: Optional[Any] = None,
) -> SSJoinResult:
    """Execute ``R SSJoin S`` across *workers* processes.

    Parameters mirror :meth:`SSJoin.execute` plus:

    workers:
        Worker count, or ``"auto"`` to let the cost model pick (which
        resolves to 1 — plain sequential execution — whenever spawn +
        shipping overhead would exceed the parallel win).
    backend:
        ``"process"`` (default; also via ``REPRO_PARALLEL_BACKEND``) or
        ``"serial"``, which runs the identical shard code in-process —
        same results and metrics, no pool; what the equivalence property
        tests sweep.
    oversplit:
        Shards planned per worker (default 4; see the scheduler).
    verify_config:
        Verification-engine tuning (:class:`repro.core.verify.VerifyConfig`;
        ``None`` = auto).  For token-range shards the signature columns
        are packed once in the parent and shipped with the payload, so
        every shard prunes with identical bounds and the merged
        per-stage counters equal the sequential run's.
    encoding_cache:
        A context-scoped :class:`repro.core.encoded.EncodingCache` for
        the parent-side encode phase (``None`` = the process-global
        cache). A cache seeded from an attached
        :class:`repro.storage.store.StoredTable` makes the encode phase
        a pure lookup, and its persisted ``storage_ref`` is what lets
        the process backend ship slim by-reference payloads.

    Returns an :class:`SSJoinResult` whose ``pairs`` rows are in
    canonical order and whose ``parallel`` attribute (also
    ``metrics.parallel_stats``) carries the :class:`ParallelReport`.
    """
    m = metrics if metrics is not None else ExecutionMetrics()
    model = cost_model or CostModel()

    # Cost estimation is only consulted when something is left to choose:
    # with an explicit implementation AND an explicit worker count the
    # full estimate_all pass (which extracts prefix relations to size the
    # candidate sets) is pure overhead on the hot path.
    chosen: Optional[CostEstimate] = None
    if implementation == "auto" or workers == "auto":
        estimates = model.estimate_all(left, right, predicate, ordering)
        if implementation == "auto":
            chosen = estimates[0]
        else:
            by_name = {e.implementation: e for e in estimates}
            if implementation not in by_name:
                raise PlanError(
                    f"unknown implementation {implementation!r}; expected one "
                    f"of {sorted(by_name)} or 'auto'"
                )
            chosen = by_name[implementation]
        impl = chosen.implementation
        sequential_cost = chosen.cost
    else:
        if implementation not in IMPLEMENTATIONS:
            raise PlanError(
                f"unknown implementation {implementation!r}; expected one of "
                f"{sorted(IMPLEMENTATIONS)} or 'auto'"
            )
        impl = implementation
        sequential_cost = 0.0

    ship_elements = left.num_elements + right.num_elements
    n_workers = choose_workers(
        workers, sequential_cost, ship_elements, model=model, oversplit=oversplit
    )
    if n_workers <= 1 or left.num_groups == 0:
        return _sequential(
            left, right, predicate, impl, chosen, ordering, m, workers,
            verify_config,
        )

    start = time.perf_counter()
    n_shards = shard_count(n_workers, oversplit)
    stored_payload: Optional[StoredTokenRangePayload] = None
    if impl == "encoded-prefix":
        strategy = KIND_TOKEN_RANGE
        payload, shards, universe, stored_payload = _plan_token_range(
            left, right, predicate, ordering, n_shards, m, verify_config,
            encoding_cache=encoding_cache,
        )
    else:
        strategy = "group-hash"
        payload, shards = _plan_group_hash(
            left, right, predicate, impl, ordering, n_shards, verify_config
        )
        universe = left.num_groups

    # Check the shard plan against the SSJ108 coverage invariant before
    # dispatch: exact tiling / exact partition, no overlap, no gap.
    # Imported lazily — repro.analysis sits above repro.parallel.
    from repro.analysis.invariants import check_shards

    check_shards(shards, universe)

    resolved_backend = _resolve_backend(backend)
    dispatch = sorted(shards, key=lambda s: (-s.est_cost, s.shard_id))
    if resolved_backend == BACKEND_PROCESS:
        # Prefer the slim by-reference payload: workers map the page
        # files read-only instead of unpickling the columnar arrays.
        results = _run_process_pool(stored_payload or payload, dispatch, n_workers)
    else:
        results = [execute_shard(payload, s) for s in dispatch]
    results.sort(key=lambda r: r.shard_id)

    # Merge shard output column-wise: five list extends per shard, never
    # a row tuple (shards ship ResultColumns precisely so this stays flat).
    merged: Tuple[List[Any], ...] = ([], [], [], [], [])
    for r in results:
        for dst, src in zip(merged, r.columns):
            dst.extend(src)
        m.merge(r.metrics)
    m.implementation = impl
    m.extra["parallel_payload"] = (
        "stored-ref"
        if resolved_backend == BACKEND_PROCESS and stored_payload is not None
        else "pickled"
    )

    by_id = {s.shard_id: s for s in shards}
    report = ParallelReport(
        mode="parallel",
        strategy=strategy,
        backend=resolved_backend,
        requested=workers,
        workers=n_workers,
        oversplit=oversplit,
        wall_seconds=time.perf_counter() - start,
        shards=tuple(
            ShardTiming(
                shard_id=r.shard_id,
                kind=by_id[r.shard_id].kind,
                est_cost=by_id[r.shard_id].est_cost,
                seconds=r.seconds,
                rows=r.num_rows,
            )
            for r in results
        ),
    )
    m.parallel_stats = report.to_dict()
    return SSJoinResult(
        pairs=_canonical_relation(ColumnarRelation(RESULT_SCHEMA, merged)),
        metrics=m,
        implementation=impl,
        cost_estimate=chosen,
        parallel=report,
    )


def _sequential(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    impl: str,
    estimate: Optional[CostEstimate],
    ordering: Optional[ElementOrdering],
    m: ExecutionMetrics,
    requested: Union[int, str],
    verify_config: Optional[VerifyConfig] = None,
) -> SSJoinResult:
    """The workers<=1 path: plain SSJoin, canonical order, mode marker."""
    start = time.perf_counter()
    result = SSJoin(left, right, predicate, ordering=ordering).execute(
        impl, metrics=m, verify_config=verify_config
    )
    report = ParallelReport(
        mode="sequential",
        strategy=None,
        backend=None,
        requested=requested,
        workers=1,
        oversplit=0,
        wall_seconds=time.perf_counter() - start,
    )
    m.parallel_stats = report.to_dict()
    return SSJoinResult(
        pairs=_canonical_relation(result.pairs),
        metrics=m,
        implementation=impl,
        cost_estimate=estimate,
        parallel=report,
    )


def _plan_group_hash(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    impl: str,
    ordering: Optional[ElementOrdering],
    n_shards: int,
    verify_config: Optional[VerifyConfig] = None,
) -> Tuple[GroupHashPayload, List[ShardDescriptor]]:
    # The ordering must be the *global* one so every shard's prefixes (and
    # merged counters) match the unsharded run; resolve it here, never in
    # a worker, where only the left subset would be visible.
    resolved = ordering if ordering is not None else frequency_ordering(left, right)
    payload = GroupHashPayload(
        # Fresh copies so pickling ships groups and norms, not the lazily
        # accumulated caches (prefix memos, base-relation views) hanging
        # off long-lived relations.
        left=PreparedRelation.from_sets(dict(left.groups), dict(left.norms), name=left.name),
        right=PreparedRelation.from_sets(dict(right.groups), dict(right.norms), name=right.name),
        predicate=predicate,
        implementation=impl,
        ordering=resolved,
        verify_config=verify_config,
    )
    return payload, plan_group_shards(left, n_shards)


def _plan_token_range(
    left: PreparedRelation,
    right: PreparedRelation,
    predicate: OverlapPredicate,
    ordering: Optional[ElementOrdering],
    n_shards: int,
    m: ExecutionMetrics,
    verify_config: Optional[VerifyConfig] = None,
    encoding_cache: Optional[Any] = None,
) -> Tuple[
    TokenRangePayload,
    List[ShardDescriptor],
    int,
    Optional[StoredTokenRangePayload],
]:
    # Encode + prefix phases run once in the parent (cache-hot, and
    # identical to the sequential plan's PREP/PREFIX work); workers get
    # the finished arrays and only execute SSJOIN/FILTER.
    with m.phase(PHASE_PREP):
        enc_left, enc_right, dictionary = encode_pair(
            left, right, ordering, metrics=m, cache=encoding_cache
        )
        m.prepared_rows += enc_left.num_elements + enc_right.num_elements
    with m.phase(PHASE_PREFIX):
        left_prefix = group_prefix_lengths(enc_left, predicate.left_filter_threshold)
        right_prefix = group_prefix_lengths(enc_right, predicate.right_filter_threshold)
        m.prefix_rows += sum(left_prefix) + sum(right_prefix)

    # The plan is a pure function of (encoding pair, predicate, shard
    # count, verify config): memoize it beside the prefix lengths so
    # repeated executions against a cached encoding (sweep repeats,
    # worker-count sweeps at fixed n_shards) re-plan nothing.  enc_right
    # is alive exactly as long as enc_left's cache entry (same
    # EncodingCache tuple), so its id is a stable key component.
    cfg = verify_config if verify_config is not None else VerifyConfig()
    cache_key = ("token-range-plan", id(enc_right), predicate, n_shards, cfg)
    cached = enc_left.prefix_cache.get(cache_key)
    if cached is not None:
        return cached

    # Resolve the verification-engine state once, parent-side: the packed
    # signature columns ship inside the payload so every worker prunes
    # with the parent's exact bounds.
    if cfg.inert:
        nbits = 0
        left_sigs = right_sigs = None
        maxw = None
        positional = early = False
    else:
        nbits = resolve_signature_bits(enc_left, enc_right, predicate, cfg)
        left_sigs = tuple(signatures_for(enc_left, nbits)) if nbits else None
        right_sigs = (
            (
                left_sigs
                if enc_right is enc_left
                else tuple(signatures_for(enc_right, nbits))
            )
            if nbits
            else None
        )
        maxw = tuple(max_weights_for(enc_left))
        positional = cfg.positional
        early = cfg.early_exit

    # Self-joins share one ids tuple between the sides: pickle memoizes
    # the shared object, so the worker-side engine still sees
    # ``left_ids is right_ids`` and keeps its identity fast path.
    left_ids_t = tuple(enc_left.ids)
    right_ids_t = left_ids_t if enc_right is enc_left else tuple(enc_right.ids)
    payload = TokenRangePayload(
        left_keys=tuple(enc_left.keys),
        left_ids=left_ids_t,
        left_weights=tuple(enc_left.weights),
        left_norms=tuple(enc_left.norms),
        left_prefix=tuple(left_prefix),
        right_keys=tuple(enc_right.keys),
        right_ids=right_ids_t,
        right_norms=tuple(enc_right.norms),
        right_prefix=tuple(right_prefix),
        predicate=predicate,
        verify_bits=nbits,
        left_signatures=left_sigs,
        right_signatures=right_sigs,
        left_max_weights=maxw,
        verify_positional=positional,
        verify_early_exit=early,
    )
    universe = len(dictionary)
    shards = plan_token_range_shards(
        enc_left.ids, left_prefix, enc_right.ids, right_prefix, universe, n_shards
    )
    # Disk-backed encodings ship by reference: workers re-open the page
    # files read-only and rehydrate (prefix lengths, signatures) instead
    # of receiving the pickled columns — a few hundred payload bytes per
    # worker regardless of relation size.
    stored: Optional[StoredTokenRangePayload] = None
    left_ref = enc_left.storage_ref
    right_ref = left_ref if enc_right is enc_left else enc_right.storage_ref
    if left_ref and right_ref:
        stored = StoredTokenRangePayload(
            left_ref=left_ref,
            right_ref=right_ref,
            predicate=predicate,
            verify_bits=nbits,
            verify_positional=positional,
            verify_early_exit=early,
        )
    plan = (payload, shards, universe, stored)
    enc_left.prefix_cache[cache_key] = plan
    return plan


def _run_process_pool(
    payload: "Union[Payload, StoredTokenRangePayload]",
    dispatch: List[ShardDescriptor],
    n_workers: int,
) -> List[ShardResult]:
    payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=init_worker,
        initargs=(payload_bytes,),
    ) as pool:
        futures = [pool.submit(run_shard, s) for s in dispatch]
        return [f.result() for f in futures]
