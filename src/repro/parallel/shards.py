"""Shard planning: partition SSJoin work for multi-worker execution.

Two partitioning strategies, mirroring how the related batch systems
scale out (PPJoin-family token sharding; Vernica et al.'s prefix-token
MapReduce join):

* **group-hash** — the left relation's groups are distributed over
  shards (deterministic cost-balanced assignment over group positions).
  Each shard joins its left groups against the *full* right side, so any
  physical implementation can run per shard and the union over shards is
  exactly the unpartitioned result (left groups are disjoint, so no pair
  is produced twice).
* **token-range** — for the encoded-prefix plan: the dictionary id space
  ``[0, |universe|)`` is tiled into contiguous ranges, and each shard
  owns the slice of the prefix inverted index whose token ids fall in
  its range.  A candidate pair can share prefix tokens across several
  ranges; the shard owning the pair's *smallest* common prefix token id
  emits it (every shard can decide ownership locally because it holds
  both sides' full id arrays), so candidate enumeration never duplicates
  pairs.

Both planners emit :class:`ShardDescriptor` lists whose coverage is
checked by the ``SSJ108`` invariant rule
(:func:`repro.analysis.invariants.verify_shards`): group-hash shards
must partition the group positions exactly; token-range shards must tile
the dictionary ordering without gap or overlap.

Shard sizing is *adaptive*: planners take per-unit cost estimates (group
element counts; per-token posting products) and oversplit the requested
worker count so the executor's largest-first dispatch can absorb skew
from heavy tokens or giant groups (see :mod:`repro.parallel.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.prepared import PreparedRelation
from repro.errors import PlanError

__all__ = [
    "KIND_GROUP_HASH",
    "KIND_TOKEN_RANGE",
    "ShardDescriptor",
    "plan_group_shards",
    "plan_token_range_shards",
]

#: Shard kind: a subset of left-group positions joined against the full
#: right side.
KIND_GROUP_HASH = "group-hash"
#: Shard kind: a contiguous token-id range ``[lo, hi)`` of the shared
#: dictionary ordering (encoded-prefix plan).
KIND_TOKEN_RANGE = "token-range"


@dataclass(frozen=True)
class ShardDescriptor:
    """One unit of parallel work.

    ``lo``/``hi`` delimit the owned token-id range for token-range
    shards; ``group_positions`` lists the owned left-group positions (in
    the prepared relation's group order) for group-hash shards.
    ``est_cost`` is the scheduler's relative cost estimate, used for
    largest-first dispatch — comparisons only, no unit.
    """

    shard_id: int
    kind: str
    lo: int = 0
    hi: int = 0
    group_positions: Tuple[int, ...] = ()
    est_cost: float = 0.0
    #: Token-range only: positions of the left/right groups whose β-prefix
    #: intersects ``[lo, hi)``, ascending, with the parallel entry in
    #: ``*_starts`` giving the offset of the group's first in-range prefix
    #: token.  The planner records both during the same prefix walk that
    #: builds its cost histogram, so a worker visits only the groups that
    #: can contribute to its range — and starts each walk at the right
    #: offset with no per-group bisects.  ``None`` (not planned, e.g. a
    #: hand-built descriptor) falls back to scanning every group.
    left_groups: Optional[Tuple[int, ...]] = None
    right_groups: Optional[Tuple[int, ...]] = None
    left_starts: Optional[Tuple[int, ...]] = None
    right_starts: Optional[Tuple[int, ...]] = None

    def __repr__(self) -> str:
        if self.kind == KIND_TOKEN_RANGE:
            span = f"ids[{self.lo}:{self.hi})"
        else:
            span = f"groups={len(self.group_positions)}"
        return f"<Shard {self.shard_id} {self.kind} {span} cost~{self.est_cost:.0f}>"


def plan_group_shards(
    prepared: PreparedRelation, n_shards: int
) -> List[ShardDescriptor]:
    """Partition the left groups into at most *n_shards* balanced shards.

    Assignment is deterministic longest-processing-time: groups are
    walked largest-first (element count, position tiebreak) and each goes
    to the currently lightest shard.  Builtin ``hash`` is deliberately
    not used — it is salted per process, and shard plans must be
    reproducible across runs and workers.
    """
    if n_shards < 1:
        raise PlanError(f"n_shards must be >= 1, got {n_shards}")
    sizes = [len(s) for s in prepared.groups.values()]
    if not sizes:
        return []
    n = min(n_shards, len(sizes))
    order = sorted(range(len(sizes)), key=lambda g: (-sizes[g], g))
    bins: List[List[int]] = [[] for _ in range(n)]
    loads = [0.0] * n
    for g in order:
        b = min(range(n), key=lambda i: (loads[i], i))
        bins[b].append(g)
        # +1 keeps empty/tiny groups from all landing in one shard.
        loads[b] += sizes[g] + 1.0
    return [
        ShardDescriptor(
            shard_id=i,
            kind=KIND_GROUP_HASH,
            group_positions=tuple(sorted(bins[i])),
            est_cost=loads[i],
        )
        for i in range(n)
        if bins[i]
    ]


def plan_token_range_shards(
    left_ids: Sequence[Sequence[int]],
    left_prefix: Sequence[int],
    right_ids: Sequence[Sequence[int]],
    right_prefix: Sequence[int],
    universe: int,
    n_shards: int,
) -> List[ShardDescriptor]:
    """Tile the dictionary id space into ~cost-equal contiguous ranges.

    The per-token cost estimate is the prefix-filter equi-join work that
    token induces: ``rp(t)`` postings to index plus ``lp(t) * rp(t)``
    probe hits, where ``lp``/``rp`` count the token's occurrences in the
    left/right *prefixes*.  Ranges are cut whenever the running cost
    passes an equal share, so a single heavy token may own a whole shard
    — exactly what largest-first dispatch wants to see early.
    """
    if n_shards < 1:
        raise PlanError(f"n_shards must be >= 1, got {n_shards}")
    if universe <= 0:
        return []
    lp = [0] * universe
    rp = [0] * universe
    for g, k in enumerate(right_prefix):
        for t in right_ids[g][:k]:
            rp[t] += 1
    for g, k in enumerate(left_prefix):
        for t in left_ids[g][:k]:
            lp[t] += 1
    # Cost of owning token t — only tokens that occur in some prefix can
    # induce work, so the cut walk is sparse: zero-cost ids between two
    # occupied tokens just ride along with whichever range covers them.
    # (Prefixes keep each group's rarest tokens, so the occupied set is
    # far smaller than the id space and one dense filtering pass beats a
    # per-id cost walk.)
    occupied = [t for t in range(universe) if rp[t] or lp[t]]
    n = min(n_shards, universe)
    if occupied:
        total = sum(rp[t] * (1 + lp[t]) for t in occupied)
        n = min(n, len(occupied))
    else:
        total = 0.0
    share = total / n if n else 0.0

    shards: List[ShardDescriptor] = []
    lo = 0
    acc = 0.0
    for i, t in enumerate(occupied):
        acc += rp[t] * (1 + lp[t])
        remaining_cuts = n - len(shards) - 1
        # Cut when the share is met, but always leave enough occupied
        # tokens for the remaining shards so no shard comes out empty.
        if (
            remaining_cuts > 0
            and acc >= share
            and (len(occupied) - (i + 1)) >= remaining_cuts
        ):
            shards.append(
                ShardDescriptor(
                    shard_id=len(shards), kind=KIND_TOKEN_RANGE,
                    lo=lo, hi=t + 1, est_cost=acc,
                )
            )
            lo = t + 1
            acc = 0.0
    shards.append(
        ShardDescriptor(
            shard_id=len(shards), kind=KIND_TOKEN_RANGE,
            lo=lo, hi=universe, est_cost=acc,
        )
    )

    # Second pass: per-shard intersecting-group lists, so each worker
    # walks only the groups that can touch its range (the naive
    # alternative — every shard bisecting every group — is O(G·S) and
    # dominates shard runtime once shards outnumber heavy tokens).
    # Prefix ids are ascending within a group, so consecutive ids map to
    # non-decreasing shard ids and a last-appended check dedups.
    token_shard = [0] * universe
    for s in shards:
        token_shard[s.lo : s.hi] = [s.shard_id] * (s.hi - s.lo)
    left_lists: List[List[int]] = [[] for _ in shards]
    right_lists: List[List[int]] = [[] for _ in shards]
    left_starts: List[List[int]] = [[] for _ in shards]
    right_starts: List[List[int]] = [[] for _ in shards]
    for lists, starts, all_ids, prefix in (
        (right_lists, right_starts, right_ids, right_prefix),
        (left_lists, left_starts, left_ids, left_prefix),
    ):
        for g, k in enumerate(prefix):
            last = -1
            for pos, t in enumerate(all_ids[g][:k]):
                sid = token_shard[t]
                if sid != last:
                    lists[sid].append(g)
                    starts[sid].append(pos)
                    last = sid
    return [
        replace(s, left_groups=tuple(left_lists[s.shard_id]),
                right_groups=tuple(right_lists[s.shard_id]),
                left_starts=tuple(left_starts[s.shard_id]),
                right_starts=tuple(right_starts[s.shard_id]))
        for s in shards
    ]
