"""Multi-core parallel SSJoin execution (Layer 5).

Shard planning (:mod:`repro.parallel.shards`), adaptive scheduling
(:mod:`repro.parallel.scheduler`), worker kernels
(:mod:`repro.parallel.worker`), and the process-pool executor
(:mod:`repro.parallel.executor`).  Entry points: the
:func:`parallel_ssjoin` function here, or ``workers=`` on
:meth:`repro.core.ssjoin.SSJoin.execute`.
"""

from repro.parallel.executor import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    ParallelReport,
    ShardTiming,
    canonical_sort_key,
    parallel_ssjoin,
)
from repro.parallel.scheduler import (
    OVERSPLIT,
    available_workers,
    choose_workers,
    shard_count,
)
from repro.parallel.shards import (
    KIND_GROUP_HASH,
    KIND_TOKEN_RANGE,
    ShardDescriptor,
    plan_group_shards,
    plan_token_range_shards,
)
from repro.parallel.worker import (
    GroupHashPayload,
    ShardResult,
    TokenRangePayload,
    execute_shard,
)

__all__ = [
    "BACKEND_PROCESS",
    "BACKEND_SERIAL",
    "GroupHashPayload",
    "KIND_GROUP_HASH",
    "KIND_TOKEN_RANGE",
    "OVERSPLIT",
    "ParallelReport",
    "ShardDescriptor",
    "ShardResult",
    "ShardTiming",
    "TokenRangePayload",
    "available_workers",
    "canonical_sort_key",
    "choose_workers",
    "execute_shard",
    "parallel_ssjoin",
    "plan_group_shards",
    "plan_token_range_shards",
    "shard_count",
]
