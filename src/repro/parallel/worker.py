"""Worker-side shard execution (runs inside pool processes or inline).

The executor ships each worker ONE pickled payload — via the process
pool's initializer, so it crosses the process boundary once per worker,
not once per shard — and then submits lightweight
:class:`~repro.parallel.shards.ShardDescriptor` tasks against it.

Two payload shapes match the two shard kinds:

* :class:`GroupHashPayload` carries both prepared relations, the
  predicate, the resolved implementation name, and the *global* element
  ordering.  A shard rebuilds its left subset and runs the ordinary
  sequential plan on it; passing the global ordering (rather than letting
  each worker derive one from its subset) keeps every shard's prefixes —
  and therefore the merged candidate/output counts — identical to the
  unsharded run.
* :class:`TokenRangePayload` carries the encoded columnar arrays of both
  sides plus precomputed β-prefix lengths.  A shard builds the inverted
  index restricted to its token range, probes left prefix ids in range,
  and emits only the candidate pairs it *owns*: the pair whose smallest
  common prefix token id falls in ``[lo, hi)``.  Every discovered pair
  has such a token, and it lies in exactly one range, so the union over
  shards enumerates each candidate pair exactly once (and the merged
  ``candidate_pairs`` / ``equijoin_rows`` totals equal the sequential
  plan's).

Determinism: all kernels (prefix slicing, ``merge_overlap``, the
per-pair weight sums) are the sequential plans' own, applied to the same
arrays in the same element order, so overlap values are bit-identical to
the sequential result no matter how work is sharded.
"""

from __future__ import annotations

import pickle
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.encoded_prefix import merge_overlap
from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_SSJOIN,
    ExecutionMetrics,
)
from repro.core.ordering import ElementOrdering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.verify import VerificationEngine, VerifyConfig
from repro.errors import PlanError
from repro.parallel.shards import KIND_GROUP_HASH, KIND_TOKEN_RANGE, ShardDescriptor

__all__ = [
    "GroupHashPayload",
    "StoredTokenRangePayload",
    "TokenRangePayload",
    "ShardResult",
    "execute_shard",
    "init_worker",
    "run_shard",
]


@dataclass(frozen=True)
class GroupHashPayload:
    """Everything a worker needs to run group-hash shards."""

    left: PreparedRelation
    right: PreparedRelation
    predicate: OverlapPredicate
    implementation: str
    ordering: Optional[ElementOrdering]
    #: verification-engine config forwarded to the shard's sequential plan
    #: (appended with a default so hand-pickled payloads stay loadable)
    verify_config: Optional[VerifyConfig] = None


@dataclass(frozen=True)
class TokenRangePayload:
    """Columnar arrays + prefix lengths for token-range shards.

    ``left_ids[g]`` / ``left_weights[g]`` are the sorted parallel arrays
    of :class:`~repro.core.encoded.EncodedPreparedRelation`;
    ``left_prefix[g]`` is group *g*'s β-prefix length under the shared
    dictionary ordering.  Mirrors for the right side (whose weights are
    not needed: overlap sums left-side weights).

    The ``verify_*`` tail carries the resolved verification-engine state
    so every shard prunes locally with the *parent's* signatures — no
    per-worker re-packing, and prune decisions (hence merged per-stage
    counters) identical to the sequential run.  All tail fields default
    to the engine-off state, so hand-built payloads (tests) reproduce
    the pre-engine shard behavior.
    """

    left_keys: Tuple[Any, ...]
    left_ids: Tuple[Sequence[int], ...]
    left_weights: Tuple[Sequence[float], ...]
    left_norms: Tuple[float, ...]
    left_prefix: Tuple[int, ...]
    right_keys: Tuple[Any, ...]
    right_ids: Tuple[Sequence[int], ...]
    right_norms: Tuple[float, ...]
    right_prefix: Tuple[int, ...]
    predicate: OverlapPredicate
    verify_bits: int = 0
    left_signatures: Optional[Tuple[int, ...]] = None
    right_signatures: Optional[Tuple[int, ...]] = None
    left_max_weights: Optional[Tuple[float, ...]] = None
    verify_positional: bool = False
    verify_early_exit: bool = False


@dataclass(frozen=True)
class StoredTokenRangePayload:
    """Page-file refs in place of pickled columns (disk-backed joins).

    When both sides' encodings are disk-backed (``storage_ref`` set —
    attached tables or persistent-tier pair files), the executor ships
    this slim payload instead of :class:`TokenRangePayload`: each worker
    re-opens the page files read-only and adopts the columnar arrays via
    mmap, so the per-worker pickle is a few hundred bytes regardless of
    relation size. :meth:`rehydrate` rebuilds the full payload
    worker-side; every derived quantity (β-prefix lengths, packed
    signatures, max weights) is a deterministic pure function of the
    mapped arrays and the shipped predicate/config, so shard results are
    bit-identical to the fat-payload path.
    """

    left_ref: str
    right_ref: str
    predicate: OverlapPredicate
    verify_bits: int = 0
    verify_positional: bool = False
    verify_early_exit: bool = False

    def rehydrate(self) -> TokenRangePayload:
        # Imported here: repro.storage layers above repro.parallel.
        from repro.core.encoded_prefix import group_prefix_lengths
        from repro.core.verify import max_weights_for, signatures_for
        from repro.storage.store import load_encoded_ref

        enc_left = load_encoded_ref(self.left_ref)
        enc_right = (
            enc_left
            if self.right_ref == self.left_ref
            else load_encoded_ref(self.right_ref)
        )
        left_prefix = group_prefix_lengths(
            enc_left, self.predicate.left_filter_threshold
        )
        right_prefix = group_prefix_lengths(
            enc_right, self.predicate.right_filter_threshold
        )
        nbits = self.verify_bits
        left_sigs = tuple(signatures_for(enc_left, nbits)) if nbits else None
        right_sigs = (
            (
                left_sigs
                if enc_right is enc_left
                else tuple(signatures_for(enc_right, nbits))
            )
            if nbits
            else None
        )
        engine_on = bool(nbits or self.verify_positional or self.verify_early_exit)
        left_ids_t = tuple(enc_left.ids)
        return TokenRangePayload(
            left_keys=tuple(enc_left.keys),
            left_ids=left_ids_t,
            left_weights=tuple(enc_left.weights),
            left_norms=tuple(enc_left.norms),
            left_prefix=tuple(left_prefix),
            right_keys=tuple(enc_right.keys),
            right_ids=left_ids_t if enc_right is enc_left else tuple(enc_right.ids),
            right_norms=tuple(enc_right.norms),
            right_prefix=tuple(right_prefix),
            predicate=self.predicate,
            verify_bits=nbits,
            left_signatures=left_sigs,
            right_signatures=right_sigs,
            left_max_weights=tuple(max_weights_for(enc_left)) if engine_on else None,
            verify_positional=self.verify_positional,
            verify_early_exit=self.verify_early_exit,
        )


Payload = Union[GroupHashPayload, TokenRangePayload]


#: The five parallel RESULT_SCHEMA output columns of one shard.
ResultColumns = Tuple[
    Sequence[Any], Sequence[Any], Sequence[float], Sequence[float], Sequence[float]
]


@dataclass(frozen=True)
class ShardResult:
    """One shard's output, metrics, and busy time (worker-side).

    Output ships as five parallel RESULT_SCHEMA columns — five flat
    sequences pickle far smaller and faster than one tuple per row, and
    the executor's merge extends columns without ever building rows.
    """

    shard_id: int
    columns: ResultColumns
    metrics: ExecutionMetrics
    seconds: float

    @property
    def num_rows(self) -> int:
        return len(self.columns[0])

    @property
    def rows(self) -> Tuple[Tuple[Any, ...], ...]:
        """Row-tuple view (boundary adapter for row-protocol consumers)."""
        return tuple(zip(*self.columns)) if self.columns[0] else ()


#: Per-process payload slot, populated once by :func:`init_worker`.
_PAYLOAD: Optional[Payload] = None


def init_worker(payload_bytes: bytes) -> None:
    """Process-pool initializer: unpickle the shared payload once.

    A :class:`StoredTokenRangePayload` rehydrates here — pages are mapped
    and derived state rebuilt once per process, before any shard runs.
    """
    global _PAYLOAD
    payload = pickle.loads(payload_bytes)
    if isinstance(payload, StoredTokenRangePayload):
        payload = payload.rehydrate()
    # The initializer is the one sanctioned global write in a worker: it
    # runs exactly once per process, before any shard, and the slot is
    # read-only afterwards — write-once configuration, not shared state.
    _PAYLOAD = payload  # repro: ignore[DF303]


def run_shard(shard: ShardDescriptor) -> ShardResult:
    """Pool task entry point: run *shard* against the process payload."""
    if _PAYLOAD is None:
        raise PlanError("worker payload not initialized (init_worker not run)")
    return execute_shard(_PAYLOAD, shard)


def execute_shard(payload: Payload, shard: ShardDescriptor) -> ShardResult:
    """Run one shard against an explicit payload (serial backend + pool)."""
    start = time.perf_counter()
    if shard.kind == KIND_GROUP_HASH:
        if not isinstance(payload, GroupHashPayload):
            raise PlanError(f"group-hash shard against {type(payload).__name__}")
        columns, metrics = _run_group_shard(payload, shard)
    elif shard.kind == KIND_TOKEN_RANGE:
        if not isinstance(payload, TokenRangePayload):
            raise PlanError(f"token-range shard against {type(payload).__name__}")
        columns, metrics = _run_token_range_shard(payload, shard)
    else:
        raise PlanError(f"unknown shard kind {shard.kind!r}")
    return ShardResult(
        shard_id=shard.shard_id,
        columns=columns,
        metrics=metrics,
        seconds=time.perf_counter() - start,
    )


def _columns_of(relation: Any) -> "ResultColumns":
    """A relation's five RESULT_SCHEMA columns, transposing only if the
    producing plan was not already columnar."""
    from repro.relational.batch import ColumnarRelation

    if isinstance(relation, ColumnarRelation):
        return relation.columns  # type: ignore[return-value]
    rows = relation.rows
    if not rows:
        return ((), (), (), (), ())
    return tuple(zip(*rows))  # type: ignore[return-value]


def _run_group_shard(
    payload: GroupHashPayload, shard: ShardDescriptor
) -> Tuple["ResultColumns", ExecutionMetrics]:
    # Imported here: repro.core.ssjoin is the facade above this module's
    # callers; the worker only needs it at execution time.
    from repro.core.ssjoin import SSJoin

    keys = list(payload.left.groups)
    groups = {}
    norms = {}
    for g in shard.group_positions:
        a = keys[g]
        groups[a] = payload.left.groups[a]
        norms[a] = payload.left.norms[a]
    subset = PreparedRelation.from_sets(
        groups, norms, name=f"{payload.left.name}[shard{shard.shard_id}]"
    )
    metrics = ExecutionMetrics()
    result = SSJoin(
        subset, payload.right, payload.predicate, ordering=payload.ordering
    ).execute(
        payload.implementation,
        metrics=metrics,
        verify_config=payload.verify_config,
    )
    return _columns_of(result.pairs), metrics


def _shard_groups(
    groups: Optional[Tuple[int, ...]],
    starts: Optional[Tuple[int, ...]],
    all_ids: Tuple[Sequence[int], ...],
    prefix: Tuple[int, ...],
    lo: int,
) -> Iterable[Tuple[int, int]]:
    """(group position, first in-range prefix offset) pairs for a shard.

    Planner-built shards carry both lists; hand-built descriptors (tests)
    fall back to bisecting every group's prefix to *lo*.
    """
    if groups is not None and starts is not None:
        return zip(groups, starts)
    return (
        (g, pos)
        for g, k in enumerate(prefix)
        if (pos := bisect_left(all_ids[g], lo, 0, k)) < k
    )


def first_common_prefix_token(
    left_ids: Sequence[int],
    left_k: int,
    right_ids: Sequence[int],
    right_k: int,
) -> int:
    """Smallest token id shared by the two β-prefixes, or -1 if none.

    Both arrays are ascending (the ordering ``O``), so the first match of
    a linear merge is the minimum — this is the shard-ownership test.
    """
    i = j = 0
    while i < left_k and j < right_k:
        x = left_ids[i]
        y = right_ids[j]
        if x == y:
            return x
        if x < y:
            i += 1
        else:
            j += 1
    return -1


def _run_token_range_shard(
    p: TokenRangePayload, shard: ShardDescriptor
) -> Tuple["ResultColumns", ExecutionMetrics]:
    lo, hi = shard.lo, shard.hi
    m = ExecutionMetrics()
    m.implementation = "encoded-prefix"

    # Local verification engine over the shipped columnar arrays and
    # parent-packed signatures.  The defaulted payload tail is the inert
    # config, in which case the legacy ownership + full-merge path below
    # runs unchanged.
    engine: Optional[VerificationEngine] = None
    if p.verify_bits or p.verify_positional or p.verify_early_exit:
        engine = VerificationEngine(
            p.predicate,
            p.left_ids,
            p.left_weights,
            p.left_norms,
            p.left_prefix,
            p.right_ids,
            p.right_norms,
            p.right_prefix,
            nbits=p.verify_bits,
            left_signatures=p.left_signatures,
            right_signatures=p.right_signatures,
            left_max_weights=p.left_max_weights,
            positional=p.verify_positional,
            early_exit=p.verify_early_exit,
        )

    candidates: List[Tuple[int, List[int]]] = []
    with m.phase(PHASE_SSJOIN):
        # Inverted index over the right prefixes, restricted to [lo, hi).
        # Prefix ids are ascending, so two bisects find the in-range span
        # and the loop walks a C-level slice — the same per-element cost
        # as the sequential plan's ``ids[:k]`` walk, instead of a Python
        # position/compare per element.
        index: Dict[int, List[int]] = {}
        right_ids = p.right_ids
        right_prefix = p.right_prefix
        # Planner-supplied (group, first in-range offset) pairs keep the
        # walk to the groups that can touch this range and start each walk
        # at the right token with no per-group bisects.  Prefix ids are
        # ascending, so the walk stops at the first id >= hi.
        for h, pos in _shard_groups(shard.right_groups, shard.right_starts,
                                    right_ids, right_prefix, lo):
            k = right_prefix[h]
            ids = right_ids[h]
            t = ids[pos]
            while t < hi:
                index.setdefault(t, []).append(h)
                pos += 1
                if pos == k:
                    break
                t = ids[pos]

        # Probe left prefix ids in range, same walk discipline.  Prefix
        # tokens are the rarest of their group, so most probes miss —
        # allocate the matched set only on the first hit.
        left_ids = p.left_ids
        left_prefix = p.left_prefix
        probe_rows = 0
        for g, pos in _shard_groups(shard.left_groups, shard.left_starts,
                                    left_ids, left_prefix, lo):
            k = left_prefix[g]
            lids = left_ids[g]
            matched: Optional[set] = None
            t = lids[pos]
            while t < hi:
                postings = index.get(t)
                if postings:
                    probe_rows += len(postings)
                    if matched is None:
                        matched = set(postings)
                    else:
                        matched.update(postings)
                pos += 1
                if pos == k:
                    break
                t = lids[pos]
            if not matched:
                continue
            if engine is not None:
                # Ownership (smallest common prefix token >= lo) moves
                # into the engine, which finds that anchor token once and
                # reuses it for the positional bound.
                candidates.append((g, sorted(matched)))
                continue
            # Ownership: emit only pairs whose smallest common prefix
            # token lies in this range. Discovery found a common token in
            # [lo, hi), so the minimum exists and is < hi; pairs whose
            # minimum is below lo belong to (and are found by) an earlier
            # shard.
            owned = [
                h
                for h in sorted(matched)
                if first_common_prefix_token(lids, k, right_ids[h], p.right_prefix[h])
                >= lo
            ]
            if owned:
                candidates.append((g, owned))
                m.candidate_pairs += len(owned)
        m.equijoin_rows += probe_rows

    with m.phase(PHASE_FILTER):
        if engine is not None:
            columns: ResultColumns = engine.verify_candidates_columns(
                candidates, p.left_keys, p.right_keys, own_lo=lo
            )
            # The engine counted exactly the owned pairs (pre-prune), so
            # merged candidate_pairs equal the sequential run's.
            m.candidate_pairs += engine.candidates
            engine.flush(m)
        else:
            col_ar: List[Any] = []
            col_as: List[Any] = []
            col_ov: List[float] = []
            col_nr: List[float] = []
            col_ns: List[float] = []
            satisfied = p.predicate.satisfied
            for g, owned in candidates:
                lids = left_ids[g]
                lw = p.left_weights[g]
                norm_r = p.left_norms[g]
                a_r = p.left_keys[g]
                for h in owned:
                    overlap = merge_overlap(lids, lw, right_ids[h])
                    norm_s = p.right_norms[h]
                    if satisfied(overlap, norm_r, norm_s):
                        col_ar.append(a_r)
                        col_as.append(p.right_keys[h])
                        col_ov.append(overlap)
                        col_nr.append(norm_r)
                        col_ns.append(norm_s)
            columns = (col_ar, col_as, col_ov, col_nr, col_ns)
        m.output_pairs += len(columns[0])
    return columns, m
