"""repro — SSJoin: a primitive operator for similarity joins in data cleaning.

Reproduction of Chaudhuri, Ganti & Kaushik (ICDE 2006). The package layers:

* :mod:`repro.relational` — a mini in-memory relational engine (the SQL
  Server stand-in every plan composes over);
* :mod:`repro.tokenize` — string → weighted-set machinery (q-grams, words,
  multiset ordinal encoding, IDF weights, soundex);
* :mod:`repro.sim` — exact similarity functions used as post-filter UDFs;
* :mod:`repro.core` — the SSJoin operator: predicates, the basic /
  prefix-filtered / inline physical implementations, and the cost-based
  optimizer;
* :mod:`repro.joins` — similarity joins built on SSJoin (edit, Jaccard,
  GES, hamming, soundex, co-occurrence, soft-FD, top-k) plus the direct-UDF
  and customized-edit-join baselines;
* :mod:`repro.data` — deterministic synthetic datasets;
* :mod:`repro.bench` — the sweep harness regenerating the paper's tables
  and figures.

Quickstart::

    from repro import edit_similarity_join
    result = edit_similarity_join(["microsoft corp", "mcrosoft corp"],
                                  threshold=0.8)
    for pair in result:
        print(pair.left, "~", pair.right, pair.similarity)
"""

from repro.core import (
    ExecutionMetrics,
    OverlapPredicate,
    PreparedRelation,
    SSJoin,
    SSJoinResult,
    choose_implementation,
    ssjoin,
)
from repro.joins import (
    MatchPair,
    SimilarityJoinResult,
    cooccurrence_join,
    cosine_join,
    direct_join,
    edit_distance_join,
    edit_similarity_join,
    fd_agreement_join,
    ges_join,
    gravano_edit_join,
    jaccard_containment_join,
    jaccard_resemblance_join,
    overlap_join,
    set_hamming_join,
    soundex_join,
    string_hamming_join,
    topk_matches,
)

__version__ = "1.0.0"

__all__ = [
    "ExecutionMetrics",
    "OverlapPredicate",
    "PreparedRelation",
    "SSJoin",
    "SSJoinResult",
    "choose_implementation",
    "ssjoin",
    "MatchPair",
    "SimilarityJoinResult",
    "cooccurrence_join",
    "cosine_join",
    "direct_join",
    "edit_distance_join",
    "edit_similarity_join",
    "fd_agreement_join",
    "ges_join",
    "gravano_edit_join",
    "jaccard_containment_join",
    "jaccard_resemblance_join",
    "overlap_join",
    "set_hamming_join",
    "soundex_join",
    "string_hamming_join",
    "topk_matches",
    "__version__",
]
