"""Batch-vs-row execution benchmark: the Layer-8 vectorization headroom.

Two measurements back the ``batch_exec`` block of BENCH_core.json and
the ``repro bench`` CLI command:

* :func:`pipeline_sweep` — a ``TableScan -> Select -> Extend -> Project``
  plan over a synthetic orders table (the 10^5–10^6-row sweep), executed
  row-at-a-time (``batch_size=0``) and vectorized at several morsel
  sizes.  The join-free plan isolates exactly the per-row interpreter
  overhead the batch protocol amortizes: specialized selection kernels,
  column slicing, batched expression evaluation.
* :func:`fig12_headroom` — the composed Fig-12 Jaccard join plan at one
  row count (CI's batch-smoke point is 60k), batch vs row.  The SSJoin
  kernel dominates this plan, so the expected ratio is ~1.0x; the block
  records it to pin "vectorization never regresses the end-to-end join".

Both return plain dicts so ``run_core_bench`` embeds them verbatim, and
both verify equivalence while timing: every configuration must produce
bit-identical rows and (for the join) exactly equal deterministic
counters, or they raise.
"""

from __future__ import annotations

import contextlib
import gc
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import BenchmarkConfigError
from repro.relational.aggregates import (
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.relational.batch import default_batch_size
from repro.relational.catalog import Catalog
from repro.relational.context import ExecutionContext
from repro.relational.expressions import FunctionCall, col
from repro.relational.plan import (
    SSJOIN_RESULT_SCHEMA,
    Extend,
    GroupBy,
    OrderBy,
    PlanNode,
    Project,
    Select,
    TableScan,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = [
    "aggregate_plan",
    "aggregate_sweep",
    "fig12_headroom",
    "orders_relation",
    "pipeline_plan",
    "pipeline_sweep",
    "ssjoin_result_relation",
    "time_plan",
]

#: Morsel sizes the sweep compares against the row path (0 = row path).
SWEEP_BATCH_SIZES: Tuple[int, ...] = (1024, 4096, 16384)

_ORDERS_SCHEMA = Schema(("order_id", "customer", "qty", "price"))
_CUSTOMERS = tuple(f"customer-{i:03d}" for i in range(257))


def orders_relation(rows: int, seed: int = 20060403) -> Relation:
    """A deterministic synthetic orders table of *rows* rows."""
    rng = random.Random(seed)
    out = []
    for i in range(rows):
        out.append(
            (
                i,
                _CUSTOMERS[rng.randrange(len(_CUSTOMERS))],
                rng.randrange(1, 20),
                round(rng.uniform(1.0, 200.0), 2),
            )
        )
    return Relation(_ORDERS_SCHEMA, out, name="orders")


def pipeline_plan() -> PlanNode:
    """The sweep's plan: scan -> fused-AND select -> extend -> project.

    Shapes chosen to light up every vectorized kernel: two constant
    comparisons fused by AND (selection vectors + set-membership
    intersection), an all-ColumnRef FunctionCall extend (``map`` over
    zipped columns), and a mixed name/expression projection.
    """
    scan = TableScan("orders")
    selected = Select(scan, (col("qty") >= 3).and_(col("price") < 150.0))
    total = FunctionCall(
        "TOTAL", lambda q, p: q * p, (col("qty"), col("price"))
    )
    extended = Extend(selected, "total", total)
    return Project(
        extended, ["customer", "total", ("discounted", col("total") * 0.9)]
    )


def ssjoin_result_relation(pairs: int, seed: int = 20060403) -> Relation:
    """A deterministic relation in the SSJoin output shape.

    Columns are exactly :data:`~repro.relational.plan.SSJOIN_RESULT_SCHEMA`
    (``a_r, a_s, overlap, norm_r, norm_s``) — the materialized join result
    the aggregation sweep groups over.  Sizing directly in output pairs
    (rather than running a join whose selectivity would couple pair count
    to corpus size) keeps the sweep a pure measurement of the aggregation
    and sort kernels.  ~64 pairs land on each ``a_r`` group, the Fig-12
    shape at its default threshold.
    """
    rng = random.Random(seed)
    groups = max(1, pairs // 64)
    rows = []
    for _ in range(pairs):
        overlap = float(rng.randrange(1, 12))
        rows.append(
            (
                f"r{rng.randrange(groups):06d}",
                f"s{rng.randrange(groups):06d}",
                overlap,
                overlap + round(rng.uniform(0.0, 8.0), 4),
                overlap + round(rng.uniform(0.0, 8.0), 4),
            )
        )
    return Relation(Schema(SSJOIN_RESULT_SCHEMA.names), rows, name="pairs")


def aggregate_plan() -> PlanNode:
    """The aggregation sweep's plan: scan -> hash aggregate -> sort.

    The SQL shape of the PR-9 acceptance query — ``SELECT a_r, COUNT(*),
    SUM/MIN/MAX/AVG ... GROUP BY a_r ORDER BY n DESC, a_r`` — over the
    materialized SSJoin result, compiled by hand so the bench depends
    only on the plan layer.  One accumulator of every kind keeps all
    per-kind batch update loops on the measured path, and the ORDER BY
    exercises the blocking argsort kernel over the aggregate's output.
    """
    scan = TableScan("pairs")
    grouped = GroupBy(
        scan,
        ["a_r"],
        [
            agg_count("n"),
            agg_sum("mass", col("overlap")),
            agg_min("lo", col("norm_s")),
            agg_max("hi", col("norm_s")),
            agg_avg("mean", col("overlap")),
        ],
    )
    return OrderBy(grouped, [("n", "desc"), "a_r"])


@contextlib.contextmanager
def _gc_quiesced():
    """Collected heap, collector off — the E16 timing methodology.

    The column lists the batch path allocates are GC-tracked containers;
    a cyclic collection landing mid-run walks every live tuple of the
    10^5–10^6-row input and charges the cost to whichever batch size
    happened to trip the threshold, which at these timescales swamps the
    row/batch delta being measured.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def time_plan(
    plan: PlanNode,
    catalog: Catalog,
    batch_size: Optional[int],
    repeats: int = 3,
) -> Tuple[float, Relation]:
    """Fastest-of-*repeats* wall time for one plan execution."""
    if repeats < 1:
        raise BenchmarkConfigError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result = None
    for _ in range(repeats):
        ctx = ExecutionContext(catalog=catalog, batch_size=batch_size)
        with _gc_quiesced():
            start = time.perf_counter()
            out = plan.execute(ctx)
            elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = out
    return best, result


def pipeline_sweep(
    row_counts: Sequence[int],
    repeats: int = 3,
    batch_sizes: Sequence[int] = SWEEP_BATCH_SIZES,
) -> Dict[str, Any]:
    """Row-path vs batch-path timings for the pipeline plan.

    Returns the ``batch_exec["pipeline"]`` block: one record per row
    count with the row-path seconds, per-morsel-size seconds, and the
    best-batch speedup.  Raises if any batch configuration's rows differ
    from the row path's (the sweep doubles as an equivalence check).
    """
    plan = pipeline_plan()
    records: List[Dict[str, Any]] = []
    for rows in row_counts:
        catalog = Catalog()
        catalog.register("orders", orders_relation(rows))
        row_seconds, row_result = time_plan(plan, catalog, 0, repeats)
        baseline = tuple(row_result.rows)
        sized: Dict[str, float] = {}
        for size in batch_sizes:
            seconds, result = time_plan(plan, catalog, size, repeats)
            if tuple(result.rows) != baseline:
                raise AssertionError(
                    f"batch_size={size} diverged from the row path "
                    f"at rows={rows}"
                )
            sized[str(size)] = seconds
        best = min(sized.values())
        records.append(
            {
                "rows": rows,
                "result_rows": len(baseline),
                "row_seconds": row_seconds,
                "batch_seconds": sized,
                "best_batch_seconds": best,
                "speedup": row_seconds / best if best > 0 else None,
            }
        )
    return {
        "plan": "TableScan -> Select(AND) -> Extend(udf) -> Project",
        "repeats": repeats,
        "batch_sizes": list(batch_sizes),
        "default_batch_size": default_batch_size(),
        "records": records,
    }


def aggregate_sweep(
    row_counts: Sequence[int],
    repeats: int = 3,
    batch_sizes: Sequence[int] = SWEEP_BATCH_SIZES,
) -> Dict[str, Any]:
    """Row-path vs batch-path timings for the aggregation plan (E18).

    Returns the ``batch_exec["aggregate"]`` block: one record per pair
    count with row-path seconds, per-morsel-size seconds, and the
    best-batch speedup.  Every batch configuration must reproduce the
    row path's rows bit for bit — group discovery order, sort ties,
    float sums and averages — or the sweep raises.
    """
    plan = aggregate_plan()
    records: List[Dict[str, Any]] = []
    for rows in row_counts:
        catalog = Catalog()
        catalog.register("pairs", ssjoin_result_relation(rows))
        row_seconds, row_result = time_plan(plan, catalog, 0, repeats)
        baseline = tuple(row_result.rows)
        sized: Dict[str, float] = {}
        for size in batch_sizes:
            seconds, result = time_plan(plan, catalog, size, repeats)
            if tuple(result.rows) != baseline:
                raise AssertionError(
                    f"batch_size={size} diverged from the row path "
                    f"at rows={rows}"
                )
            sized[str(size)] = seconds
        best = min(sized.values())
        records.append(
            {
                "rows": rows,
                "result_rows": len(baseline),
                "row_seconds": row_seconds,
                "batch_seconds": sized,
                "best_batch_seconds": best,
                "speedup": row_seconds / best if best > 0 else None,
            }
        )
    return {
        "plan": "TableScan -> GroupBy(a_r; count,sum,min,max,avg) "
                "-> OrderBy(n DESC, a_r)",
        "repeats": repeats,
        "batch_sizes": list(batch_sizes),
        "default_batch_size": default_batch_size(),
        "records": records,
    }


def fig12_headroom(
    rows: int, threshold: float = 0.8, repeats: int = 3
) -> Dict[str, Any]:
    """Batch vs row on the composed Fig-12 join plan at one row count.

    Times the full ``dedupe``-shaped plan (SSJoin + identity drop +
    similarity UDF + threshold filter + projection) with the batch
    protocol on (default morsel size) and off (``batch_size=0``),
    asserting bit-identical rows and exactly equal deterministic
    counters.  This is CI's batch-smoke assertion: ``speedup >= 1.0``
    within noise (the block stores the raw ratio; the CI gate applies
    its tolerance).
    """
    # Imported here: repro.joins sits above repro.bench in some paths and
    # pulls the tokenizer stack only this function needs.
    from repro.core.metrics import ExecutionMetrics
    from repro.core.predicate import OverlapPredicate
    from repro.core.prepared import NORM_WEIGHT, PreparedRelation
    from repro.data.corruptions import CorruptionConfig
    from repro.data.customers import CustomerConfig, generate_addresses
    from repro.joins.base import compose_join_plan, similarity_udf
    from repro.joins.jaccard_join import resolve_weights
    from repro.tokenize.words import words

    # The core bench's Fig-12 corpus parameters (benchmarks/conftest.py).
    values = generate_addresses(
        CustomerConfig(
            num_rows=rows,
            duplicate_fraction=0.25,
            seed=20060403,
            corruption=CorruptionConfig(
                char_edit_prob=0.35, max_char_edits=1, abbreviation_prob=0.55,
                token_drop_prob=0.15, token_swap_prob=0.45,
            ),
        )
    )
    table = resolve_weights("idf", words, values, values)
    prepared = PreparedRelation.from_strings(
        values, words, weights=table, norm=NORM_WEIGHT, name="R"
    )

    def resemblance(overlap: float, norm_r: float, norm_s: float) -> float:
        union = norm_r + norm_s - overlap
        return overlap / union if union else 1.0

    plan, _ = compose_join_plan(
        prepared,
        prepared,
        OverlapPredicate.two_sided(threshold),
        drop_identity=True,
        similarity=similarity_udf("JR", resemblance, "overlap", "norm_r", "norm_s"),
        keep=col("similarity") + 1e-9 >= threshold,
    )

    def run(batch_size: Optional[int]):
        best = float("inf")
        kept = None
        for _ in range(repeats):
            m = ExecutionMetrics()
            ctx = ExecutionContext(metrics=m, batch_size=batch_size)
            with _gc_quiesced():
                start = time.perf_counter()
                out = plan.execute(ctx)
                elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
                kept = (out, m)
        out, m = kept
        counters = {
            "candidate_pairs": m.candidate_pairs,
            "output_pairs": m.output_pairs,
            "verify": m.verify_stats(),
        }
        return best, tuple(out.rows), counters

    row_seconds, row_rows, row_counters = run(0)
    batch_seconds, batch_rows, batch_counters = run(None)
    if batch_rows != row_rows:
        raise AssertionError("batch path diverged from row path on Fig-12 plan")
    if batch_counters != row_counters:
        raise AssertionError(
            f"batch path counters diverged: {batch_counters} != {row_counters}"
        )
    return {
        "rows": rows,
        "threshold": threshold,
        "repeats": repeats,
        "result_rows": len(row_rows),
        "row_seconds": row_seconds,
        "batch_seconds": batch_seconds,
        "speedup": row_seconds / batch_seconds if batch_seconds > 0 else None,
        "counters": row_counters,
    }
