"""Cold-vs-warm-start storage sweep (EXPERIMENTS.md E19).

Measures what the Layer-10 persistence actually buys: the **cold** path
pays the full start-up tax on every run — tokenize the corpus, resolve
IDF weights, build the joint-frequency dictionary, sort-encode every
group, pack signatures — while the **warm**
path re-opens an ingested page file and adopts the persisted columnar
arrays (decode = array slicing off mmap'd pages, zero re-sorts). Both
paths then run the identical Fig-12 encoded-prefix join, so the delta is
purely encode-vs-page-I/O; result rows are asserted bit-identical before
any number is reported.

The resulting ``storage`` block rides in ``BENCH_core.json`` next to the
other ``repro-bench/v1`` blocks.
"""

from __future__ import annotations

import contextlib
import gc
import hashlib
import os
import tempfile
import time
from typing import Any, Dict, Iterator, Sequence

from repro.core.encoded import EncodingCache
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.joins.jaccard_join import resolve_weights
from repro.tokenize.words import words

__all__ = ["result_digest", "storage_sweep"]


def result_digest(relation: Any) -> str:
    """Order-insensitive content digest of a join result (row multiset).

    Stable across processes and worker counts — the cross-process
    bit-identity check the CI storage-smoke job greps for.
    """
    payload = "\n".join(sorted(map(repr, relation.rows)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@contextlib.contextmanager
def _gc_quiesced() -> Iterator[None]:
    """Collected heap, collector off — the E16/E17 timing methodology.

    The warm path materializes ~the whole page file as fresh containers
    right before its join; a cyclic collection landing mid-join walks
    that entire graph and charges the cost to whichever cell tripped the
    threshold, swamping the encode-vs-page-I/O delta being measured.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def storage_sweep(
    values: Sequence[str],
    thresholds: Sequence[float] = (0.80, 0.90),
    repeats: int = 3,
) -> Dict[str, Any]:
    """Time the Fig-12 join cold (rebuild everything) vs warm (from pages).

    Per repeat round the cold cell starts from the raw strings — IDF
    weights, :class:`PreparedRelation` and the encoding are all built
    inside the timed window, exactly a fresh process's start-up — and
    the warm cell re-opens the ingested table and adopts its persisted
    columns. Both cells end with the identical encoded-prefix join; the
    fastest round per cell wins. Raises if any warm result diverges
    from its cold twin.
    """
    table = resolve_weights("idf", words, values, values)

    def fresh_prepared() -> PreparedRelation:
        return PreparedRelation.from_strings(
            values, words, weights=table, norm=NORM_WEIGHT, name="R"
        )

    from repro.storage import ingest_prepared, open_table

    tmpdir = tempfile.mkdtemp(prefix="repro-storage-bench-")
    path = os.path.join(tmpdir, "fig12.rpsf")
    t0 = time.perf_counter()
    ingested = ingest_prepared(fresh_prepared(), path)
    ingest_seconds = time.perf_counter() - t0
    file_bytes = os.path.getsize(path)
    n_pages = ingested.reader.num_pages
    ingested.close()

    records = []
    for threshold in thresholds:
        predicate = OverlapPredicate.two_sided(threshold)
        best: Dict[str, Dict[str, Any]] = {}
        for _ in range(max(1, repeats)):
            # Cold: a fresh process owns only the raw strings — IDF
            # weights, the prepared relation, and every sort-encoded
            # signature are paid inside the timed window.
            with _gc_quiesced():
                m_cold = ExecutionMetrics()
                t0 = time.perf_counter()
                cold_weights = resolve_weights("idf", words, values, values)
                cold_prep = PreparedRelation.from_strings(
                    values, words,
                    weights=cold_weights, norm=NORM_WEIGHT, name="R",
                )
                cold_cache = EncodingCache()
                cold_cache.encode_pair(cold_prep, cold_prep, None, m_cold)
                cold_prep_seconds = time.perf_counter() - t0
                cold = SSJoin(cold_prep, cold_prep, predicate).execute(
                    "encoded-prefix", metrics=m_cold,
                    encoding_cache=cold_cache,
                )
            cold_cell = {
                "seconds": time.perf_counter() - t0,
                "prep_seconds": cold_prep_seconds,
                "digest": result_digest(cold.pairs),
                "pairs": len(cold.pairs),
            }

            # Warm: re-open the page file, seed the persisted encoding,
            # run the identical join — the start-up tax is page decode.
            with _gc_quiesced():
                cache = EncodingCache()
                m_warm = ExecutionMetrics()
                t0 = time.perf_counter()
                warm_table = open_table(path)
                warm_table.seed_cache(cache)
                warm_prep = warm_table.prepared()
                warm_prep_seconds = time.perf_counter() - t0
                warm = SSJoin(warm_prep, warm_prep, predicate).execute(
                    "encoded-prefix", metrics=m_warm, encoding_cache=cache
                )
            warm_cell = {
                "seconds": time.perf_counter() - t0,
                "prep_seconds": warm_prep_seconds,
                "digest": result_digest(warm.pairs),
                "pairs": len(warm.pairs),
                "encode_cache": cache.stats(),
            }
            warm_table.close()
            if warm_cell["digest"] != cold_cell["digest"]:
                raise AssertionError(
                    f"storage sweep diverged at threshold {threshold}: "
                    f"cold {cold_cell['digest']} != warm {warm_cell['digest']}"
                )
            for mode, cell in (("cold", cold_cell), ("warm", warm_cell)):
                if mode not in best or cell["seconds"] < best[mode]["seconds"]:
                    best[mode] = cell
        cold_s = best["cold"]["seconds"]
        warm_s = best["warm"]["seconds"]
        records.append({
            "threshold": threshold,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s if warm_s > 0 else None,
            "cold_prep_seconds": best["cold"]["prep_seconds"],
            "warm_prep_seconds": best["warm"]["prep_seconds"],
            "pairs": best["cold"]["pairs"],
            "digest": best["cold"]["digest"],
            "warm_encode_cache": best["warm"]["encode_cache"],
        })

    return {
        "rows": len(values),
        "implementation": "encoded-prefix",
        "ingest_seconds": ingest_seconds,
        "file_bytes": file_bytes,
        "n_pages": n_pages,
        "records": records,
    }
