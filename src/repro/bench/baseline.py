"""Regression baselines: machine-independent benchmark counters on disk.

Wall-clock times vary across machines; the *counters* — candidate pairs,
equi-join rows, UDF calls, result pairs — are deterministic for a given
seed and dataset. This module saves those counters as a JSON baseline and
compares later runs against it, so a refactor that silently weakens the
prefix filter (more candidates) or breaks a reduction (different result
count) fails CI even when it does not change wall time much.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.core.metrics import ExecutionMetrics
from repro.errors import BenchmarkConfigError

__all__ = ["CounterBaseline", "counters_of"]

#: The metrics fields treated as machine-independent.
COUNTER_FIELDS = (
    "prepared_rows",
    "prefix_rows",
    "equijoin_rows",
    "candidate_pairs",
    "output_pairs",
    "similarity_comparisons",
    "result_pairs",
)


def counters_of(metrics: ExecutionMetrics) -> Dict[str, int]:
    """Extract the machine-independent counters from a metrics object."""
    return {name: getattr(metrics, name) for name in COUNTER_FIELDS}


@dataclass
class CounterBaseline:
    """A named collection of counter snapshots, persisted as JSON."""

    path: Path
    entries: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CounterBaseline":
        """Load a baseline file; missing file gives an empty baseline."""
        p = Path(path)
        if not p.exists():
            return cls(path=p)
        data = json.loads(p.read_text())
        if not isinstance(data, dict):
            raise BenchmarkConfigError(f"{p} does not contain a baseline object")
        return cls(path=p, entries={k: dict(v) for k, v in data.items()})

    def record(self, name: str, metrics: ExecutionMetrics) -> None:
        """Store (or overwrite) the counters of one experiment."""
        self.entries[name] = counters_of(metrics)

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self.entries, indent=2, sort_keys=True) + "\n")

    def compare(
        self,
        name: str,
        metrics: ExecutionMetrics,
        exact: bool = False,
        tolerance: float = 0.05,
    ) -> List[str]:
        """Differences between *metrics* and the stored entry *name*.

        Returns human-readable violation strings (empty = pass). With
        ``exact=False`` counters may drift by *tolerance* (relative) —
        useful when a dataset is regenerated with a slightly different
        size; with ``exact=True`` any change is a violation.
        """
        if name not in self.entries:
            return [f"no baseline entry named {name!r} (run record() first)"]
        stored = self.entries[name]
        current = counters_of(metrics)
        problems = []
        for field_name in COUNTER_FIELDS:
            expected = stored.get(field_name)
            got = current[field_name]
            if expected is None:
                continue
            if exact:
                if got != expected:
                    problems.append(
                        f"{name}.{field_name}: expected {expected}, got {got}"
                    )
            else:
                limit = max(abs(expected) * tolerance, 0.5)
                if abs(got - expected) > limit:
                    problems.append(
                        f"{name}.{field_name}: expected {expected}±{tolerance:.0%}, "
                        f"got {got}"
                    )
        return problems

    def check(self, name: str, metrics: ExecutionMetrics, **kwargs) -> None:
        """Like :meth:`compare` but raises on any violation."""
        problems = self.compare(name, metrics, **kwargs)
        if problems:
            raise BenchmarkConfigError(
                "counter regression:\n  " + "\n  ".join(problems)
            )
