"""Benchmark harness: threshold sweeps with phase-level timing capture.

The paper's figures are sweeps — each similarity join run at thresholds
0.80–0.95 under each SSJoin implementation, with per-phase times (Prep /
Prefix-filter / SSJoin / Filter). :class:`SweepRunner` runs such sweeps over
any join callable that returns a
:class:`~repro.joins.base.SimilarityJoinResult` and collects
:class:`SweepRecord` rows that the reporting module renders into the
paper's tables and figure series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.metrics import ExecutionMetrics
from repro.errors import BenchmarkConfigError
from repro.joins.base import SimilarityJoinResult

__all__ = ["SweepRecord", "SweepRunner", "time_call"]


@dataclass
class SweepRecord:
    """One (threshold, implementation) cell of a figure."""

    label: str
    threshold: float
    implementation: str
    total_seconds: float
    phase_seconds: Dict[str, float]
    candidate_pairs: int
    output_pairs: int
    similarity_comparisons: int
    result_pairs: int
    prepared_rows: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def phase(self, name: str) -> float:
        return self.phase_seconds.get(name, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of this cell (the ``repro-bench/v1`` record
        shape — see EXPERIMENTS.md for the file-level schema)."""
        return {
            "label": self.label,
            "threshold": self.threshold,
            "implementation": self.implementation,
            "total_seconds": self.total_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "candidate_pairs": self.candidate_pairs,
            "output_pairs": self.output_pairs,
            "similarity_comparisons": self.similarity_comparisons,
            "result_pairs": self.result_pairs,
            "prepared_rows": self.prepared_rows,
            "extra": dict(self.extra),
        }


class SweepRunner:
    """Run a join callable across thresholds × implementations.

    The callable signature is ``fn(threshold, implementation) ->
    SimilarityJoinResult``; dataset construction should be closed over so
    it is not re-timed per cell (mirroring the paper, whose Prep phase is
    the *set preparation*, not data loading).
    """

    def __init__(self, label: str, fn: Callable[[float, str], SimilarityJoinResult]):
        self.label = label
        self.fn = fn
        self.records: List[SweepRecord] = []

    def run(
        self,
        thresholds: Sequence[float],
        implementations: Sequence[str] = ("basic", "prefix", "inline"),
        repeats: int = 1,
    ) -> List[SweepRecord]:
        """Execute the sweep; keeps the fastest repeat per cell."""
        if repeats < 1:
            raise BenchmarkConfigError(f"repeats must be >= 1, got {repeats}")
        if not thresholds:
            raise BenchmarkConfigError("thresholds must be non-empty")
        for threshold in thresholds:
            for implementation in implementations:
                best: Optional[SweepRecord] = None
                for _ in range(repeats):
                    result = self.fn(threshold, implementation)
                    record = self._record(threshold, implementation, result)
                    if best is None or record.total_seconds < best.total_seconds:
                        best = record
                assert best is not None
                self.records.append(best)
        return self.records

    def _record(
        self, threshold: float, implementation: str, result: SimilarityJoinResult
    ) -> SweepRecord:
        m: ExecutionMetrics = result.metrics
        extra: Dict[str, Any] = {}
        if m.parallel_stats is not None:
            # The parallel executor's telemetry becomes the record's (and
            # the repro-bench/v1 JSON's) ``parallel`` block.
            extra["parallel"] = m.parallel_stats
        if m.verify_candidates:
            # Verification-engine per-stage counters (candidates in,
            # bitmap-pruned, position-pruned, merges run/early-exited).
            extra["verify"] = m.verify_stats()
        return SweepRecord(
            extra=extra,
            label=self.label,
            threshold=threshold,
            implementation=result.implementation,
            total_seconds=m.total_seconds,
            phase_seconds=dict(m.phase_seconds),
            candidate_pairs=m.candidate_pairs,
            output_pairs=m.output_pairs,
            similarity_comparisons=m.similarity_comparisons,
            result_pairs=m.result_pairs,
            prepared_rows=m.prepared_rows,
        )

    def by_implementation(self, implementation: str) -> List[SweepRecord]:
        return [r for r in self.records if r.implementation == implementation]


def time_call(fn: Callable[[], Any]) -> tuple:
    """``(seconds, result)`` of one call — for ad-hoc measurements."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result
