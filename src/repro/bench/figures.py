"""ASCII figures: the paper's stacked-bar charts, in a terminal.

Figures 10–13 are stacked bars (one bar per threshold, one stack segment
per phase). :func:`stacked_bars` reproduces that visual in monospaced
text, so the artifacts in ``benchmarks/results/`` can be *read* the way
the paper's figures are.

>>> print(stacked_bars(
...     [("0.80", {"prep": 1.0, "join": 3.0}), ("0.90", {"prep": 1.0, "join": 1.0})],
...     width=8))
legend: prep=# join=*
0.80 |##******  4
0.90 |####****  2
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.bench.harness import SweepRecord
from repro.core.metrics import PHASES

__all__ = ["stacked_bars", "figure_from_records", "series_chart"]

#: Fill characters assigned to stack segments, in order of appearance.
_FILLS = "#*=+~o%@"


def stacked_bars(
    rows: Sequence[Tuple[str, Mapping[str, float]]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labeled stacked bars.

    *rows* is ``[(label, {segment: value, ...}), ...]``; every bar is scaled
    against the largest total so relative heights match the paper's charts.
    """
    if not rows:
        return "(no data)"
    segments: List[str] = []
    for _, parts in rows:
        for name in parts:
            if name not in segments:
                segments.append(name)
    fills = {name: _FILLS[i % len(_FILLS)] for i, name in enumerate(segments)}
    max_total = max(sum(parts.values()) for _, parts in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)

    lines = ["legend: " + " ".join(f"{n}={fills[n]}" for n in segments)]
    for label, parts in rows:
        total = sum(parts.values())
        bar = ""
        for name in segments:
            value = parts.get(name, 0.0)
            bar += fills[name] * int(round(value / max_total * width))
        total_text = f"{total:g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}  {total_text}")
    return "\n".join(lines)


def figure_from_records(
    records: Sequence[SweepRecord],
    title: str = "",
    width: int = 50,
) -> str:
    """One figure panel from sweep records: a bar per threshold, stacked by
    phase — the text rendition of a Figure 10/12/13 panel."""
    ordered = sorted(records, key=lambda r: r.threshold)
    rows = [
        (
            f"{r.threshold:.2f}",
            {p: r.phase(p) for p in PHASES if r.phase(p) > 0},
        )
        for r in ordered
    ]
    chart = stacked_bars(rows, width=width, unit="s")
    return f"{title}\n{chart}" if title else chart


def series_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Grouped horizontal bars comparing several series per x value.

    *series* is ``{name: [(x, value), ...]}`` — the shape produced by
    :func:`repro.bench.reporting.render_series`.
    """
    if not series:
        return "(no data)"
    xs = sorted({x for points in series.values() for x, _ in points})
    max_value = max((v for points in series.values() for _, v in points), default=1.0) or 1.0
    name_width = max(len(n) for n in series)

    lines = []
    for x in xs:
        lines.append(f"x={x:g}")
        for name in series:
            value = dict(series[name]).get(x)
            if value is None:
                continue
            bar = "#" * int(round(value / max_value * width))
            lines.append(f"  {name.ljust(name_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)
