"""Plain-text rendering of the paper's tables and figure series.

The paper's figures are stacked bar charts over threshold sweeps; in a
terminal reproduction the equivalent artifact is a table with one row per
threshold and one column per phase, plus a total — which is what
:func:`render_phase_table` prints. :func:`render_table` handles the plain
tables (Table 1, Table 2).
"""

from __future__ import annotations

import json
import platform
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.bench.harness import SweepRecord
from repro.core.metrics import PHASES

__all__ = [
    "render_table",
    "render_phase_table",
    "render_scaling_table",
    "render_series",
    "render_json",
    "scaling_summary",
    "speedup_table",
]

#: Version tag of the machine-readable sweep format (see EXPERIMENTS.md).
BENCH_JSON_SCHEMA = "repro-bench/v1"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule.

    >>> print(render_table(["a", "b"], [[1, 22]]))
    a  b
    -----
    1  22
    """
    materialized = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    table_width = sum(widths) + 2 * (len(widths) - 1)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    lines = [header, "-" * table_width]
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_phase_table(records: Sequence[SweepRecord], title: str = "") -> str:
    """One figure panel: threshold rows × phase columns, seconds.

    Mirrors a stacked bar chart of the paper: each row's phase cells are
    the stack segments, the last column the bar height.
    """
    headers = ["threshold", "impl"] + list(PHASES) + ["total_s", "pairs"]
    rows = []
    for r in records:
        rows.append(
            [f"{r.threshold:.2f}", r.implementation]
            + [f"{r.phase(p):.3f}" for p in PHASES]
            + [f"{r.total_seconds:.3f}", r.result_pairs]
        )
    table = render_table(headers, rows)
    return f"{title}\n{table}" if title else table


def render_series(
    records: Sequence[SweepRecord],
    value: str = "total_seconds",
) -> Dict[str, List[tuple]]:
    """Figure series: {implementation: [(threshold, value), ...]}.

    *value* may be any numeric SweepRecord attribute
    (``total_seconds``, ``candidate_pairs``, ``similarity_comparisons``...).
    """
    series: Dict[str, List[tuple]] = {}
    for r in records:
        series.setdefault(r.implementation, []).append(
            (r.threshold, getattr(r, value))
        )
    for points in series.values():
        points.sort()
    return series


def speedup_table(
    records: Sequence[SweepRecord],
    baseline: str,
    contender: str,
) -> Dict[float, float]:
    """``{threshold: baseline_seconds / contender_seconds}`` — how many
    times faster *contender* ran than *baseline* at each threshold."""
    base = {r.threshold: r.total_seconds for r in records if r.implementation == baseline}
    cont = {r.threshold: r.total_seconds for r in records if r.implementation == contender}
    return {
        t: base[t] / cont[t]
        for t in sorted(base)
        if t in cont and cont[t] > 0
    }


def scaling_summary(records: Sequence[SweepRecord]) -> List[Dict[str, Any]]:
    """Speedup-vs-workers rows from records carrying a ``parallel`` block.

    Records are grouped by threshold; within each group the ``workers=1``
    record is the baseline.  Each row reports both the measured wall time
    and the modeled wall time (parent work + shard critical path — see
    :class:`repro.parallel.ParallelReport`), and the speedup is computed
    on the modeled figure, which is the one that holds on a machine with
    a core per worker; measured wall cannot shrink on fewer cores.
    Records without parallel telemetry are ignored.
    """
    cells: List[Dict[str, Any]] = []
    for r in records:
        p = r.extra.get("parallel")
        if not p:
            continue
        cells.append(
            {
                "label": r.label,
                "threshold": r.threshold,
                "implementation": r.implementation,
                "workers": int(p["workers"]),
                "mode": p["mode"],
                "strategy": p["strategy"],
                "n_shards": p.get("n_shards", 0),
                "wall_seconds": p["wall_seconds"],
                "modeled_wall_seconds": p.get(
                    "modeled_wall_seconds", p["wall_seconds"]
                ),
            }
        )
    baselines = {
        c["threshold"]: c["modeled_wall_seconds"]
        for c in cells
        if c["workers"] == 1
    }
    for c in cells:
        base = baselines.get(c["threshold"])
        c["speedup"] = (
            base / c["modeled_wall_seconds"]
            if base and c["modeled_wall_seconds"] > 0
            else None
        )
    cells.sort(key=lambda c: (c["threshold"], c["workers"]))
    return cells


def render_scaling_table(records: Sequence[SweepRecord], title: str = "") -> str:
    """The worker-scaling panel: threshold × workers rows with speedups."""
    rows = []
    for c in scaling_summary(records):
        rows.append(
            [
                f"{c['threshold']:.2f}",
                c["implementation"],
                c["workers"],
                c["strategy"] or "-",
                c["n_shards"],
                f"{c['wall_seconds']:.3f}",
                f"{c['modeled_wall_seconds']:.3f}",
                "-" if c["speedup"] is None else f"{c['speedup']:.2f}x",
            ]
        )
    table = render_table(
        ["threshold", "impl", "workers", "strategy", "shards",
         "wall_s", "modeled_s", "speedup"],
        rows,
    )
    return f"{title}\n{table}" if title else table


def render_json(
    records: Sequence[SweepRecord],
    label: str,
    meta: Optional[Dict[str, Any]] = None,
    speedups: Optional[Dict[str, Dict[float, float]]] = None,
    parallel: Optional[Sequence[SweepRecord]] = None,
    verify_engine: Optional[Dict[str, Any]] = None,
    batch_exec: Optional[Dict[str, Any]] = None,
    storage: Optional[Dict[str, Any]] = None,
) -> str:
    """The machine-readable sweep artifact (``repro-bench/v1``).

    One JSON document per sweep: environment header, one record per
    (implementation × threshold) cell with per-phase timings, and optional
    precomputed speedup series keyed ``"baseline/contender"``. Passing
    *parallel* (records from a worker-scaling sweep, each carrying the
    executor's telemetry in ``extra["parallel"]``) adds a top-level
    ``parallel`` block: the raw scaling records plus the
    speedup-vs-workers rows of :func:`scaling_summary`. Passing
    *verify_engine* (the engine-on vs engine-off comparison assembled by
    the core bench) adds it verbatim as a top-level ``verify_engine``
    block: per-threshold prune counters and merge-reduction/speedup
    figures. Passing *batch_exec* (the batch-vs-row sweep assembled by
    :mod:`repro.bench.batch_bench`) likewise adds a top-level
    ``batch_exec`` block, and *storage* (the cold-vs-warm-start
    comparison from :mod:`repro.bench.storage_bench`) a top-level
    ``storage`` block. The format is documented in EXPERIMENTS.md;
    CI uploads these as artifacts.
    """
    doc: Dict[str, Any] = {
        "schema": BENCH_JSON_SCHEMA,
        "label": label,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "meta": dict(meta or {}),
        "records": [r.to_dict() for r in records],
    }
    if speedups is not None:
        doc["speedups"] = {
            pair: {f"{t:.2f}": s for t, s in series.items()}
            for pair, series in speedups.items()
        }
    if parallel is not None:
        doc["parallel"] = {
            "records": [r.to_dict() for r in parallel],
            "scaling": scaling_summary(parallel),
        }
    if verify_engine is not None:
        doc["verify_engine"] = dict(verify_engine)
    if batch_exec is not None:
        doc["batch_exec"] = dict(batch_exec)
    if storage is not None:
        doc["storage"] = dict(storage)
    return json.dumps(doc, indent=2, sort_keys=False)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
