"""Benchmark harness and reporting for the paper's tables and figures."""

from repro.bench.baseline import COUNTER_FIELDS, CounterBaseline, counters_of
from repro.bench.figures import figure_from_records, series_chart, stacked_bars
from repro.bench.harness import SweepRecord, SweepRunner, time_call
from repro.bench.reporting import (
    render_json,
    render_phase_table,
    render_series,
    render_table,
    speedup_table,
)

__all__ = [
    "COUNTER_FIELDS",
    "CounterBaseline",
    "counters_of",
    "figure_from_records",
    "series_chart",
    "stacked_bars",
    "SweepRecord",
    "SweepRunner",
    "time_call",
    "render_json",
    "render_phase_table",
    "render_series",
    "render_table",
    "speedup_table",
]
