"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = [
    "ReproError",
    "SchemaError",
    "UnknownColumnError",
    "DuplicateColumnError",
    "UnknownTableError",
    "DuplicateTableError",
    "PlanError",
    "PredicateError",
    "TokenizationError",
    "WeightError",
    "OptimizerError",
    "BenchmarkConfigError",
    "DataGenerationError",
    "AnalysisError",
    "StorageError",
    "StaleArtifactError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or incompatible with an operation."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the schema."""

    def __init__(self, column: str, available: Iterable[str] = ()) -> None:
        self.column = column
        self.available: Tuple[str, ...] = tuple(available)
        msg = f"unknown column {column!r}"
        if self.available:
            msg += f"; available columns: {', '.join(self.available)}"
        super().__init__(msg)


class DuplicateColumnError(SchemaError):
    """A schema would contain the same column name twice."""

    def __init__(self, column: str):
        self.column = column
        super().__init__(f"duplicate column {column!r}")


class UnknownTableError(ReproError):
    """A referenced table is not registered in the catalog."""

    def __init__(self, table: str):
        self.table = table
        super().__init__(f"unknown table {table!r}")


class DuplicateTableError(ReproError):
    """A table with this name is already registered in the catalog."""

    def __init__(self, table: str):
        self.table = table
        super().__init__(f"table {table!r} already exists")


class PlanError(ReproError):
    """A logical plan is structurally invalid or cannot be executed."""


class PredicateError(ReproError):
    """An SSJoin overlap predicate is malformed (e.g. non-positive bound)."""


class TokenizationError(ReproError):
    """A string could not be mapped to a token set."""


class WeightError(ReproError):
    """An element weight is invalid (weights must be positive and finite)."""


class OptimizerError(ReproError):
    """The cost-based optimizer could not pick an implementation."""


class BenchmarkConfigError(ReproError):
    """A benchmark harness configuration is inconsistent."""


class DataGenerationError(ReproError):
    """A synthetic data generator received inconsistent parameters."""


class StorageError(ReproError):
    """A page file is malformed, truncated, or failed a checksum."""


class StaleArtifactError(StorageError):
    """A persisted artifact's dictionary-generation fingerprint disagrees
    with the dictionary it is being attached to (see analysis rule SSJ114)."""


class AnalysisError(ReproError):
    """Static analysis rejected a plan before execution.

    Raised by ``SSJoin(..., verify=True)`` and the plan verifier when one
    or more error-severity diagnostics were found. The structured
    diagnostics are kept on :attr:`diagnostics` so callers (and tests) can
    inspect rule ids and locations instead of parsing the message.
    """

    def __init__(self, message: str, diagnostics: Sequence[object] = ()) -> None:
        self.diagnostics: Tuple[object, ...] = tuple(diagnostics)
        if self.diagnostics:
            lines = "\n".join(f"  {d}" for d in self.diagnostics)
            message = f"{message}\n{lines}"
        super().__init__(message)
