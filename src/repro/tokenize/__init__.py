"""String → weighted-set mapping: tokenizers, encodings, weights.

This subpackage implements Section 2's "Set(σ)" machinery: q-gram and word
tokenizers, the multiset ordinal encoding of Section 4.3.1, the weighted-set
abstraction with norms and overlaps, IDF weight tables with the paper's
exact formula, and soundex codes.
"""

from repro.tokenize.elements import Element, ordinal_decode, ordinal_encode
from repro.tokenize.qgrams import num_qgrams, padded_qgrams, positional_qgrams, qgrams
from repro.tokenize.sets import WeightedSet
from repro.tokenize.soundex import soundex
from repro.tokenize.weights import (
    IDFWeights,
    TableWeights,
    UnitWeights,
    WeightTable,
    build_weighted_set,
)
from repro.tokenize.words import word_set, words

__all__ = [
    "Element",
    "ordinal_decode",
    "ordinal_encode",
    "num_qgrams",
    "padded_qgrams",
    "positional_qgrams",
    "qgrams",
    "WeightedSet",
    "soundex",
    "IDFWeights",
    "TableWeights",
    "UnitWeights",
    "WeightTable",
    "build_weighted_set",
    "word_set",
    "words",
]
