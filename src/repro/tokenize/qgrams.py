"""q-gram tokenization.

``QGSet_q(σ)`` in the paper is the multiset of all contiguous length-*q*
substrings of σ. Two practical variants are provided:

* **unpadded** — exactly the paper's definition: a string of length L yields
  ``L − q + 1`` q-grams (none if L < q). This is the variant Property 4's
  count filter is stated for, so the edit-distance join uses it.
* **padded** — the common practice (also from Gravano et al.) of extending
  the string with ``q − 1`` copies of sentinel characters on each side so
  prefixes/suffixes are represented; yields ``L + q − 1`` q-grams.

Positional q-grams (``(position, gram)`` pairs) support the custom edit
join's position filter.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TokenizationError

__all__ = ["qgrams", "padded_qgrams", "positional_qgrams", "num_qgrams"]

#: Sentinel characters used for padding; chosen outside common text ranges.
PAD_LEFT = ""
PAD_RIGHT = ""


def _check_q(q: int) -> None:
    if q < 1:
        raise TokenizationError(f"q must be >= 1, got {q}")


def qgrams(text: str, q: int = 3, lowercase: bool = True) -> List[str]:
    """All contiguous q-grams of *text*, in order, with duplicates.

    >>> qgrams("abcd", 2)
    ['ab', 'bc', 'cd']
    >>> qgrams("ab", 3)
    []
    """
    _check_q(q)
    if lowercase:
        text = text.lower()
    if len(text) < q:
        return []
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def padded_qgrams(text: str, q: int = 3, lowercase: bool = True) -> List[str]:
    """q-grams of *text* padded with q−1 sentinels on each side.

    >>> padded_qgrams("ab", 2, lowercase=False)[0].endswith("a")
    True
    >>> len(padded_qgrams("ab", 2))
    3
    """
    _check_q(q)
    if lowercase:
        text = text.lower()
    padded = PAD_LEFT * (q - 1) + text + PAD_RIGHT * (q - 1)
    if len(padded) < q:
        return []
    return [padded[i : i + q] for i in range(len(padded) - q + 1)]


def positional_qgrams(
    text: str, q: int = 3, lowercase: bool = True
) -> List[Tuple[int, str]]:
    """``(position, gram)`` pairs; positions are 0-based string offsets.

    Used by the customized edit join's position filter: matching q-grams of
    strings within edit distance ε must occur at positions differing by at
    most ε.
    """
    return list(enumerate(qgrams(text, q=q, lowercase=lowercase)))


def num_qgrams(length: int, q: int = 3) -> int:
    """Number of unpadded q-grams of a string of the given *length*."""
    _check_q(q)
    return max(0, length - q + 1)
