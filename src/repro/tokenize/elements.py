"""Multiset → set ordinal encoding (paper Section 4.3.1).

"We convert each value in R.B and S.B into an ordered pair containing an
ordinal number to distinguish it from its duplicates. Thus, for example, the
multi-set {1, 1, 2} would be converted to {⟨1,1⟩, ⟨1,2⟩, ⟨2,1⟩}."

After this encoding, multiset intersection between two encoded sets equals
plain set intersection — the i-th copy of a token on one side matches
exactly the i-th copy on the other — which is what lets the engine compute
multiset overlaps with ordinary equi-joins.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["ordinal_encode", "ordinal_decode", "Element"]

#: An encoded multiset element: (token, occurrence_index) with 1-based index.
Element = Tuple[Any, int]


def ordinal_encode(tokens: Iterable[Any]) -> List[Element]:
    """Encode a token multiset as ``(token, ordinal)`` pairs.

    Ordinals are assigned in input order, starting at 1, so the encoding is
    deterministic for a given token sequence and two encodings of the same
    *multiset* (regardless of order) contain the same pairs.

    >>> ordinal_encode(["a", "a", "b"])
    [('a', 1), ('a', 2), ('b', 1)]
    """
    seen: Dict[Any, int] = {}
    out: List[Element] = []
    for token in tokens:
        n = seen.get(token, 0) + 1
        seen[token] = n
        out.append((token, n))
    return out


def ordinal_decode(elements: Iterable[Element]) -> List[Any]:
    """Invert :func:`ordinal_encode`: recover the token multiset (sorted
    within each token by ordinal, tokens in first-appearance order).

    >>> ordinal_decode([('a', 1), ('a', 2), ('b', 1)])
    ['a', 'a', 'b']
    """
    counts: Dict[Any, int] = {}
    order: List[Any] = []
    for token, ordinal in elements:
        if token not in counts:
            counts[token] = 0
            order.append(token)
        counts[token] = max(counts[token], ordinal)
    out: List[Any] = []
    for token in order:
        out.extend([token] * counts[token])
    return out
