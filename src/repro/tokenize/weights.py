"""Element weight tables: unit weights, IDF weights, custom weights.

The paper's experiments "assign IDF weights to elements of sets (tokens) as
follows: log((|R|+|S|)/f_t), where f_t is the total number of R[A] and S[A]
values which contain t as a token". That exact formula is implemented by
:meth:`IDFWeights.fit`.

A weight table maps a *token* to a fixed positive weight; the ordinal pairs
produced by :func:`repro.tokenize.elements.ordinal_encode` inherit the
weight of their underlying token, honoring the fixed-weight-per-element
model of Section 2.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

from repro.errors import WeightError
from repro.tokenize.sets import WeightedSet

__all__ = ["WeightTable", "UnitWeights", "IDFWeights", "TableWeights", "build_weighted_set"]


class WeightTable:
    """Interface: token -> positive weight."""

    def weight(self, token: Any) -> float:
        raise NotImplementedError

    def element_weight(self, element: Any) -> float:
        """Weight of a set element.

        Ordinal-encoded elements ``(token, n)`` weigh as their token; any
        other element weighs as itself as a token.
        """
        if isinstance(element, tuple) and len(element) == 2 and isinstance(element[1], int):
            return self.weight(element[0])
        return self.weight(element)


class UnitWeights(WeightTable):
    """Every token weighs 1.0 — the paper's unweighted special case."""

    def weight(self, token: Any) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "UnitWeights()"


class IDFWeights(WeightTable):
    """Inverse document frequency weights with the paper's formula.

    ``w(t) = log((|R| + |S|) / f_t)`` where ``f_t`` counts the strings
    (documents) containing ``t``. Unseen tokens receive the weight of a
    token occurring once (``log(N / 1)``), the most informative weight,
    mirroring how out-of-vocabulary tokens are maximally discriminative.

    Weights are floored at a small positive epsilon: a token occurring in
    every document would otherwise get weight 0, which the positive-weight
    model forbids.
    """

    #: Floor keeping weights strictly positive.
    MIN_WEIGHT = 1e-6

    def __init__(self, num_documents: int, document_frequency: Mapping[Any, int]):
        if num_documents <= 0:
            raise WeightError(f"num_documents must be positive, got {num_documents}")
        self.num_documents = num_documents
        self.document_frequency: Dict[Any, int] = dict(document_frequency)

    @classmethod
    def fit(cls, token_lists: Iterable[Sequence[Any]]) -> "IDFWeights":
        """Fit from an iterable of token lists (one list per string/record).

        For a self-join pass the corpus once; for an R–S join pass the
        concatenation of both sides so ``N = |R| + |S|`` as in the paper.
        """
        df: Dict[Any, int] = {}
        n = 0
        for tokens in token_lists:
            n += 1
            for token in set(tokens):
                df[token] = df.get(token, 0) + 1
        return cls(max(n, 1), df)

    @classmethod
    def fit_two(
        cls, left: Iterable[Sequence[Any]], right: Iterable[Sequence[Any]]
    ) -> "IDFWeights":
        """Fit over both join sides: the paper's ``|R| + |S|`` convention."""
        def chained():
            for t in left:
                yield t
            for t in right:
                yield t

        return cls.fit(chained())

    def weight(self, token: Any) -> float:
        ft = self.document_frequency.get(token, 1)
        return max(math.log(self.num_documents / ft), self.MIN_WEIGHT)

    def __repr__(self) -> str:
        return f"IDFWeights(N={self.num_documents}, |vocab|={len(self.document_frequency)})"


class TableWeights(WeightTable):
    """Explicit token -> weight mapping with a default for unseen tokens."""

    def __init__(self, table: Mapping[Any, float], default: float = 1.0):
        for token, w in table.items():
            if not w > 0:
                raise WeightError(f"token {token!r} has non-positive weight {w!r}")
        if not default > 0:
            raise WeightError(f"default weight must be positive, got {default!r}")
        self.table = dict(table)
        self.default = default

    def weight(self, token: Any) -> float:
        return self.table.get(token, self.default)

    def __repr__(self) -> str:
        return f"TableWeights(|table|={len(self.table)}, default={self.default})"


def build_weighted_set(
    tokens: Sequence[Any],
    weights: Optional[WeightTable] = None,
    multiset: bool = True,
) -> WeightedSet:
    """Turn a token sequence into a :class:`WeightedSet`.

    With ``multiset=True`` duplicates are ordinal-encoded (paper 4.3.1) so
    each occurrence is an element; with ``multiset=False`` duplicates are
    collapsed to their first occurrence.
    """
    from repro.tokenize.elements import ordinal_encode

    table = weights if weights is not None else UnitWeights()
    if multiset:
        elements = ordinal_encode(tokens)
        return WeightedSet({e: table.weight(e[0]) for e in elements})
    out: Dict[Any, float] = {}
    for t in tokens:
        if t not in out:
            out[t] = table.weight(t)
    return WeightedSet(out)
