"""Weighted (multi-)sets: the objects SSJoin reasons about.

Section 2 of the paper fixes the model reproduced here: every set is drawn
from a universe of elements, each element carries a fixed positive weight,
the *norm* ``wt(s)`` of a set is the sum of its member weights, and
``Overlap(s1, s2) = wt(s1 ∩ s2)``. Multisets are handled by the ordinal
encoding of Section 4.3.1 (see :mod:`repro.tokenize.elements`), after which
every set is a true set and intersection is plain key intersection.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.errors import WeightError

__all__ = ["WeightedSet"]


class WeightedSet:
    """An immutable set of elements with positive weights.

    >>> a = WeightedSet({"x": 1.0, "y": 2.0})
    >>> b = WeightedSet({"y": 2.0, "z": 5.0})
    >>> a.norm
    3.0
    >>> a.overlap(b)
    2.0
    >>> a.jaccard_resemblance(b)
    0.25

    Elements may be any hashable value — strings, q-grams, the ordinal
    pairs produced by the multiset encoding, or ``(column, value)`` pairs
    for the soft-FD joins of Section 3.4.
    """

    __slots__ = ("_weights", "_norm")

    def __init__(self, weights: Mapping[Any, float]) -> None:
        clean: Dict[Any, float] = {}
        norm = 0.0
        for element, weight in weights.items():
            w = float(weight)
            if not w > 0.0:
                raise WeightError(f"element {element!r} has non-positive weight {weight!r}")
            clean[element] = w
            norm += w
        self._weights = clean
        self._norm = norm

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_elements(
        cls,
        elements: Iterable[Any],
        weight_fn=None,
    ) -> "WeightedSet":
        """Build from distinct elements; duplicate elements are an error.

        *weight_fn* maps element -> weight; ``None`` gives unit weights
        (the paper's unweighted case).
        """
        weights: Dict[Any, float] = {}
        for e in elements:
            if e in weights:
                raise WeightError(
                    f"duplicate element {e!r}; encode multisets with "
                    "repro.tokenize.elements.ordinal_encode first"
                )
            weights[e] = 1.0 if weight_fn is None else weight_fn(e)
        return cls(weights)

    @classmethod
    def empty(cls) -> "WeightedSet":
        return cls({})

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._weights)

    def __contains__(self, element: object) -> bool:
        return element in self._weights

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedSet):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        return hash(frozenset(self._weights.items()))

    def __repr__(self) -> str:
        preview = ", ".join(f"{e!r}:{w:g}" for e, w in list(self._weights.items())[:4])
        more = "" if len(self) <= 4 else f", …(+{len(self) - 4})"
        return f"WeightedSet({{{preview}{more}}})"

    # -- accessors ---------------------------------------------------------------

    @property
    def norm(self) -> float:
        """``wt(s)``: total weight of the set (the paper's *norm*)."""
        return self._norm

    def weight(self, element: Any) -> float:
        """Weight of *element* (0.0 if absent)."""
        return self._weights.get(element, 0.0)

    def elements(self) -> Tuple[Any, ...]:
        return tuple(self._weights)

    def items(self) -> Iterable[Tuple[Any, float]]:
        return self._weights.items()

    # -- set algebra ---------------------------------------------------------------

    def overlap(self, other: "WeightedSet") -> float:
        """``Overlap(s1, s2) = wt(s1 ∩ s2)``, weighted by *self*'s weights.

        Under Section 2's fixed-weight-per-element model both sides agree on
        every shared element's weight and overlap is symmetric. Summing
        self's weights makes the (out-of-model) asymmetric case — used by
        the GES expansion — deterministic and consistent with the SSJoin
        implementations, which all sum ``R.w``.
        """
        ow = other._weights
        if len(ow) < len(self._weights):
            sw = self._weights
            return sum(sw[e] for e in ow if e in sw)
        return sum(w for e, w in self._weights.items() if e in ow)

    def intersection(self, other: "WeightedSet") -> "WeightedSet":
        """Shared elements, carrying *self*'s weights."""
        ow = other._weights
        return WeightedSet({e: w for e, w in self._weights.items() if e in ow})

    def union(self, other: "WeightedSet") -> "WeightedSet":
        merged = dict(self._weights)
        for e, w in other._weights.items():
            if e in merged and merged[e] != w:
                raise WeightError(
                    f"element {e!r} has conflicting weights {merged[e]!r} and {w!r}; "
                    "the weight model requires a fixed weight per element"
                )
            merged[e] = w
        return WeightedSet(merged)

    def difference(self, other: "WeightedSet") -> "WeightedSet":
        return WeightedSet({e: w for e, w in self._weights.items() if e not in other})

    def union_norm(self, other: "WeightedSet") -> float:
        """``wt(s1 ∪ s2)`` without materializing the union."""
        return self._norm + other._norm - self.overlap(other)

    # -- similarity scores -------------------------------------------------------

    def jaccard_containment(self, other: "WeightedSet") -> float:
        """``JC(self, other) = wt(self ∩ other) / wt(self)`` (Definition 5.1).

        An empty set is vacuously contained in anything (JC = 1.0), which
        keeps the identity ``JC ⩾ JR`` that the resemblance join relies on.
        """
        if self._norm == 0.0:
            return 1.0
        return self.overlap(other) / self._norm

    def jaccard_resemblance(self, other: "WeightedSet") -> float:
        """``JR = wt(s1 ∩ s2) / wt(s1 ∪ s2)`` (Definition 5.2)."""
        inter = self.overlap(other)
        union = self._norm + other._norm - inter
        if union == 0.0:
            # Both sets empty: conventionally identical.
            return 1.0
        return inter / union

    def dice(self, other: "WeightedSet") -> float:
        """Dice coefficient ``2·wt(∩) / (wt(s1)+wt(s2))`` (extra utility)."""
        denom = self._norm + other._norm
        if denom == 0.0:
            return 1.0
        return 2.0 * self.overlap(other) / denom

    # -- prefixes (consumed by repro.core.prefixes) ---------------------------------

    def sorted_elements(self, ordering) -> List[Any]:
        """Elements sorted by the global ordering ``O`` (a key function)."""
        return sorted(self._weights, key=ordering)

    def restrict(self, elements: Iterable[Any]) -> "WeightedSet":
        """Subset of this set containing only *elements* that are present."""
        return WeightedSet(
            {e: self._weights[e] for e in elements if e in self._weights}
        )
