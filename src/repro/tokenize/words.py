"""Word/delimiter tokenization — "the set of words partitioned by delimiters".

The Jaccard, GES and co-occurrence joins in the paper operate over word
tokens (optionally IDF-weighted). The tokenizer here is deliberately simple
and deterministic: lowercase, split on non-alphanumeric runs.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["words", "word_set"]

_SPLIT = re.compile(r"[^0-9a-zA-Z]+")


def words(text: str, lowercase: bool = True, min_length: int = 1) -> List[str]:
    """Tokenize *text* into words, preserving order and duplicates.

    >>> words("Microsoft Corp., Redmond")
    ['microsoft', 'corp', 'redmond']
    >>> words("148th Ave NE")
    ['148th', 'ave', 'ne']
    """
    if lowercase:
        text = text.lower()
    return [t for t in _SPLIT.split(text) if len(t) >= min_length]


def word_set(text: str, lowercase: bool = True, min_length: int = 1) -> List[str]:
    """Distinct words of *text* in first-occurrence order."""
    seen = set()
    out: List[str] = []
    for t in words(text, lowercase=lowercase, min_length=min_length):
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out
