"""American Soundex — the phonetic code the paper cites for person names.

Section 1 names soundex as one of the similarity notions a data-cleaning
platform must support ("the soundex function for matching person names");
a soundex join is an equality join on codes, expressible as a degenerate
SSJoin with a singleton set per string (see
:mod:`repro.joins.soundex_join`).

Implements the standard algorithm: keep the first letter, map consonants to
digit classes, collapse adjacent duplicates (including across H/W), drop
vowels, pad/truncate to 4 characters.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["soundex"]

_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2", "q": "2", "s": "2", "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}
_HW = {"h", "w"}
_VOWELY = {"a", "e", "i", "o", "u", "y"}


def soundex(name: str) -> str:
    """Four-character American Soundex code of *name*.

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    >>> soundex("Ashcraft")  # h does not separate the s/c code group
    'A261'
    >>> soundex("Tymczak")
    'T522'
    >>> soundex("")
    ''
    """
    letters = [c for c in name.lower() if c.isalpha()]
    if not letters:
        return ""

    first = letters[0]
    code = first.upper()
    prev_digit: Optional[str] = _CODES.get(first)

    for ch in letters[1:]:
        digit = _CODES.get(ch)
        if ch in _HW:
            # H and W are transparent: they do not reset the previous code.
            continue
        if digit is None:
            # Vowels (and Y) emit nothing but break duplicate runs.
            prev_digit = None
            continue
        if digit != prev_digit:
            code += digit
            if len(code) == 4:
                return code
        prev_digit = digit
    return code.ljust(4, "0")
