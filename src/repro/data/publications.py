"""Synthetic publication database — Example 5's two-source author/title data.

Two "sources" list the same underlying authors under *different naming
conventions* ("a. gupta" vs "anil gupta"), so textual similarity on names
is unreliable and identity must be recovered from the overlap of
co-occurring paper titles — exactly the scenario motivating the
co-occurrence join of Section 3.4 / Figure 5.

The generator returns both sources as ``(aname, ptitle)`` pair lists plus
the ground-truth name correspondence, so examples and tests can measure
precision/recall of the join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.data.rng import make_rng, zipf_choice
from repro.data.vocab import FIRST_NAMES, LAST_NAMES, PAPER_TOPIC_WORDS
from repro.errors import DataGenerationError

__all__ = ["PublicationConfig", "PublicationData", "generate_publications"]


@dataclass(frozen=True)
class PublicationConfig:
    num_authors: int = 50
    papers_per_author: int = 8
    #: Fraction of an author's papers listed by both sources (the signal).
    shared_fraction: float = 0.8
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_authors < 1:
            raise DataGenerationError(f"num_authors must be >= 1, got {self.num_authors}")
        if self.papers_per_author < 1:
            raise DataGenerationError(
                f"papers_per_author must be >= 1, got {self.papers_per_author}"
            )
        if not 0.0 < self.shared_fraction <= 1.0:
            raise DataGenerationError(
                f"shared_fraction must be in (0, 1], got {self.shared_fraction}"
            )


@dataclass
class PublicationData:
    """Two author-title sources plus ground truth."""

    source1: List[Tuple[str, str]]  # (aname, ptitle) — "f. last" convention
    source2: List[Tuple[str, str]]  # (aname, ptitle) — "first last" convention
    truth: Dict[str, str]           # source1 name -> source2 name


def _title(rng) -> str:
    k = rng.randint(3, 6)
    return " ".join(zipf_choice(rng, PAPER_TOPIC_WORDS, 0.7) for _ in range(k))


def generate_publications(config: PublicationConfig = PublicationConfig()) -> PublicationData:
    """Build the two-source publication dataset.

    >>> data = generate_publications(PublicationConfig(num_authors=5, seed=1))
    >>> len(data.truth)
    5
    """
    rng = make_rng(config.seed, "publications")
    source1: List[Tuple[str, str]] = []
    source2: List[Tuple[str, str]] = []
    truth: Dict[str, str] = {}
    used_names = set()

    for _ in range(config.num_authors):
        while True:
            first = rng.choice(FIRST_NAMES)
            last = rng.choice(LAST_NAMES)
            full = f"{first} {last}"
            if full not in used_names:
                used_names.add(full)
                break
        abbreviated = f"{first[0]}. {last}"
        truth[abbreviated] = full

        papers = [_title(rng) for _ in range(config.papers_per_author)]
        shared = max(1, int(round(config.shared_fraction * len(papers))))
        for i, paper in enumerate(papers):
            # Source 1 lists all papers; source 2 only the shared subset,
            # so containment of source-2 sets in source-1 sets is high.
            source1.append((abbreviated, paper))
            if i < shared:
                source2.append((full, paper))

    rng.shuffle(source1)
    rng.shuffle(source2)
    return PublicationData(source1=source1, source2=source2, truth=truth)
