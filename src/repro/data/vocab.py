"""Vocabularies for the synthetic data generators.

The paper's Customer relation came from an operational warehouse; its two
properties that drive the experiments are (a) heavy token-frequency skew
(street suffixes, city and state names recur across most addresses, exactly
like the "the"/"inc" heavy hitters of Section 4.1) and (b) long-tailed
person/street name diversity. These word lists reproduce both: suffixes and
states are tiny vocabularies (maximal skew), street and person names are
large (long tail).
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "STREET_NAMES",
    "STREET_SUFFIXES",
    "UNIT_DESIGNATORS",
    "CITIES",
    "STATES",
    "COMPANY_CORES",
    "COMPANY_SUFFIXES",
    "PAPER_TOPIC_WORDS",
    "EMAIL_DOMAINS",
]

FIRST_NAMES: Tuple[str, ...] = (
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
    "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "amy", "nicholas", "shirley", "eric", "angela", "jonathan", "helen",
    "stephen", "anna", "larry", "brenda", "justin", "pamela", "scott",
    "nicole", "brandon", "emma", "benjamin", "samantha", "samuel",
    "katherine", "gregory", "christine", "frank", "debra", "alexander",
    "rachel", "raymond", "catherine", "patrick", "carolyn", "jack", "janet",
    "dennis", "ruth", "jerry", "maria",
)

LAST_NAMES: Tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
    "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez",
)

STREET_NAMES: Tuple[str, ...] = (
    "main", "oak", "pine", "maple", "cedar", "elm", "washington", "lake",
    "hill", "park", "walnut", "spring", "north", "ridge", "church",
    "willow", "mill", "sunset", "railroad", "jackson", "lincoln", "river",
    "highland", "jefferson", "madison", "chestnut", "franklin", "meadow",
    "forest", "hickory", "dogwood", "laurel", "cherry", "birch", "spruce",
    "magnolia", "sycamore", "poplar", "juniper", "aspen", "locust",
    "hawthorn", "cottonwood", "cypress", "redwood", "sequoia", "canyon",
    "valley", "prairie", "summit", "lakeview", "hillcrest", "fairview",
    "riverside", "brookside", "woodland", "greenfield", "clearwater",
    "stonebridge", "oakmont", "ashford", "belmont", "carlton", "devon",
    "eastwood", "fairmont", "glenwood", "hampton", "kingston", "lexington",
    "monroe", "newport", "oxford", "preston", "quincy", "raleigh",
    "sheffield", "trenton", "vernon", "wellington", "yorktown", "arlington",
    "bradford", "chesterfield", "dorchester", "essex", "fulton", "granville",
    "harrington", "inverness", "jamestown", "kensington", "lancaster",
    "middleton", "northgate", "overlook", "pemberton", "rockford",
    "southport", "thornton", "westfield",
)

#: Deliberately tiny: the heavy hitters of every address.
STREET_SUFFIXES: Tuple[str, ...] = (
    "st", "ave", "rd", "blvd", "ln", "dr", "ct", "way", "pl",
)

UNIT_DESIGNATORS: Tuple[str, ...] = ("apt", "ste", "unit", "bldg")

CITIES: Tuple[str, ...] = (
    "seattle", "redmond", "bellevue", "tacoma", "spokane", "portland",
    "eugene", "salem", "boise", "sacramento", "oakland", "fresno",
    "san jose", "los angeles", "san diego", "phoenix", "tucson", "denver",
    "boulder", "austin", "dallas", "houston", "san antonio", "el paso",
    "chicago", "springfield", "madison", "milwaukee", "minneapolis",
    "st paul", "des moines", "kansas city", "st louis", "omaha", "tulsa",
    "oklahoma city", "memphis", "nashville", "atlanta", "savannah",
    "charlotte", "raleigh", "richmond", "norfolk", "baltimore",
    "philadelphia", "pittsburgh", "cleveland", "columbus", "cincinnati",
    "detroit", "indianapolis", "louisville", "buffalo", "rochester",
    "albany", "boston", "providence", "hartford", "newark", "jersey city",
    "miami", "tampa", "orlando", "jacksonville", "birmingham", "jackson",
    "new orleans", "little rock", "wichita", "albuquerque", "salt lake city",
    "las vegas", "reno", "anchorage", "honolulu", "billings", "fargo",
    "sioux falls", "cheyenne", "helena",
)

#: Tiny vocabulary: every address repeats one of these — maximal skew.
STATES: Tuple[str, ...] = (
    "wa", "or", "ca", "az", "co", "tx", "il", "wi", "mn", "ia", "mo", "ne",
    "ok", "tn", "ga", "nc", "va", "md", "pa", "oh", "mi", "in", "ky", "ny",
    "ma", "ri", "ct", "nj", "fl", "al", "ms", "la", "ar", "ks", "nm", "ut",
    "nv", "ak", "hi", "mt", "nd", "sd", "wy", "id",
)

COMPANY_CORES: Tuple[str, ...] = (
    "acme", "global", "pioneer", "summit", "cascade", "evergreen", "liberty",
    "paramount", "sterling", "vanguard", "meridian", "keystone", "beacon",
    "horizon", "atlas", "pinnacle", "crestwood", "silverline", "bluepeak",
    "ironwood", "brightstar", "clearpath", "northwind", "sunrise", "redstone",
    "goldleaf", "rapidtech", "datacore", "infosys", "netweave", "cloudreach",
    "bytecraft", "quantum", "vertex", "nexus", "synergy", "apex", "matrix",
    "fusion", "catalyst", "momentum", "velocity", "spectrum", "prism",
    "orbital", "stellar", "cosmic", "lunar", "solaris", "terra",
)

#: Tiny vocabulary: the "corp"/"inc" heavy hitters of Section 4.1.
COMPANY_SUFFIXES: Tuple[str, ...] = (
    "inc", "corp", "llc", "ltd", "co", "group", "holdings", "industries",
    "systems", "services",
)

PAPER_TOPIC_WORDS: Tuple[str, ...] = (
    "efficient", "scalable", "approximate", "adaptive", "robust",
    "incremental", "distributed", "parallel", "optimal", "online",
    "query", "join", "index", "storage", "transaction", "stream",
    "similarity", "clustering", "classification", "mining", "learning",
    "optimization", "processing", "evaluation", "estimation", "sampling",
    "compression", "caching", "replication", "recovery", "integration",
    "cleaning", "matching", "linkage", "deduplication", "extraction",
    "warehouse", "database", "relational", "spatial", "temporal",
    "graph", "tree", "hash", "sort", "merge", "filter", "operator",
    "algorithm", "framework",
)

EMAIL_DOMAINS: Tuple[str, ...] = (
    "example.com", "mail.example.com", "corp.example.com", "inbox.example.org",
    "post.example.net", "webmail.example.io",
)
