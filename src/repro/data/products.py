"""Product catalog + dirty sales records — the paper's opening scenario.

"Owing to various errors in the data due to typing mistakes, differences in
conventions, etc., product names ... in sales records may not match exactly
with master product catalog ... records." This generator builds that pair:
a clean master catalog of part descriptions and a stream of sales records
referencing catalog products through a noisy channel (typos, abbreviations,
word drops, reordering), with ground truth for precision/recall scoring.

Part descriptions combine brand, product line, model number and attributes
("acme ultrabook 14 laptop 8gb silver"), giving both rare discriminating
tokens (model numbers) and heavy hitters (category words) — the same skew
profile as the address data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.data.corruptions import CorruptionConfig, corrupt
from repro.data.rng import make_rng, zipf_choice
from repro.data.vocab import COMPANY_CORES
from repro.errors import DataGenerationError

__all__ = ["ProductConfig", "ProductData", "generate_products"]

_CATEGORIES: Tuple[str, ...] = (
    "laptop", "monitor", "keyboard", "mouse", "printer", "router", "tablet",
    "headset", "webcam", "dock", "charger", "drive",
)
_LINES: Tuple[str, ...] = (
    "ultrabook", "proline", "classic", "studio", "gamer", "office", "travel",
    "compact", "max", "air", "prime", "core",
)
_ATTRIBUTES: Tuple[str, ...] = (
    "black", "silver", "white", "wireless", "usb", "hd", "4k", "ergonomic",
    "portable", "compact", "backlit", "bluetooth",
)


@dataclass(frozen=True)
class ProductConfig:
    num_products: int = 200
    num_sales: int = 400
    #: fraction of sales whose description is corrupted (vs verbatim).
    dirty_fraction: float = 0.7
    seed: int = 11
    corruption: CorruptionConfig = CorruptionConfig(
        char_edit_prob=0.7,
        max_char_edits=2,
        abbreviation_prob=0.2,
        token_drop_prob=0.25,
        token_swap_prob=0.25,
    )

    def __post_init__(self) -> None:
        if self.num_products < 1:
            raise DataGenerationError(
                f"num_products must be >= 1, got {self.num_products}"
            )
        if self.num_sales < 0:
            raise DataGenerationError(f"num_sales must be >= 0, got {self.num_sales}")
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise DataGenerationError(
                f"dirty_fraction must be in [0, 1], got {self.dirty_fraction}"
            )


@dataclass
class ProductData:
    """Catalog, sales records, and ground truth."""

    catalog: List[str]             # clean part descriptions (distinct)
    sales: List[str]               # noisy sales-record descriptions
    truth: Dict[int, str]          # sales index -> catalog description


def generate_products(config: ProductConfig = ProductConfig()) -> ProductData:
    """Build the catalog/sales pair.

    >>> data = generate_products(ProductConfig(num_products=10, num_sales=5, seed=2))
    >>> len(data.catalog), len(data.sales)
    (10, 5)
    >>> set(data.truth.values()) <= set(data.catalog)
    True
    """
    rng = make_rng(config.seed, "products")

    catalog: List[str] = []
    seen = set()
    while len(catalog) < config.num_products:
        brand = zipf_choice(rng, COMPANY_CORES, skew=0.8)
        line = rng.choice(_LINES)
        model = f"{rng.randint(1, 99)}{rng.choice('abcdefgx')}"
        category = zipf_choice(rng, _CATEGORIES, skew=0.7)
        attributes = rng.sample(_ATTRIBUTES, k=rng.randint(1, 3))
        description = " ".join([brand, line, model, category] + attributes)
        if description not in seen:
            seen.add(description)
            catalog.append(description)

    sales: List[str] = []
    truth: Dict[int, str] = {}
    for i in range(config.num_sales):
        source = rng.choice(catalog)
        truth[i] = source
        if rng.random() < config.dirty_fraction:
            sales.append(corrupt(source, rng, config.corruption))
        else:
            sales.append(source)
    return ProductData(catalog=catalog, sales=sales, truth=truth)
